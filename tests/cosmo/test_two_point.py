"""Tests for the two-point correlation function."""

import numpy as np
import pytest

from repro.cosmo.initial_conditions import gaussian_random_field
from repro.cosmo.power_spectrum import PowerSpectrum
from repro.cosmo.statistics import two_point_correlation


class TestTwoPointCorrelation:
    def test_output_shapes(self):
        delta = np.zeros((16, 16, 16))
        r, xi = two_point_correlation(delta, 64.0, n_bins=8)
        assert r.shape == (8,) and xi.shape == (8,)
        assert r[0] >= 0 and r[-1] <= 32.0

    def test_zero_field(self):
        _, xi = two_point_correlation(np.zeros((8, 8, 8)), 32.0)
        finite = xi[np.isfinite(xi)]
        np.testing.assert_allclose(finite, 0.0, atol=1e-12)

    def test_xi0_equals_variance(self):
        """ξ(r→0) is the field variance (the first bin contains r=0)."""
        rng = np.random.default_rng(0)
        delta = rng.standard_normal((16, 16, 16))
        delta -= delta.mean()
        r, xi = two_point_correlation(delta, 16.0, n_bins=16)
        # first bin is dominated by the r=0 self-pair on a 1-cell grid
        assert xi[0] == pytest.approx(delta.var(), rel=0.05)

    def test_white_noise_uncorrelated_at_large_r(self):
        rng = np.random.default_rng(1)
        delta = rng.standard_normal((16, 16, 16))
        delta -= delta.mean()
        _, xi = two_point_correlation(delta, 16.0, n_bins=8)
        assert abs(xi[-1]) < 0.05 * delta.var()

    def test_correlated_field_decays(self):
        """A GRF with red spectrum: ξ positive at small r, decaying."""
        delta = gaussian_random_field(32, 128.0, PowerSpectrum(), rng=2)
        r, xi = two_point_correlation(delta, 128.0, n_bins=12)
        finite = xi[np.isfinite(xi)]
        assert finite[0] > 0
        assert finite[0] > abs(finite[-1])

    def test_quadratic_scaling(self):
        rng = np.random.default_rng(3)
        delta = rng.standard_normal((8, 8, 8))
        _, x1 = two_point_correlation(delta, 8.0)
        _, x2 = two_point_correlation(3.0 * delta, 8.0)
        mask = np.isfinite(x1)
        np.testing.assert_allclose(x2[mask], 9.0 * x1[mask], rtol=1e-9)

    def test_fourier_pair_with_power_spectrum(self):
        """ξ(0) equals the integral of the measured power spectrum
        (Parseval) — the defining Fourier-pair relation."""
        rng = np.random.default_rng(4)
        n, box = 16, 32.0
        delta = rng.standard_normal((n, n, n))
        delta -= delta.mean()
        # direct Parseval check against the unbinned power
        power = np.abs(np.fft.fftn(delta)) ** 2
        variance_from_power = power.sum() / n**6
        _, xi = two_point_correlation(delta, box, n_bins=32)
        assert xi[0] == pytest.approx(variance_from_power, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            two_point_correlation(np.zeros((4, 4, 8)), 8.0)
        with pytest.raises(ValueError):
            two_point_correlation(np.zeros((4, 4, 4)), 8.0, n_bins=0)
