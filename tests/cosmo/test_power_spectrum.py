"""Tests for the linear power spectrum and growth factor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cosmo.power_spectrum import (
    PowerSpectrum,
    bbks_transfer,
    growth_factor,
    tophat_window,
)


class TestTophatWindow:
    def test_limit_at_zero(self):
        assert tophat_window(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_small_argument_continuity(self):
        assert tophat_window(np.array([1e-7]))[0] == pytest.approx(1.0, abs=1e-6)

    def test_decays(self):
        x = np.array([0.1, 1.0, 10.0])
        w = np.abs(tophat_window(x))
        assert w[0] > w[1] > w[2]

    def test_known_value(self):
        # W(pi) = 3(0 - pi*(-1))/pi^3 = 3/pi^2
        assert tophat_window(np.array([np.pi]))[0] == pytest.approx(3.0 / np.pi**2)


class TestBBKSTransfer:
    def test_unity_at_large_scales(self):
        assert bbks_transfer(np.array([1e-6]), 0.31)[0] == pytest.approx(1.0, abs=1e-3)

    def test_monotone_decreasing(self):
        k = np.geomspace(1e-4, 10, 50)
        t = bbks_transfer(k, 0.31)
        assert np.all(np.diff(t) < 0)

    def test_omega_m_shifts_turnover(self):
        """Higher ΩM moves the turnover to smaller scales: at fixed k
        within the turnover region, T is larger for larger ΩM."""
        k = np.array([0.1])
        assert bbks_transfer(k, 0.35)[0] > bbks_transfer(k, 0.25)[0]


class TestGrowthFactor:
    def test_normalized_today(self):
        assert growth_factor(1.0, 0.3089) == pytest.approx(1.0)

    def test_monotone_in_a(self):
        ds = [growth_factor(a, 0.31) for a in (0.25, 0.5, 0.75, 1.0)]
        assert all(x < y for x, y in zip(ds, ds[1:]))

    def test_eds_limit_is_linear(self):
        """For ΩM = 1 (EdS), D(a) = a exactly."""
        for a in (0.3, 0.5, 0.8):
            assert growth_factor(a, 1.0) == pytest.approx(a, rel=1e-4)

    def test_lcdm_suppressed_growth(self):
        """Dark energy suppresses late growth: D(a) > a for a < 1."""
        assert growth_factor(0.5, 0.3) > 0.5

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            growth_factor(0.0, 0.3)
        with pytest.raises(ValueError):
            growth_factor(0.5, 0.0)


class TestPowerSpectrum:
    def test_sigma8_normalization_exact(self):
        for s8 in (0.78, 0.8159, 0.95):
            ps = PowerSpectrum(sigma_8=s8)
            assert ps.sigma_r(8.0) == pytest.approx(s8, rel=1e-6)

    def test_amplitude_scales_with_sigma8_squared(self):
        k = np.array([0.1])
        lo = PowerSpectrum(sigma_8=0.78)(k)[0]
        hi = PowerSpectrum(sigma_8=0.95)(k)[0]
        assert hi / lo == pytest.approx((0.95 / 0.78) ** 2, rel=1e-6)

    def test_ns_tilts_spectrum(self):
        """Larger ns boosts small scales relative to large scales."""
        blue = PowerSpectrum(n_s=1.0)
        red = PowerSpectrum(n_s=0.9)
        k_lo, k_hi = np.array([0.01]), np.array([1.0])
        ratio_blue = blue(k_hi)[0] / blue(k_lo)[0]
        ratio_red = red(k_hi)[0] / red(k_lo)[0]
        assert ratio_blue > ratio_red

    def test_zero_mode_is_zero(self):
        assert PowerSpectrum()(np.array([0.0]))[0] == 0.0

    def test_positive_everywhere(self):
        k = np.geomspace(1e-4, 100, 100)
        assert np.all(PowerSpectrum()(k) > 0)

    def test_sigma_r_decreases_with_radius(self):
        ps = PowerSpectrum()
        assert ps.sigma_r(4.0) > ps.sigma_r(8.0) > ps.sigma_r(16.0)

    def test_at_redshift_scales_by_growth(self):
        ps = PowerSpectrum()
        z1 = ps.at_redshift(1.0)
        d = growth_factor(0.5, ps.omega_m)
        k = np.array([0.1])
        assert z1(k)[0] / ps(k)[0] == pytest.approx(d**2, rel=1e-5)

    def test_at_redshift_zero_identity(self):
        ps = PowerSpectrum()
        k = np.array([0.05, 0.5])
        np.testing.assert_allclose(ps.at_redshift(0.0)(k), ps(k), rtol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerSpectrum(omega_m=0.0)
        with pytest.raises(ValueError):
            PowerSpectrum(sigma_8=-1.0)
        with pytest.raises(ValueError):
            PowerSpectrum().sigma_r(0.0)
        with pytest.raises(ValueError):
            PowerSpectrum().at_redshift(-1.0)

    @given(
        omega_m=st.floats(min_value=0.25, max_value=0.35),
        sigma_8=st.floats(min_value=0.78, max_value=0.95),
        n_s=st.floats(min_value=0.9, max_value=1.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_normalization_over_paper_ranges(self, omega_m, sigma_8, n_s):
        ps = PowerSpectrum(omega_m=omega_m, sigma_8=sigma_8, n_s=n_s)
        assert ps.sigma_r(8.0) == pytest.approx(sigma_8, rel=1e-5)
