"""Tests for the end-to-end dataset builder."""

import numpy as np
import pytest

from repro.core.parameters import ParameterSpace
from repro.cosmo.dataset_builder import (
    SimulationConfig,
    build_arrays,
    normalize_counts,
    run_simulation,
    simulate_density,
    train_val_test_split,
)

SMALL = SimulationConfig(particle_grid=16, histogram_grid=16, box_size=32.0)


class TestSimulationConfig:
    def test_paper_ratios_default(self):
        cfg = SimulationConfig()
        assert cfg.subvolume_size == cfg.histogram_grid // 2
        assert cfg.subvolumes_per_sim == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(particle_grid=2)
        with pytest.raises(ValueError):
            SimulationConfig(histogram_grid=15, splits=2)


class TestRunSimulation:
    def test_positions_shape_and_bounds(self):
        pos = run_simulation((0.31, 0.82, 0.96), SMALL, seed=0)
        assert pos.shape == (16**3, 3)
        assert np.all(pos >= 0) and np.all(pos < SMALL.box_size)

    def test_two_parameter_theta(self):
        pos = run_simulation((0.31, 0.82), SMALL, seed=0)
        assert pos.shape == (16**3, 3)

    def test_four_parameter_theta(self):
        """The extended space: h as a fourth predicted parameter."""
        a = run_simulation((0.31, 0.82, 0.96, 0.60), SMALL, seed=0)
        b = run_simulation((0.31, 0.82, 0.96, 0.75), SMALL, seed=0)
        assert a.shape == (16**3, 3)
        assert not np.allclose(a, b)  # h changes the transfer function

    def test_extended_space_build(self):
        from repro.core.parameters import EXTENDED_RANGES, ParameterSpace

        space = ParameterSpace(dict(EXTENDED_RANGES))
        x, y, th = build_arrays(1, SMALL, space=space, seed=0)
        assert y.shape == (8, 4)
        assert th.shape == (8, 4)

    def test_bad_theta(self):
        with pytest.raises(ValueError):
            run_simulation((0.3,), SMALL)

    def test_deterministic(self):
        a = run_simulation((0.3, 0.8, 0.95), SMALL, seed=3)
        b = run_simulation((0.3, 0.8, 0.95), SMALL, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_parameters_change_output(self):
        a = run_simulation((0.25, 0.78, 0.90), SMALL, seed=3)
        b = run_simulation((0.35, 0.95, 1.00), SMALL, seed=3)
        assert not np.allclose(a, b)

    def test_cola_path_runs(self):
        cfg = SimulationConfig(
            particle_grid=8, histogram_grid=8, box_size=32.0, cola_steps=2
        )
        pos = run_simulation((0.31, 0.82, 0.96), cfg, seed=0)
        assert pos.shape == (512, 3)

    def test_za_only_differs_from_2lpt(self):
        za = SimulationConfig(particle_grid=16, histogram_grid=16, box_size=32.0, use_2lpt=False)
        a = run_simulation((0.31, 0.82, 0.96), SMALL, seed=1)
        b = run_simulation((0.31, 0.82, 0.96), za, seed=1)
        assert not np.allclose(a, b)


class TestSimulateDensity:
    def test_counts_conserved(self):
        counts = simulate_density((0.31, 0.82, 0.96), SMALL, seed=0)
        assert counts.shape == (16, 16, 16)
        assert counts.sum() == 16**3

    def test_structure_present(self):
        """Gravitational clustering: the evolved field is non-uniform."""
        counts = simulate_density((0.31, 0.95, 0.96), SMALL, seed=0)
        assert counts.std() > 0.5

    def test_sigma8_increases_clumpiness(self):
        lo = simulate_density((0.31, 0.78, 0.96), SMALL, seed=4)
        hi = simulate_density((0.31, 0.95, 0.96), SMALL, seed=4)
        assert hi.std() > lo.std()


class TestNormalizeCounts:
    def test_well_conditioned_range(self):
        rng = np.random.default_rng(0)
        counts = rng.poisson(1.0, size=(8, 8, 8))
        out = normalize_counts(counts)
        assert -2.0 < out.mean() < 2.0
        assert out.std() < 5.0

    def test_global_affine_preserves_amplitude_ordering(self):
        """The σ8 signal: denser fields must map to larger values —
        normalization is global, never per-volume."""
        lo = normalize_counts(np.full((4, 4, 4), 1.0))
        hi = normalize_counts(np.full((4, 4, 4), 9.0))
        assert np.all(hi > lo)

    def test_exact_formula(self):
        from repro.cosmo.dataset_builder import LOG_SCALE

        counts = np.array([[[0.0, 3.0]]])
        out = normalize_counts(counts, mean_count=8.0)
        np.testing.assert_allclose(
            out, (np.log1p(counts) - np.log1p(8.0)) / LOG_SCALE, rtol=1e-6
        )

    def test_mean_count_centers(self):
        """A voxel at exactly the expected mean count maps to ~0."""
        out = normalize_counts(np.full((2, 2, 2), 8.0), mean_count=8.0)
        np.testing.assert_allclose(out, 0.0, atol=1e-6)

    def test_negative_mean_raises(self):
        with pytest.raises(ValueError):
            normalize_counts(np.ones((2, 2, 2)), mean_count=-1.0)

    def test_float32(self):
        assert normalize_counts(np.ones((2, 2, 2))).dtype == np.float32


class TestBuildArrays:
    def test_shapes(self):
        x, y, th = build_arrays(3, SMALL, seed=0)
        assert x.shape == (3 * 8, 1, 8, 8, 8)
        assert y.shape == (24, 3)
        assert th.shape == (24, 3)

    def test_targets_normalized(self):
        _, y, th = build_arrays(2, SMALL, seed=1)
        assert np.all(y >= 0) and np.all(y <= 1)
        space = ParameterSpace()
        np.testing.assert_allclose(space.denormalize(y), th, rtol=1e-5)

    def test_subvolumes_share_targets(self):
        _, y, _ = build_arrays(2, SMALL, seed=2)
        for sim in range(2):
            block = y[sim * 8 : (sim + 1) * 8]
            assert np.all(block == block[0])

    def test_deterministic(self):
        x1, y1, _ = build_arrays(1, SMALL, seed=5)
        x2, y2, _ = build_arrays(1, SMALL, seed=5)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_unnormalized_counts(self):
        x, _, _ = build_arrays(1, SMALL, seed=0, normalize=False)
        assert x.min() >= 0  # raw counts
        assert x.sum() == pytest.approx(16**3, rel=1e-6)

    def test_two_parameter_space(self):
        space = ParameterSpace().subset(["omega_m", "sigma_8"])
        x, y, th = build_arrays(1, SMALL, space=space, seed=0)
        assert y.shape == (8, 2)

    def test_bad_n_sims(self):
        with pytest.raises(ValueError):
            build_arrays(0, SMALL)


class TestTrainValTestSplit:
    def make(self, n_sims=10):
        per = 8
        n = n_sims * per
        x = np.arange(n, dtype=np.float32).reshape(n, 1, 1, 1, 1)
        y = np.repeat(np.arange(n_sims, dtype=np.float32), per)[:, None]
        th = y.copy()
        return x, y, th, per

    def test_split_sizes(self):
        x, y, th, per = self.make(10)
        (xtr, *_), (xv, *_), (xte, *_) = train_val_test_split(
            x, y, th, per, val_fraction=0.2, test_fraction=0.1, rng=0
        )
        assert len(xv) == 2 * per and len(xte) == 1 * per
        assert len(xtr) == 7 * per
        assert len(xtr) + len(xv) + len(xte) == len(x)

    def test_no_simulation_leaks_across_splits(self):
        x, y, th, per = self.make(10)
        (_, ytr, _), (_, yv, _), (_, yte, _) = train_val_test_split(
            x, y, th, per, rng=1
        )
        tr, v, te = set(ytr.ravel()), set(yv.ravel()), set(yte.ravel())
        assert not (tr & v) and not (tr & te) and not (v & te)

    def test_deterministic(self):
        x, y, th, per = self.make(6)
        a = train_val_test_split(x, y, th, per, rng=2)
        b = train_val_test_split(x, y, th, per, rng=2)
        np.testing.assert_array_equal(a[0][0], b[0][0])

    def test_indivisible_raises(self):
        x, y, th, per = self.make(2)
        with pytest.raises(ValueError):
            train_val_test_split(x[:-1], y[:-1], th[:-1], per)

    def test_too_small_raises(self):
        x, y, th, per = self.make(2)
        with pytest.raises(ValueError):
            train_val_test_split(x, y, th, per, val_fraction=0.5, test_fraction=0.5)

    def test_bad_fractions(self):
        x, y, th, per = self.make(4)
        with pytest.raises(ValueError):
            train_val_test_split(x, y, th, per, val_fraction=-0.1)
