"""Tests for particle gridding and sub-volume splitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cosmo.histogram import particle_histogram, split_subvolumes


class TestParticleHistogram:
    def test_counts_conserved(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 64.0, size=(1000, 3))
        hist = particle_histogram(pos, 16, 64.0)
        assert hist.sum() == 1000

    def test_shape(self):
        pos = np.zeros((1, 3))
        assert particle_histogram(pos, 8, 10.0).shape == (8, 8, 8)

    def test_single_particle_location(self):
        pos = np.array([[7.5, 2.5, 0.5]])
        hist = particle_histogram(pos, 8, 8.0)
        assert hist[7, 2, 0] == 1 and hist.sum() == 1

    def test_out_of_box_raises(self):
        with pytest.raises(ValueError, match="wrap"):
            particle_histogram(np.array([[10.0, 1.0, 1.0]]), 8, 8.0)
        with pytest.raises(ValueError, match="wrap"):
            particle_histogram(np.array([[-0.1, 1.0, 1.0]]), 8, 8.0)

    def test_boundary_is_half_open(self):
        # exactly box_size is invalid; just below lands in the last bin
        hist = particle_histogram(np.array([[7.999, 0.0, 0.0]]), 8, 8.0)
        assert hist[7, 0, 0] == 1

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            particle_histogram(np.zeros((3,)), 8, 8.0)
        with pytest.raises(ValueError):
            particle_histogram(np.zeros((2, 3)), 0, 8.0)

    @given(
        n=st.integers(min_value=1, max_value=300),
        bins=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_conservation(self, n, bins, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 32.0, size=(n, 3))
        assert particle_histogram(pos, bins, 32.0).sum() == n


class TestSplitSubvolumes:
    def test_paper_split_shape(self):
        vol = np.arange(16**3).reshape(16, 16, 16)
        subs = split_subvolumes(vol, splits=2)
        assert subs.shape == (8, 8, 8, 8)

    def test_content_preserved(self):
        vol = np.random.default_rng(0).integers(0, 10, size=(8, 8, 8))
        subs = split_subvolumes(vol, splits=2)
        assert subs.sum() == vol.sum()

    def test_corner_mapping(self):
        vol = np.zeros((4, 4, 4))
        vol[0, 0, 0] = 1.0  # first octant
        vol[3, 3, 3] = 2.0  # last octant
        subs = split_subvolumes(vol, splits=2)
        assert subs[0][0, 0, 0] == 1.0
        assert subs[7][1, 1, 1] == 2.0

    def test_splits_one_identity(self):
        vol = np.random.default_rng(1).random((4, 4, 4))
        subs = split_subvolumes(vol, splits=1)
        np.testing.assert_array_equal(subs[0], vol)

    def test_splits_four(self):
        vol = np.zeros((8, 8, 8))
        assert split_subvolumes(vol, splits=4).shape == (64, 2, 2, 2)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            split_subvolumes(np.zeros((7, 7, 7)), splits=2)

    def test_non_cube_raises(self):
        with pytest.raises(ValueError):
            split_subvolumes(np.zeros((4, 4, 8)), splits=2)
