"""Tests for density statistics and the traditional-statistics baseline."""

import numpy as np
import pytest

from repro.cosmo.baseline import StatisticalBaseline
from repro.cosmo.dataset_builder import SimulationConfig, build_arrays
from repro.cosmo.initial_conditions import gaussian_random_field
from repro.cosmo.power_spectrum import PowerSpectrum
from repro.cosmo.statistics import (
    density_moments,
    measure_power_spectrum,
    summary_features,
)


class TestMeasurePowerSpectrum:
    def test_output_shapes(self):
        delta = gaussian_random_field(16, 64.0, PowerSpectrum(), rng=0)
        k, p = measure_power_spectrum(delta, 64.0, n_bins=8)
        assert k.shape == (8,) and p.shape == (8,)

    def test_k_range(self):
        delta = np.zeros((16, 16, 16))
        k, _ = measure_power_spectrum(delta, 64.0, n_bins=8)
        assert k[0] >= 2 * np.pi / 64.0 * 0.9
        assert k[-1] <= np.pi * 16 / 64.0

    def test_zero_field_zero_power(self):
        delta = np.zeros((16, 16, 16))
        _, p = measure_power_spectrum(delta, 64.0)
        finite = p[np.isfinite(p)]
        np.testing.assert_allclose(finite, 0.0)

    def test_parseval_scaling(self):
        """Doubling δ quadruples P̂."""
        delta = gaussian_random_field(16, 64.0, PowerSpectrum(), rng=1)
        _, p1 = measure_power_spectrum(delta, 64.0)
        _, p2 = measure_power_spectrum(2 * delta, 64.0)
        mask = np.isfinite(p1) & (p1 > 0)
        np.testing.assert_allclose(p2[mask] / p1[mask], 4.0, rtol=1e-8)

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_power_spectrum(np.zeros((4, 4, 8)), 64.0)
        with pytest.raises(ValueError):
            measure_power_spectrum(np.zeros((4, 4, 4)), 64.0, n_bins=0)


class TestDensityMoments:
    def test_gaussian_field_moments(self):
        rng = np.random.default_rng(0)
        delta = rng.standard_normal((32, 32, 32))
        m = density_moments(delta)
        assert m["variance"] == pytest.approx(1.0, rel=0.05)
        assert abs(m["skewness"]) < 0.1
        assert abs(m["kurtosis"]) < 0.2

    def test_constant_field(self):
        m = density_moments(np.full((4, 4, 4), 3.0))
        assert m == {"variance": 0.0, "skewness": 0.0, "kurtosis": 0.0}

    def test_skewed_field(self):
        rng = np.random.default_rng(1)
        delta = rng.exponential(1.0, size=(16, 16, 16))
        assert density_moments(delta)["skewness"] > 1.0


class TestSummaryFeatures:
    def test_length(self):
        vol = np.random.default_rng(0).poisson(3.0, size=(16, 16, 16)).astype(float)
        f = summary_features(vol, 64.0, n_bins=12)
        assert f.shape == (15,)
        assert np.all(np.isfinite(f))

    def test_counts_converted_to_contrast(self):
        """Scaling counts by a constant leaves features ~unchanged (δ is
        scale-free)."""
        vol = np.random.default_rng(1).poisson(5.0, size=(16, 16, 16)).astype(float)
        f1 = summary_features(vol, 64.0)
        f2 = summary_features(10.0 * vol, 64.0)
        np.testing.assert_allclose(f1, f2, rtol=1e-6, atol=1e-8)


class TestStatisticalBaseline:
    @pytest.fixture(scope="class")
    def dataset(self):
        # A box large enough to contain quasi-linear modes: σ8's
        # amplitude signature lives at k ≲ 0.5 h/Mpc, so tiny highly
        # nonlinear boxes bury it in cosmic variance.
        cfg = SimulationConfig(
            particle_grid=32, histogram_grid=32, box_size=128.0, splits=1
        )
        x, y, th = build_arrays(50, cfg, seed=0, normalize=False)
        return x, th, cfg

    def test_fit_predict_shapes(self, dataset):
        x, th, cfg = dataset
        baseline = StatisticalBaseline(box_size=cfg.box_size / cfg.splits)
        baseline.fit(x[:36], th[:36])
        pred = baseline.predict(x[36:])
        assert pred.shape == (len(x) - 36, 3)

    def test_recovers_sigma8_direction(self, dataset):
        """σ8 is strongly encoded in the power spectrum amplitude: the
        baseline's σ8 estimates must correlate with the truth."""
        x, th, cfg = dataset
        baseline = StatisticalBaseline(box_size=cfg.box_size / cfg.splits)
        baseline.fit(x[:36], th[:36])
        pred = baseline.predict(x[36:])
        truth = th[36:]
        corr = np.corrcoef(pred[:, 1], truth[:, 1])[0, 1]
        assert corr > 0.5

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StatisticalBaseline(box_size=16.0).predict(np.zeros((1, 8, 8, 8)))

    def test_misaligned_fit_raises(self, dataset):
        x, th, cfg = dataset
        baseline = StatisticalBaseline(box_size=16.0)
        with pytest.raises(ValueError):
            baseline.fit(x[:4], th[:5])

    def test_bad_volume_rank(self):
        baseline = StatisticalBaseline(box_size=16.0)
        with pytest.raises(ValueError):
            baseline.features(np.zeros((4, 4)))

    def test_negative_ridge_raises(self):
        with pytest.raises(ValueError):
            StatisticalBaseline(box_size=16.0, ridge=-1.0)

    def test_n_features(self):
        assert StatisticalBaseline(box_size=16.0, n_bins=10).n_features == 13
