"""Tests for the equilateral bispectrum (three-point statistic)."""

import numpy as np
import pytest

from repro.cosmo.dataset_builder import SimulationConfig, simulate_density
from repro.cosmo.initial_conditions import gaussian_random_field
from repro.cosmo.power_spectrum import PowerSpectrum
from repro.cosmo.statistics import equilateral_bispectrum


class TestEquilateralBispectrum:
    def test_output_shapes(self):
        delta = np.zeros((16, 16, 16))
        k, b = equilateral_bispectrum(delta, 64.0, n_bins=5)
        assert k.shape == (5,) and b.shape == (5,)

    def test_zero_field(self):
        _, b = equilateral_bispectrum(np.zeros((16, 16, 16)), 64.0)
        finite = b[np.isfinite(b)]
        np.testing.assert_allclose(finite, 0.0, atol=1e-12)

    def test_gaussian_field_small_vs_squared_field(self):
        """A Gaussian field's bispectrum is zero in expectation; squaring
        the field (a quadratic nonlinearity) makes it decisively
        positive — the discriminating property."""
        ps = PowerSpectrum()
        gs, sq = [], []
        for seed in range(4):
            delta = gaussian_random_field(16, 64.0, ps, rng=seed)
            _, bg = equilateral_bispectrum(delta, 64.0, n_bins=4)
            nl = delta + 0.5 * (delta**2 - (delta**2).mean())
            _, bn = equilateral_bispectrum(nl, 64.0, n_bins=4)
            gs.append(np.nanmean(bg))
            sq.append(np.nanmean(bn))
        assert np.mean(sq) > 3.0 * abs(np.mean(gs))

    def test_cubic_scaling(self):
        rng = np.random.default_rng(0)
        delta = rng.standard_normal((16, 16, 16))
        delta += 0.3 * (delta**2 - 1.0)  # make B nonzero
        _, b1 = equilateral_bispectrum(delta, 16.0, n_bins=4)
        _, b2 = equilateral_bispectrum(2.0 * delta, 16.0, n_bins=4)
        mask = np.isfinite(b1) & (np.abs(b1) > 0)
        np.testing.assert_allclose(b2[mask] / b1[mask], 8.0, rtol=1e-8)

    def test_gravitational_collapse_positive(self):
        """Evolved density fields have positive equilateral bispectrum
        (collapse skews the one-point PDF positive)."""
        cfg = SimulationConfig(particle_grid=32, histogram_grid=32, box_size=64.0, splits=1)
        counts = simulate_density((0.31, 0.9, 0.96), cfg, seed=0)
        delta = counts / counts.mean() - 1.0
        _, b = equilateral_bispectrum(delta, 64.0, n_bins=5)
        # restrict to well-sampled bins: the lowest-k shells contain a
        # handful of modes and their bispectrum is cosmic-variance noise
        well_sampled = b[2:]
        finite = well_sampled[np.isfinite(well_sampled)]
        assert len(finite) >= 2
        assert np.all(finite > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            equilateral_bispectrum(np.zeros((4, 4, 8)), 8.0)
        with pytest.raises(ValueError):
            equilateral_bispectrum(np.zeros((4, 4, 4)), 8.0, n_bins=0)
