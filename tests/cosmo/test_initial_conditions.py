"""Tests for Gaussian random-field initial conditions."""

import numpy as np
import pytest

from repro.cosmo.initial_conditions import fourier_grid, gaussian_random_field
from repro.cosmo.power_spectrum import PowerSpectrum
from repro.cosmo.statistics import measure_power_spectrum


class TestFourierGrid:
    def test_shapes_broadcast(self):
        kx, ky, kz, k = fourier_grid(8, 100.0)
        assert kx.shape == (8, 1, 1) and ky.shape == (1, 8, 1) and kz.shape == (1, 1, 8)
        assert k.shape == (8, 8, 8)

    def test_fundamental_mode(self):
        kx, _, _, _ = fourier_grid(8, 100.0)
        assert kx[1, 0, 0] == pytest.approx(2 * np.pi / 100.0)

    def test_nyquist(self):
        kx, _, _, _ = fourier_grid(8, 100.0)
        assert np.abs(kx).max() == pytest.approx(np.pi * 8 / 100.0)

    def test_zero_mode_at_origin(self):
        _, _, _, k = fourier_grid(8, 100.0)
        assert k[0, 0, 0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fourier_grid(1, 100.0)
        with pytest.raises(ValueError):
            fourier_grid(8, 0.0)


class TestGaussianRandomField:
    def test_shape_and_realness(self):
        delta = gaussian_random_field(16, 64.0, PowerSpectrum(), rng=0)
        assert delta.shape == (16, 16, 16)
        assert np.isrealobj(delta)

    def test_zero_mean_exact(self):
        delta = gaussian_random_field(16, 64.0, PowerSpectrum(), rng=1)
        assert abs(delta.mean()) < 1e-12

    def test_deterministic(self):
        a = gaussian_random_field(8, 64.0, PowerSpectrum(), rng=2)
        b = gaussian_random_field(8, 64.0, PowerSpectrum(), rng=2)
        np.testing.assert_array_equal(a, b)

    def test_seeds_differ(self):
        a = gaussian_random_field(8, 64.0, PowerSpectrum(), rng=1)
        b = gaussian_random_field(8, 64.0, PowerSpectrum(), rng=2)
        assert not np.array_equal(a, b)

    def test_return_fourier_consistent(self):
        delta, delta_k = gaussian_random_field(
            8, 64.0, PowerSpectrum(), rng=3, return_fourier=True
        )
        np.testing.assert_allclose(np.fft.ifftn(delta_k).real, delta, atol=1e-12)

    def test_power_spectrum_round_trip(self):
        """The generated field's measured P(k) matches the input P(k)
        (averaged over realizations, within sample variance)."""
        ps = PowerSpectrum()
        n, box = 32, 128.0
        ratios = []
        for seed in range(6):
            delta = gaussian_random_field(n, box, ps, rng=seed)
            k, p = measure_power_spectrum(delta, box, n_bins=8)
            mask = np.isfinite(p) & (k > 2 * 2 * np.pi / box)
            ratios.append(p[mask] / ps(k[mask]))
        mean_ratio = np.mean(ratios, axis=0)
        np.testing.assert_allclose(mean_ratio, 1.0, atol=0.35)

    def test_higher_sigma8_higher_variance(self):
        lo = gaussian_random_field(16, 64.0, PowerSpectrum(sigma_8=0.78), rng=5)
        hi = gaussian_random_field(16, 64.0, PowerSpectrum(sigma_8=0.95), rng=5)
        assert hi.std() > lo.std()
        # same white noise: fields are proportional
        assert hi.std() / lo.std() == pytest.approx(0.95 / 0.78, rel=1e-6)

    def test_amplitude_scales_with_box_discretization(self):
        """Variance grows as resolution increases (more small-scale
        power enters the grid) — a sanity property of the convention."""
        ps = PowerSpectrum()
        coarse = gaussian_random_field(8, 64.0, ps, rng=7).std()
        fine = gaussian_random_field(32, 64.0, ps, rng=7).std()
        assert fine > coarse
