"""Tests for Zel'dovich / 2LPT displacements."""

import numpy as np
import pytest

from repro.cosmo.initial_conditions import gaussian_random_field
from repro.cosmo.lpt import (
    displace_particles,
    lattice_positions,
    lpt2_displacement,
    second_order_growth,
    zeldovich_displacement,
)
from repro.cosmo.power_spectrum import PowerSpectrum


def plane_wave_delta_k(n, box, amplitude=0.01):
    """δ(x) = A cos(k1 x) along axis 0, in Fourier space."""
    x = (np.arange(n) + 0.0) * (box / n)
    delta = amplitude * np.cos(2 * np.pi * x / box)[:, None, None] * np.ones((1, n, n))
    return np.fft.fftn(delta), delta


class TestZeldovich:
    def test_shape(self):
        dk = np.zeros((8, 8, 8), dtype=complex)
        assert zeldovich_displacement(dk, 64.0).shape == (3, 8, 8, 8)

    def test_zero_field_zero_displacement(self):
        dk = np.zeros((8, 8, 8), dtype=complex)
        np.testing.assert_allclose(zeldovich_displacement(dk, 64.0), 0.0)

    def test_plane_wave_analytic(self):
        """For δ = A cos(kx), Ψ_x = −(A/k) sin(kx) (so that ∇·Ψ = −δ),
        other components 0."""
        n, box, amp = 16, 64.0, 0.02
        dk, _ = plane_wave_delta_k(n, box, amp)
        psi = zeldovich_displacement(dk, box)
        k1 = 2 * np.pi / box
        x = np.arange(n) * (box / n)
        expect = -(amp / k1) * np.sin(k1 * x)
        np.testing.assert_allclose(psi[0][:, 0, 0], expect, atol=1e-10)
        np.testing.assert_allclose(psi[1], 0.0, atol=1e-10)
        np.testing.assert_allclose(psi[2], 0.0, atol=1e-10)

    def test_divergence_equals_minus_delta(self):
        """∇·Ψ = −δ (the continuity relation at first order).

        Exact only on Nyquist-filtered fields — spectral i·k derivatives
        are ill-defined at the Nyquist plane of an even grid.
        """
        from repro.cosmo.initial_conditions import zero_nyquist

        n, box = 16, 64.0
        delta_raw = gaussian_random_field(n, box, PowerSpectrum(), rng=0)
        delta_k = zero_nyquist(np.fft.fftn(delta_raw))
        delta = np.fft.ifftn(delta_k).real
        psi = zeldovich_displacement(delta_k, box)
        # spectral divergence
        from repro.cosmo.initial_conditions import fourier_grid

        kx, ky, kz, _ = fourier_grid(n, box)
        div_k = (
            1j * kx * np.fft.fftn(psi[0])
            + 1j * ky * np.fft.fftn(psi[1])
            + 1j * kz * np.fft.fftn(psi[2])
        )
        div = np.fft.ifftn(div_k).real
        np.testing.assert_allclose(div, -delta, atol=1e-8)

    def test_non_cubic_raises(self):
        with pytest.raises(ValueError):
            zeldovich_displacement(np.zeros((4, 4, 8), dtype=complex), 64.0)


class TestLPT2:
    def test_shape(self):
        dk = np.zeros((8, 8, 8), dtype=complex)
        assert lpt2_displacement(dk, 64.0).shape == (3, 8, 8, 8)

    def test_plane_wave_has_no_second_order(self):
        """A single plane wave is an exact Zel'dovich solution: the 2LPT
        source (a determinant of the Hessian's off-diagonal products)
        vanishes identically."""
        dk, _ = plane_wave_delta_k(16, 64.0, 0.05)
        psi2 = lpt2_displacement(dk, 64.0)
        np.testing.assert_allclose(psi2, 0.0, atol=1e-12)

    def test_generic_field_nonzero(self):
        delta = gaussian_random_field(16, 64.0, PowerSpectrum(), rng=1)
        psi2 = lpt2_displacement(np.fft.fftn(delta), 64.0)
        assert np.abs(psi2).max() > 0

    def test_second_order_smaller_than_first_for_linear_field(self):
        ps = PowerSpectrum(sigma_8=0.2)  # weakly non-linear
        delta, dk = gaussian_random_field(16, 256.0, ps, rng=2, return_fourier=True)
        psi1 = zeldovich_displacement(dk, 256.0)
        psi2 = lpt2_displacement(dk, 256.0)
        assert np.abs(psi2).std() < np.abs(psi1).std()

    def test_quadratic_scaling(self):
        """Ψ² is quadratic in δ: doubling δ quadruples Ψ²."""
        delta = gaussian_random_field(8, 64.0, PowerSpectrum(), rng=3)
        p1 = lpt2_displacement(np.fft.fftn(delta), 64.0)
        p2 = lpt2_displacement(np.fft.fftn(2 * delta), 64.0)
        np.testing.assert_allclose(p2, 4 * p1, rtol=1e-8, atol=1e-12)


class TestSecondOrderGrowth:
    def test_eds_value(self):
        assert second_order_growth(1.0, 1.0) == pytest.approx(-3.0 / 7.0)

    def test_scales_with_d1_squared(self):
        assert second_order_growth(0.5, 0.3) == pytest.approx(
            0.25 * second_order_growth(1.0, 0.3)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            second_order_growth(1.0, 0.0)


class TestDisplaceParticles:
    def test_lattice_shape_and_bounds(self):
        q = lattice_positions(8, 64.0)
        assert q.shape == (512, 3)
        assert q.min() >= 0 and q.max() < 64.0

    def test_lattice_uniform_spacing(self):
        q = lattice_positions(4, 8.0)
        xs = np.unique(q[:, 0])
        np.testing.assert_allclose(np.diff(xs), 2.0)

    def test_zero_displacement_identity(self):
        psi = np.zeros((3, 4, 4, 4))
        x = displace_particles(psi, 8.0, d1=1.0)
        np.testing.assert_allclose(x, lattice_positions(4, 8.0))

    def test_periodic_wrapping(self):
        psi = np.full((3, 4, 4, 4), 10.0)  # push everything past the edge
        x = displace_particles(psi, 8.0, d1=1.0)
        assert np.all(x >= 0) and np.all(x < 8.0)

    def test_growth_factor_scales(self):
        psi = np.zeros((3, 4, 4, 4))
        psi[0] = 0.5
        q = lattice_positions(4, 8.0)
        x = displace_particles(psi, 8.0, d1=2.0)
        np.testing.assert_allclose(x[:, 0], np.mod(q[:, 0] + 1.0, 8.0))

    def test_second_order_term_applied(self):
        psi1 = np.zeros((3, 4, 4, 4))
        psi2 = np.zeros((3, 4, 4, 4))
        psi2[1] = 1.0
        q = lattice_positions(4, 8.0)
        x = displace_particles(psi1, 8.0, d1=1.0, psi2=psi2, d2=-0.5)
        np.testing.assert_allclose(x[:, 1], np.mod(q[:, 1] - 0.5, 8.0))

    def test_psi2_without_d2_raises(self):
        psi = np.zeros((3, 4, 4, 4))
        with pytest.raises(ValueError):
            displace_particles(psi, 8.0, d1=1.0, psi2=psi)

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            displace_particles(np.zeros((4, 4, 4)), 8.0, d1=1.0)
