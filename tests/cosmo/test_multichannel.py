"""Tests for multi-redshift (multi-channel) dataset generation —
the paper's Section VII-B extension."""

import numpy as np
import pytest

from repro.cosmo.dataset_builder import (
    SimulationConfig,
    build_arrays,
    simulate_density,
    simulate_multichannel,
)

SMALL = SimulationConfig(particle_grid=16, histogram_grid=16, box_size=32.0)


class TestSimulateMultichannel:
    def test_shape(self):
        out = simulate_multichannel((0.31, 0.82, 0.96), SMALL, (0.0, 1.0), seed=0)
        assert out.shape == (2, 16, 16, 16)

    def test_z0_channel_matches_single(self):
        multi = simulate_multichannel((0.31, 0.82, 0.96), SMALL, (0.0,), seed=3)
        single = simulate_density((0.31, 0.82, 0.96), SMALL, seed=3)
        np.testing.assert_array_equal(multi[0], single)

    def test_higher_redshift_less_clustered(self):
        """Structure grows with time: the z=1 snapshot is smoother."""
        out = simulate_multichannel((0.31, 0.9, 0.96), SMALL, (0.0, 1.0), seed=1)
        assert out[1].std() < out[0].std()

    def test_channels_share_initial_conditions(self):
        """Same seed -> same phases: the snapshots are strongly
        correlated (same universe, different epochs)."""
        out = simulate_multichannel((0.31, 0.85, 0.96), SMALL, (0.0, 0.5), seed=2)
        a = out[0].ravel() - out[0].mean()
        b = out[1].ravel() - out[1].mean()
        corr = float(np.dot(a, b) / (np.linalg.norm(a) * np.linalg.norm(b)))
        assert corr > 0.5

    def test_counts_conserved_per_channel(self):
        out = simulate_multichannel((0.31, 0.82, 0.96), SMALL, (0.0, 2.0), seed=4)
        for c in range(2):
            assert out[c].sum() == 16**3

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_multichannel((0.31, 0.82, 0.96), SMALL, ())
        with pytest.raises(ValueError):
            simulate_multichannel((0.31, 0.82, 0.96), SMALL, (-1.0,))


class TestBuildArraysMultichannel:
    def test_channel_axis(self):
        x, y, th = build_arrays(2, SMALL, seed=0, redshifts=(0.0, 1.0))
        assert x.shape == (16, 2, 8, 8, 8)
        assert y.shape == (16, 3)

    def test_default_single_channel(self):
        x, _, _ = build_arrays(1, SMALL, seed=0)
        assert x.shape[1] == 1

    def test_z0_channel_equals_single_channel_build(self):
        multi, _, _ = build_arrays(1, SMALL, seed=5, redshifts=(0.0, 1.0))
        single, _, _ = build_arrays(1, SMALL, seed=5)
        np.testing.assert_array_equal(multi[:, :1], single)

    def test_multichannel_network_integration(self):
        """A 2-channel network trains on 2-redshift volumes."""
        from repro.core.model import CosmoFlowModel
        from repro.core.topology import ConvSpec, CosmoFlowConfig

        x, y, _ = build_arrays(2, SMALL, seed=6, redshifts=(0.0, 0.5))
        cfg = CosmoFlowConfig(
            name="micro8_2ch",
            input_size=8,
            input_channels=2,
            conv_layers=(ConvSpec(16, 3),),
            fc_sizes=(16,),
            n_outputs=3,
        )
        model = CosmoFlowModel(cfg, seed=0)
        loss, grads = model.loss_and_gradients(x[:2], y[:2])
        assert np.isfinite(loss)
        assert all(np.all(np.isfinite(g)) for g in grads)
