"""Generate the golden fixtures for the TrainingEngine refactor.

Run once against the PRE-refactor trainers (commit 20df40d) to freeze
the exact numerics of every pre-existing execution mode::

    PYTHONPATH=src python tests/golden/generate_engine_golden.py

``tests/core/test_engine_equivalence.py`` then asserts that the
post-refactor shims reproduce these parameters and loss curves
*bitwise* — the proof that collapsing the four training loops into one
engine changed no numerics.

The fixtures are host-generated: regenerating on a machine with a
different BLAS/NumPy build may produce different (equally valid) bits.
Regenerate and re-verify on one machine.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.distributed import DistributedConfig, DistributedTrainer
from repro.core.elastic import ElasticConfig, ElasticTrainer
from repro.core.model import CosmoFlowModel
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData, Trainer, TrainerConfig

OUT = Path(__file__).parent / "engine_golden.npz"

OPT = OptimizerConfig(eta0=5e-3, decay_steps=50)
N_RANKS = 3
EPOCHS = 3


def make_dataset(n, seed=0, size=16):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, size, size, size)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


def run_local():
    model = CosmoFlowModel(tiny_16(), seed=0)
    trainer = Trainer(
        model,
        make_dataset(8),
        val_data=make_dataset(4, seed=7),
        optimizer_config=OPT,
        config=TrainerConfig(epochs=EPOCHS, seed=9),
    )
    hist = trainer.run()
    return model.get_flat_parameters(), hist


def run_distributed(mode):
    cls = ElasticTrainer if mode == "elastic" else DistributedTrainer
    kwargs = {"elastic": ElasticConfig(timeout_s=10.0)} if mode == "elastic" else {}
    trainer = cls(
        tiny_16(),
        make_dataset(9),
        val_data=make_dataset(6, seed=7),
        config=DistributedConfig(
            n_ranks=N_RANKS, epochs=EPOCHS, mode=mode, seed=0
        ),
        optimizer_config=OPT,
        **kwargs,
    )
    hist = trainer.run()
    return trainer.final_model.get_flat_parameters(), hist


def host_fingerprint():
    """BLAS/NumPy-build fingerprint from refactor-independent APIs.

    Uses only ``CosmoFlowModel.loss_and_gradients`` — untouched by the
    engine refactor — so the equivalence test can distinguish "fixture
    from a different numerical build" (skip) from "refactor changed the
    numerics" (fail).
    """
    model = CosmoFlowModel(tiny_16(), seed=0)
    data = make_dataset(2)
    loss, grads = model.loss_and_gradients(data.x[:1], data.y[:1])
    return np.concatenate([[loss], grads[0].ravel()[:32]]).astype(np.float64)


def main():
    payload = {"host_fingerprint": host_fingerprint()}
    params, hist = run_local()
    payload["local_params"] = params
    payload["local_train_loss"] = np.asarray(hist.train_loss)
    payload["local_val_loss"] = np.asarray(hist.val_loss)
    for mode in ("stepped", "threaded", "elastic"):
        params, hist = run_distributed(mode)
        payload[f"{mode}_params"] = params
        payload[f"{mode}_train_loss"] = np.asarray(hist.train_loss)
        payload[f"{mode}_val_loss"] = np.asarray(hist.val_loss)
    np.savez(OUT, **payload)
    print(f"wrote {OUT}")
    for key in sorted(payload):
        arr = payload[key]
        print(f"  {key}: shape={arr.shape} sum={float(np.sum(arr)):.10g}")


if __name__ == "__main__":
    main()
