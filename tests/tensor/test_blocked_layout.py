"""Tensor-layer tests for layout-carrying tensors and blocked execution.

The tensor layer's contract: a ``Tensor`` may carry a layout tag; convs
and pools propagate it so a ConvBlock -> pool -> ConvBlock chain runs
natively blocked with zero interior reorders; gradients cross layouts
only at the genuine boundaries (stack entry, flatten exit, parameter
unblock) — and the whole thing is **bitwise** equal to the plain path.
"""

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.primitives import registry
from repro.primitives.layout import clear_reorder_cache
from repro.tensor import ops
from repro.tensor.layers import (
    AvgPool3D,
    Conv3D,
    Dense,
    Flatten,
    LeakyReLU,
    Sequential,
    ToLayout,
)
from repro.tensor.tensor import Tensor


@pytest.fixture(autouse=True)
def _clean():
    clear_reorder_cache()
    yield
    clear_reorder_cache()
    registry.set_metrics(None)


def _x(shape=(2, 5, 6, 6, 6), seed=0):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


class TestToLayoutOp:
    def test_round_trip_bitwise(self):
        x = _x()
        t = Tensor(x)
        b = ops.to_layout(t, "nCdhw16c")
        assert b.layout.name == "nCdhw16c" and b.channels == 5
        back = ops.to_layout(b, "ncdhw")
        assert back.layout is None
        np.testing.assert_array_equal(back.data, x)

    def test_noop_when_already_there(self):
        t = Tensor(_x())
        assert ops.to_layout(t, "ncdhw") is t
        b = ops.to_layout(t, "nCdhw16c")
        assert ops.to_layout(b, "nCdhw16c") is b

    def test_gradient_crosses_back(self):
        x = _x()
        t = Tensor(x, requires_grad=True)
        b = ops.to_layout(t, "nCdhw16c")
        ops.sum_(ops.mul(b, b)).backward()
        # d/dx sum(blocked(x)^2) == 2x: padded lanes contribute nothing.
        np.testing.assert_allclose(t.grad, 2.0 * x, rtol=1e-6)
        assert t.grad.shape == x.shape

    def test_rejects_weight_layout(self):
        with pytest.raises(ValueError):
            ops.to_layout(Tensor(_x()), "OIdhw16i16o")

    def test_blocked_to_plain_needs_channels(self):
        stray = Tensor(np.zeros((2, 1, 3, 3, 3, 16), dtype=np.float32))
        stray.layout = ops.to_layout(Tensor(_x()), "nCdhw16c").layout
        with pytest.raises(ValueError):
            ops.to_layout(stray, "ncdhw")


class TestLayoutPropagation:
    def test_conv_tags_output(self):
        conv = Conv3D(5, 7, 3, rng=np.random.default_rng(0), impl="blocked")
        out = conv(Tensor(_x()))
        assert out.layout is not None and out.layout.is_blocked
        assert out.channels == 7

    def test_pool_keeps_layout(self):
        b = ops.to_layout(Tensor(_x()), "nCdhw16c")
        out = ops.avg_pool3d(b, 2)
        assert out.layout is b.layout and out.channels == 5

    def test_leaky_relu_keeps_layout(self):
        b = ops.to_layout(Tensor(_x()), "nCdhw16c")
        out = ops.leaky_relu(b)
        assert out.layout is b.layout and out.channels == 5

    def test_flatten_exits_blocked(self):
        b = ops.to_layout(Tensor(_x()), "nCdhw16c")
        flat = ops.flatten(b)
        assert flat.layout is None
        assert flat.shape == (2, 5 * 6 * 6 * 6)

    def test_sigmoid_rejects_blocked(self):
        b = ops.to_layout(Tensor(_x()), "nCdhw16c")
        with pytest.raises(ValueError, match="sigmoid"):
            ops.sigmoid(b)

    def test_reshape_and_transpose_reject_blocked(self):
        b = ops.to_layout(Tensor(_x()), "nCdhw16c")
        with pytest.raises(ValueError, match="reshape"):
            ops.reshape(b, (-1,))
        with pytest.raises(ValueError, match="transpose"):
            ops.transpose(b)

    def test_detach_and_repr_carry_tag(self):
        b = ops.to_layout(Tensor(_x()), "nCdhw16c")
        d = b.detach()
        assert d.layout is b.layout and d.channels == 5
        assert "nCdhw16c" in repr(b)

    def test_plain_conv_on_blocked_input_reorders_at_boundary(self):
        """A layout-incompatible impl forces a (taped) exit reorder."""
        b = ops.to_layout(Tensor(_x()), "nCdhw16c")
        conv = Conv3D(5, 7, 3, rng=np.random.default_rng(0), impl="gemm")
        out = conv(b)
        assert out.layout is None  # ran plain


def _stack(impl):
    return Sequential([
        Conv3D(5, 16, 3, rng=np.random.default_rng(1), impl=impl, name="c1"),
        LeakyReLU(),
        AvgPool3D(2),
        Conv3D(16, 20, 2, rng=np.random.default_rng(2), impl=impl, name="c2"),
        LeakyReLU(),
        Flatten(),
        Dense(20 * 2 ** 3, 3, rng=np.random.default_rng(3), name="head"),
    ])


class TestBlockedEndToEnd:
    def test_forward_bitwise_vs_direct(self):
        x = _x((2, 5, 9, 9, 9))
        out_d = _stack("direct")(Tensor(x))
        out_b = _stack("blocked")(Tensor(x))
        assert np.array_equal(out_d.data, out_b.data)

    def test_training_step_bitwise_vs_direct(self):
        """Two SGD steps: losses, gradients, and updated parameters all
        bitwise-equal between the plain and blocked-e2e paths."""
        x = _x((2, 5, 9, 9, 9))
        y = _x((2, 3), seed=4)
        results = {}
        for impl in ("direct", "blocked"):
            clear_reorder_cache()
            net = _stack(impl)
            losses, grads = [], []
            for _ in range(2):
                for p in net.parameters():
                    p.zero_grad()
                loss = ops.mse_loss(net(Tensor(x)), Tensor(y))
                loss.backward()
                losses.append(loss.item())
                grads.append([p.grad.copy() for p in net.parameters()])
                for p in net.parameters():
                    p.data -= 1e-3 * p.grad
            results[impl] = (losses, grads, [p.data for p in net.parameters()])
        assert results["direct"][0] == results["blocked"][0]
        for gd, gb in zip(results["direct"][1], results["blocked"][1]):
            for a, b in zip(gd, gb):
                assert np.array_equal(a, b)
        for a, b in zip(results["direct"][2], results["blocked"][2]):
            assert np.array_equal(a, b)

    def test_zero_interior_reorders(self):
        """Blocked chain: activation reorders happen only at the entry
        and the flatten exit, never between conv/pool/activation ops."""
        metrics = MetricsRegistry()
        registry.set_metrics(metrics)
        net = _stack("blocked")
        net(Tensor(_x((2, 5, 9, 9, 9))))
        snap = metrics.snapshot()
        # 1 batch entry reorder (plain->blocked at c1) + 1 exit (flatten).
        assert snap["primitives.reorder.ncdhw->nCdhw16c.calls"] == 1
        assert snap["primitives.reorder.nCdhw16c->ncdhw.calls"] == 1

    def test_explicit_tolayout_layer(self):
        """ToLayout at the stack top + plain-tolerant layers behaves the
        same as letting conv1 do the entry reorder."""
        x = _x((2, 5, 9, 9, 9))
        implicit = _stack("blocked")(Tensor(x))
        stack = _stack("blocked")
        explicit = Sequential([ToLayout("nCdhw16c")] + stack.layers)(Tensor(x))
        assert np.array_equal(implicit.data, explicit.data)

    def test_output_shape_is_layout_independent(self):
        net = Sequential([ToLayout("nCdhw16c")] + _stack("blocked").layers)
        assert net.output_shape((5, 9, 9, 9)) == (3,)

    def test_auto_impl_runs_end_to_end(self, tmp_path):
        from repro.primitives import autotune

        autotune.set_tuner(autotune.Autotuner(
            autotune.TuningCache(tmp_path / "t.json"), repeats=1
        ))
        try:
            x = _x((1, 5, 9, 9, 9))
            out_auto = _stack("auto")(Tensor(x))
            out_direct = _stack("direct")(Tensor(x))
            np.testing.assert_allclose(
                out_auto.data, out_direct.data, rtol=2e-4, atol=2e-4
            )
        finally:
            autotune.set_tuner(None)
