"""Finite-difference gradient sweep over under-tested op corners.

``tests/tensor/test_ops.py`` covers each op's happy path; this sweep
targets the argument corners the CosmoFlow model itself never exercises
but the public op API allows: ``keepdims`` reductions, tuple and
negative axes, reshape/transpose chains, and pooling over extents that
the kernel does not divide (floor semantics — trailing voxels are
dropped and must receive exactly zero gradient).
"""

import numpy as np

from repro.tensor import ops
from repro.tensor.tensor import Tensor
from tests.gradcheck import check_grads


def randn(rng, *shape):
    return rng.standard_normal(shape)


class TestReduceCorners:
    def test_sum_keepdims(self):
        rng = np.random.default_rng(0)
        check_grads(
            lambda t: (ops.sum_(t["x"], axis=1, keepdims=True) * t["x"]).sum(),
            {"x": randn(rng, 3, 4)},
        )

    def test_sum_axis_tuple(self):
        rng = np.random.default_rng(1)
        check_grads(
            lambda t: (ops.sum_(t["x"], axis=(0, 2)) ** 2).sum(),
            {"x": randn(rng, 2, 3, 4)},
        )

    def test_sum_negative_axis(self):
        rng = np.random.default_rng(2)
        check_grads(
            lambda t: (ops.sum_(t["x"], axis=-1) ** 2).sum(),
            {"x": randn(rng, 3, 4)},
        )

    def test_sum_all_axes_keepdims(self):
        rng = np.random.default_rng(3)
        check_grads(
            lambda t: (ops.sum_(t["x"], keepdims=True) * t["x"]).sum(),
            {"x": randn(rng, 2, 3)},
        )

    def test_mean_keepdims_broadcasts_back(self):
        # x - mean(x, keepdims=True): the keepdims shape must broadcast
        # against the input inside the graph, not just at the output.
        rng = np.random.default_rng(4)
        check_grads(
            lambda t: ((t["x"] - ops.mean(t["x"], axis=-1, keepdims=True)) ** 2).sum(),
            {"x": randn(rng, 3, 5)},
        )

    def test_mean_negative_axis_tuple(self):
        rng = np.random.default_rng(5)
        check_grads(
            lambda t: (ops.mean(t["x"], axis=(-2, -1)) ** 2).sum(),
            {"x": randn(rng, 2, 3, 4)},
        )


class TestReshapeChains:
    def test_transpose_reshape_sum_chain(self):
        rng = np.random.default_rng(6)
        check_grads(
            lambda t: (
                ops.sum_(ops.reshape(ops.transpose(t["x"], (1, 0, 2)), (3, 8)), axis=0)
                ** 2
            ).sum(),
            {"x": randn(rng, 2, 3, 4)},
        )

    def test_transpose_default_reverses_axes(self):
        rng = np.random.default_rng(7)
        check_grads(
            lambda t: ((ops.transpose(t["x"]) * t["y"]) ** 2).sum(),
            {"x": randn(rng, 2, 3), "y": randn(rng, 3, 2)},
        )

    def test_flatten_start_axis(self):
        rng = np.random.default_rng(8)
        check_grads(
            lambda t: (ops.flatten(t["x"], start_axis=2) ** 2).sum(),
            {"x": randn(rng, 2, 3, 2, 2)},
        )

    def test_reshape_inferred_dim(self):
        rng = np.random.default_rng(9)
        check_grads(
            lambda t: (ops.reshape(t["x"], (4, -1)) ** 2).sum(),
            {"x": randn(rng, 2, 2, 3)},
        )


class TestPoolNonDivisible:
    def test_pool_floor_semantics_gradcheck(self):
        # 5^3 input with kernel 2 -> 2^3 output; the trailing plane in
        # each axis is dropped by floor division.
        rng = np.random.default_rng(10)
        check_grads(
            lambda t: (ops.avg_pool3d(t["x"], kernel=2) ** 2).sum(),
            {"x": randn(rng, 1, 1, 5, 5, 5)},
        )

    def test_dropped_voxels_get_zero_grad(self):
        rng = np.random.default_rng(11)
        x = Tensor(randn(rng, 1, 1, 5, 5, 5), requires_grad=True)
        ops.avg_pool3d(x, kernel=2).sum().backward()
        g = x.grad
        # Covered voxels each contribute to exactly one window: 1/8.
        np.testing.assert_allclose(g[:, :, :4, :4, :4], 1.0 / 8)
        assert np.all(g[:, :, 4, :, :] == 0)
        assert np.all(g[:, :, :, 4, :] == 0)
        assert np.all(g[:, :, :, :, 4] == 0)

    def test_pool_stride_smaller_than_kernel(self):
        # Overlapping windows: each interior voxel feeds several
        # windows, so the gradient must accumulate across them.
        rng = np.random.default_rng(12)
        check_grads(
            lambda t: (ops.avg_pool3d(t["x"], kernel=3, stride=2) ** 2).sum(),
            {"x": randn(rng, 1, 1, 5, 5, 5)},
        )


class TestFp16PipelineGradients:
    """Gradients under the mixed-precision recipe (fp16-rounded inputs
    and scaled fp16-rounded outputs) vs the fp32 reference.

    The fp16 pipeline is *defined* as a deterministic transform of the
    fp32 tape: round the inputs, run the fp32 graph, scale and round
    the gradients.  These tests pin (a) the exact cast relation —
    ``g16 == fp16(fp32_grad(fp16(x)) * S)`` bitwise — and (b) that the
    rounding error stays within fp16 resolution of the fp32 gradient
    across the model's corner shapes.
    """

    def _model_grads(self, seed, precision_scale=None, size=16):
        from repro.core.model import CosmoFlowModel
        from repro.core.precision import fp16_loss_and_gradients, fp16_round
        from repro.core.topology import tiny_16

        rng = np.random.default_rng(seed)
        model = CosmoFlowModel(tiny_16(), seed=0)
        x = rng.standard_normal((2, 1, size, size, size)).astype(np.float32)
        y = rng.uniform(0.2, 0.8, size=(2, 3)).astype(np.float32)
        if precision_scale is None:
            return model.loss_and_gradients(x, y)
        return fp16_loss_and_gradients(model, x, y, precision_scale)

    def test_exact_cast_relation(self):
        # The fp16 pipeline's gradients ARE the fp32 gradients of the
        # fp16-rounded input, scaled and rounded — bitwise.
        from repro.core.model import CosmoFlowModel
        from repro.core.precision import fp16_loss_and_gradients, fp16_round
        from repro.core.topology import tiny_16

        rng = np.random.default_rng(20)
        x = rng.standard_normal((2, 1, 16, 16, 16)).astype(np.float32)
        y = rng.uniform(0.2, 0.8, size=(2, 3)).astype(np.float32)
        scale = 512.0

        m16 = CosmoFlowModel(tiny_16(), seed=0)
        _, g16 = fp16_loss_and_gradients(m16, x, y, scale)

        m32 = CosmoFlowModel(tiny_16(), seed=0)
        _, g32 = m32.loss_and_gradients(fp16_round(x), y)
        s = np.float32(scale)
        for a, b in zip(g16, g32):
            assert np.array_equal(a, fp16_round(np.asarray(b, np.float32) * s))

    def test_fp16_grads_within_fp16_tolerance_of_fp32(self):
        # Against the fp32 gradients *at the fp16-rounded input* the
        # only remaining difference is the output-side g vs
        # fp16(g*S)/S rounding — bounded by one fp16 ulp at the
        # tensor's magnitude (plus the subnormal floor over S).
        from repro.core.model import CosmoFlowModel
        from repro.core.precision import LossScaler, fp16_loss_and_gradients, fp16_round
        from repro.core.topology import tiny_16

        rng = np.random.default_rng(21)
        x = rng.standard_normal((2, 1, 16, 16, 16)).astype(np.float32)
        y = rng.uniform(0.2, 0.8, size=(2, 3)).astype(np.float32)
        scaler = LossScaler(init_scale=1024.0)

        m16 = CosmoFlowModel(tiny_16(), seed=0)
        loss16, g16_scaled = fp16_loss_and_gradients(m16, x, y, scaler.scale)
        g16 = scaler.unscale(g16_scaled)
        assert not scaler.check_overflow(g16)

        m32 = CosmoFlowModel(tiny_16(), seed=0)
        loss32, g32 = m32.loss_and_gradients(fp16_round(x), y)
        assert loss16 == loss32  # same forward pass, loss unscaled
        for a, b in zip(g16, g32):
            b = np.asarray(b, np.float32)
            tol = 2.0**-10 * max(1e-6, float(np.max(np.abs(b)))) + 2.0**-24 / scaler.scale
            assert np.max(np.abs(a - b)) <= tol

    def test_fp16_grads_track_fp32_at_unrounded_input(self):
        # End-to-end: against the true fp32 gradients (unrounded input)
        # the fp16 pipeline stays within a few percent relative error —
        # the looser bound that catches catastrophic scaling bugs.
        from repro.core.precision import LossScaler

        scaler = LossScaler(init_scale=1024.0)
        loss32, g32 = self._model_grads(21)
        loss16, g16_scaled = self._model_grads(21, precision_scale=scaler.scale)
        g16 = scaler.unscale(g16_scaled)
        assert abs(loss16 - loss32) <= 1e-2 * max(1.0, abs(loss32))
        for a, b in zip(g16, g32):
            b = np.asarray(b, np.float32)
            assert np.max(np.abs(a - b)) <= 0.05 * max(1e-6, float(np.max(np.abs(b))))
