"""Finite-difference gradient sweep over under-tested op corners.

``tests/tensor/test_ops.py`` covers each op's happy path; this sweep
targets the argument corners the CosmoFlow model itself never exercises
but the public op API allows: ``keepdims`` reductions, tuple and
negative axes, reshape/transpose chains, and pooling over extents that
the kernel does not divide (floor semantics — trailing voxels are
dropped and must receive exactly zero gradient).
"""

import numpy as np

from repro.tensor import ops
from repro.tensor.tensor import Tensor
from tests.gradcheck import check_grads


def randn(rng, *shape):
    return rng.standard_normal(shape)


class TestReduceCorners:
    def test_sum_keepdims(self):
        rng = np.random.default_rng(0)
        check_grads(
            lambda t: (ops.sum_(t["x"], axis=1, keepdims=True) * t["x"]).sum(),
            {"x": randn(rng, 3, 4)},
        )

    def test_sum_axis_tuple(self):
        rng = np.random.default_rng(1)
        check_grads(
            lambda t: (ops.sum_(t["x"], axis=(0, 2)) ** 2).sum(),
            {"x": randn(rng, 2, 3, 4)},
        )

    def test_sum_negative_axis(self):
        rng = np.random.default_rng(2)
        check_grads(
            lambda t: (ops.sum_(t["x"], axis=-1) ** 2).sum(),
            {"x": randn(rng, 3, 4)},
        )

    def test_sum_all_axes_keepdims(self):
        rng = np.random.default_rng(3)
        check_grads(
            lambda t: (ops.sum_(t["x"], keepdims=True) * t["x"]).sum(),
            {"x": randn(rng, 2, 3)},
        )

    def test_mean_keepdims_broadcasts_back(self):
        # x - mean(x, keepdims=True): the keepdims shape must broadcast
        # against the input inside the graph, not just at the output.
        rng = np.random.default_rng(4)
        check_grads(
            lambda t: ((t["x"] - ops.mean(t["x"], axis=-1, keepdims=True)) ** 2).sum(),
            {"x": randn(rng, 3, 5)},
        )

    def test_mean_negative_axis_tuple(self):
        rng = np.random.default_rng(5)
        check_grads(
            lambda t: (ops.mean(t["x"], axis=(-2, -1)) ** 2).sum(),
            {"x": randn(rng, 2, 3, 4)},
        )


class TestReshapeChains:
    def test_transpose_reshape_sum_chain(self):
        rng = np.random.default_rng(6)
        check_grads(
            lambda t: (
                ops.sum_(ops.reshape(ops.transpose(t["x"], (1, 0, 2)), (3, 8)), axis=0)
                ** 2
            ).sum(),
            {"x": randn(rng, 2, 3, 4)},
        )

    def test_transpose_default_reverses_axes(self):
        rng = np.random.default_rng(7)
        check_grads(
            lambda t: ((ops.transpose(t["x"]) * t["y"]) ** 2).sum(),
            {"x": randn(rng, 2, 3), "y": randn(rng, 3, 2)},
        )

    def test_flatten_start_axis(self):
        rng = np.random.default_rng(8)
        check_grads(
            lambda t: (ops.flatten(t["x"], start_axis=2) ** 2).sum(),
            {"x": randn(rng, 2, 3, 2, 2)},
        )

    def test_reshape_inferred_dim(self):
        rng = np.random.default_rng(9)
        check_grads(
            lambda t: (ops.reshape(t["x"], (4, -1)) ** 2).sum(),
            {"x": randn(rng, 2, 2, 3)},
        )


class TestPoolNonDivisible:
    def test_pool_floor_semantics_gradcheck(self):
        # 5^3 input with kernel 2 -> 2^3 output; the trailing plane in
        # each axis is dropped by floor division.
        rng = np.random.default_rng(10)
        check_grads(
            lambda t: (ops.avg_pool3d(t["x"], kernel=2) ** 2).sum(),
            {"x": randn(rng, 1, 1, 5, 5, 5)},
        )

    def test_dropped_voxels_get_zero_grad(self):
        rng = np.random.default_rng(11)
        x = Tensor(randn(rng, 1, 1, 5, 5, 5), requires_grad=True)
        ops.avg_pool3d(x, kernel=2).sum().backward()
        g = x.grad
        # Covered voxels each contribute to exactly one window: 1/8.
        np.testing.assert_allclose(g[:, :, :4, :4, :4], 1.0 / 8)
        assert np.all(g[:, :, 4, :, :] == 0)
        assert np.all(g[:, :, :, 4, :] == 0)
        assert np.all(g[:, :, :, :, 4] == 0)

    def test_pool_stride_smaller_than_kernel(self):
        # Overlapping windows: each interior voxel feeds several
        # windows, so the gradient must accumulate across them.
        rng = np.random.default_rng(12)
        check_grads(
            lambda t: (ops.avg_pool3d(t["x"], kernel=3, stride=2) ** 2).sum(),
            {"x": randn(rng, 1, 1, 5, 5, 5)},
        )
