"""Edge-case and property tests for the tensor framework."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import ops
from repro.tensor.tensor import Tensor, no_grad


class TestDtypePolicy:
    def test_ops_preserve_float32(self):
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        for expr in (a + 1.0, a * 2.0, ops.leaky_relu(a), a.sum(), a.mean()):
            assert expr.dtype in (np.float32, np.dtype(np.float32)), expr.op_name

    def test_mixed_precision_promotes(self):
        a = Tensor(np.ones(3, dtype=np.float32))
        b = Tensor(np.ones(3, dtype=np.float64))
        assert (a + b).dtype == np.float64

    def test_bool_input_coerced(self):
        t = Tensor(np.array([True, False]))
        assert t.dtype == np.float32


class TestGraphShapes:
    def test_scalar_times_tensor_grad_shapes(self):
        s = Tensor(2.0, requires_grad=True)
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        (s * x).sum().backward()
        assert s.grad.shape == ()
        assert x.grad.shape == (2, 3)

    def test_chained_reshapes_grad(self):
        x = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        y = x.reshape(2, 3).reshape(3, 2).reshape(6)
        (y * y).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * x.data)

    def test_zero_size_axis_mean(self):
        # mean over an axis of a 0-size array: keep graceful NaN behavior
        x = Tensor(np.ones((2, 3)))
        out = x.sum(axis=0)
        assert out.shape == (3,)

    def test_keepdims_grad(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        x.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(x.grad, 1.0)


class TestNoGradInteractions:
    def test_mixed_graph_segments(self):
        x = Tensor(2.0, requires_grad=True)
        with no_grad():
            frozen = x * 3.0  # constant from here on
        y = x * frozen  # d/dx = frozen = 6
        y.backward()
        assert x.grad == pytest.approx(6.0)

    def test_detach_mid_graph(self):
        x = Tensor(2.0, requires_grad=True)
        a = x * 3.0
        y = x * a.detach()
        y.backward()
        assert x.grad == pytest.approx(6.0)


class TestPropertyGradients:
    @given(
        shape=st.sampled_from([(3,), (2, 2), (1, 4), (2, 1, 3)]),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_sum_of_squares_gradient(self, shape, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal(shape), requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * x.data, rtol=1e-6)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_leaky_relu_idempotent_on_positive(self, seed):
        rng = np.random.default_rng(seed)
        x = np.abs(rng.standard_normal(8)) + 0.1
        out = ops.leaky_relu(Tensor(x)).data
        np.testing.assert_allclose(out, x, rtol=1e-7)

    @given(
        alpha=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_leaky_relu_bounds(self, alpha, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(16)
        out = ops.leaky_relu(Tensor(x), alpha=alpha).data
        assert np.all(out <= np.maximum(x, alpha * x) + 1e-7)
        assert np.all(out >= np.minimum(x, alpha * x) - 1e-7)

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_mse_nonnegative_and_zero_iff_equal(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((3, 2))
        assert ops.mse_loss(Tensor(a), Tensor(a.copy())).item() == pytest.approx(0.0)
        b = a + rng.standard_normal((3, 2)) * 0.1 + 0.05
        assert ops.mse_loss(Tensor(a), Tensor(b)).item() > 0.0


class TestConvOpEdges:
    def test_kernel_equal_to_input(self):
        """A kernel the size of the input produces a 1x1x1 output — the
        'backward weights is a big-kernel conv' regime."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 2, 4, 4, 4)).astype(np.float32)
        w = rng.standard_normal((3, 2, 4, 4, 4)).astype(np.float32)
        out = ops.conv3d(Tensor(x), Tensor(w))
        assert out.shape == (1, 3, 1, 1, 1)
        want = np.tensordot(w, x[0], axes=([1, 2, 3, 4], [0, 1, 2, 3]))
        np.testing.assert_allclose(out.data[0, :, 0, 0, 0], want, rtol=1e-4)

    def test_1x1x1_kernel_is_channel_mix(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 3, 2, 2, 2)).astype(np.float32)
        w = rng.standard_normal((4, 3, 1, 1, 1)).astype(np.float32)
        out = ops.conv3d(Tensor(x), Tensor(w)).data
        want = np.einsum("oc,ncdhw->nodhw", w[:, :, 0, 0, 0], x)
        np.testing.assert_allclose(out, want, rtol=1e-5, atol=1e-6)

    def test_batch_independence(self):
        """conv(concat(a, b)) == concat(conv(a), conv(b))."""
        rng = np.random.default_rng(2)
        a = rng.standard_normal((1, 2, 4, 4, 4)).astype(np.float32)
        b = rng.standard_normal((1, 2, 4, 4, 4)).astype(np.float32)
        w = rng.standard_normal((2, 2, 3, 3, 3)).astype(np.float32)
        both = ops.conv3d(Tensor(np.concatenate([a, b])), Tensor(w)).data
        np.testing.assert_allclose(both[0], ops.conv3d(Tensor(a), Tensor(w)).data[0], rtol=1e-5)
        np.testing.assert_allclose(both[1], ops.conv3d(Tensor(b), Tensor(w)).data[0], rtol=1e-5)
