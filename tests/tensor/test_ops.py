"""Gradient and semantics tests for every op in repro.tensor.ops."""

import numpy as np
import pytest

from repro.tensor import ops
from repro.tensor.tensor import Tensor
from tests.gradcheck import check_grads


def randn(rng, *shape):
    return rng.standard_normal(shape)


class TestElementwiseGradients:
    def test_add_broadcast(self):
        rng = np.random.default_rng(0)
        check_grads(
            lambda t: (t["a"] + t["b"]).sum(),
            {"a": randn(rng, 2, 3), "b": randn(rng, 3)},
        )

    def test_sub(self):
        rng = np.random.default_rng(1)
        check_grads(
            lambda t: (t["a"] - t["b"]).sum(),
            {"a": randn(rng, 4), "b": randn(rng, 4)},
        )

    def test_mul_broadcast(self):
        rng = np.random.default_rng(2)
        check_grads(
            lambda t: (t["a"] * t["b"]).sum(),
            {"a": randn(rng, 2, 3), "b": randn(rng, 2, 1)},
        )

    def test_div(self):
        rng = np.random.default_rng(3)
        check_grads(
            lambda t: (t["a"] / (t["b"] + 5.0)).sum(),
            {"a": randn(rng, 3), "b": randn(rng, 3)},
        )

    def test_neg(self):
        rng = np.random.default_rng(4)
        check_grads(lambda t: (-t["x"]).sum(), {"x": randn(rng, 3)})

    def test_power_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            ops.power(Tensor([1.0]), Tensor([2.0]))

    def test_maximum_gradient_routing(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 2.0]), requires_grad=True)
        ops.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_maximum_tie_goes_to_first(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = Tensor(np.array([2.0]), requires_grad=True)
        ops.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [0.0])

    def test_clip_values_and_grad(self):
        x = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        y = ops.clip(x, 0.0, 1.0)
        np.testing.assert_allclose(y.data, [0.0, 0.5, 1.0])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_scalar_left_operands(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = 1.0 - x
        z = 6.0 / x
        np.testing.assert_allclose(y.data, [-1.0])
        np.testing.assert_allclose(z.data, [3.0])


class TestReductions:
    def test_sum_axis(self):
        rng = np.random.default_rng(5)
        check_grads(lambda t: t["x"].sum(axis=0).sum(), {"x": randn(rng, 3, 4)})

    def test_sum_keepdims_shape(self):
        x = Tensor(np.zeros((2, 3)))
        assert x.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean_grad_value(self):
        x = Tensor(np.zeros(4), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, 0.25)

    def test_mean_axis(self):
        rng = np.random.default_rng(6)
        check_grads(lambda t: (t["x"].mean(axis=1) ** 2).sum(), {"x": randn(rng, 3, 4)})

    def test_negative_axis(self):
        x = Tensor(np.ones((2, 3)))
        assert x.sum(axis=-1).shape == (2,)


class TestReshapeOps:
    def test_reshape_round_trip_grad(self):
        rng = np.random.default_rng(7)
        check_grads(
            lambda t: (t["x"].reshape(6) ** 2).sum(),
            {"x": randn(rng, 2, 3)},
        )

    def test_reshape_varargs(self):
        x = Tensor(np.zeros((2, 3)))
        assert x.reshape(3, 2).shape == (3, 2)
        assert x.reshape((6,)).shape == (6,)

    def test_flatten_keeps_batch(self):
        x = Tensor(np.zeros((4, 2, 3, 5)))
        assert ops.flatten(x).shape == (4, 30)

    def test_transpose_grad(self):
        rng = np.random.default_rng(8)
        check_grads(
            lambda t: (ops.transpose(t["x"], (1, 0)) * ops.transpose(t["x"], (1, 0))).sum(),
            {"x": randn(rng, 2, 3)},
        )

    def test_transpose_default_reverses(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert ops.transpose(x).shape == (4, 3, 2)


class TestActivations:
    def test_leaky_relu_values(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]))
        y = ops.leaky_relu(x, alpha=0.1)
        np.testing.assert_allclose(y.data, [-0.1, 0.0, 2.0], rtol=1e-6)

    def test_leaky_relu_grad(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        ops.leaky_relu(x, alpha=0.25).sum().backward()
        np.testing.assert_allclose(x.grad, [0.25, 1.0])

    def test_relu_is_leaky_zero(self):
        x = Tensor(np.array([-3.0, 3.0]))
        np.testing.assert_allclose(ops.relu(x).data, [0.0, 3.0])

    def test_sigmoid_grad(self):
        rng = np.random.default_rng(9)
        check_grads(lambda t: ops.sigmoid(t["x"]).sum(), {"x": randn(rng, 5)})

    def test_tanh_grad(self):
        rng = np.random.default_rng(10)
        check_grads(lambda t: ops.tanh(t["x"]).sum(), {"x": randn(rng, 5)})

    def test_leaky_relu_finite_diff(self):
        rng = np.random.default_rng(11)
        # keep values away from the kink for finite differences
        x = randn(rng, 6)
        x[np.abs(x) < 0.1] = 0.5
        check_grads(lambda t: (ops.leaky_relu(t["x"]) ** 2).sum(), {"x": x})


class TestDense:
    def test_matmul_grad(self):
        rng = np.random.default_rng(12)
        check_grads(
            lambda t: (t["a"] @ t["b"]).sum(),
            {"a": randn(rng, 3, 4), "b": randn(rng, 4, 2)},
        )

    def test_matmul_rejects_1d(self):
        with pytest.raises(ValueError):
            ops.matmul(Tensor(np.zeros(3)), Tensor(np.zeros((3, 2))))

    def test_linear_grad_with_bias(self):
        rng = np.random.default_rng(13)
        check_grads(
            lambda t: (ops.linear(t["x"], t["w"], t["b"]) ** 2).sum(),
            {"x": randn(rng, 2, 3), "w": randn(rng, 3, 4), "b": randn(rng, 4)},
        )

    def test_linear_no_bias(self):
        rng = np.random.default_rng(14)
        check_grads(
            lambda t: ops.linear(t["x"], t["w"]).sum(),
            {"x": randn(rng, 2, 3), "w": randn(rng, 3, 4)},
        )

    def test_linear_shape_checks(self):
        with pytest.raises(ValueError):
            ops.linear(Tensor(np.zeros((2, 3))), Tensor(np.zeros((4, 2))))
        with pytest.raises(ValueError):
            ops.linear(
                Tensor(np.zeros((2, 3))), Tensor(np.zeros((3, 2))), Tensor(np.zeros(3))
            )


class TestConvPoolOps:
    def test_conv3d_grad_all_inputs(self):
        rng = np.random.default_rng(15)
        check_grads(
            lambda t: (ops.conv3d(t["x"], t["w"], t["b"]) ** 2).sum(),
            {
                "x": randn(rng, 1, 2, 4, 4, 4),
                "w": randn(rng, 2, 2, 3, 3, 3),
                "b": randn(rng, 2),
            },
            rtol=5e-4,
            atol=5e-5,
        )

    def test_conv3d_no_bias_grad(self):
        rng = np.random.default_rng(16)
        check_grads(
            lambda t: ops.conv3d(t["x"], t["w"], stride=2).sum(),
            {"x": randn(rng, 1, 1, 5, 5, 5), "w": randn(rng, 2, 1, 2, 2, 2)},
        )

    def test_conv3d_direct_impl_selection(self):
        rng = np.random.default_rng(17)
        x = Tensor(randn(rng, 1, 16, 5, 5, 5).astype(np.float32))
        w = Tensor(randn(rng, 16, 16, 3, 3, 3).astype(np.float32))
        a = ops.conv3d(x, w, impl="gemm")
        b = ops.conv3d(x, w, impl="direct")
        np.testing.assert_allclose(a.data, b.data, rtol=2e-4, atol=2e-4)

    def test_avg_pool3d_grad(self):
        rng = np.random.default_rng(18)
        check_grads(
            lambda t: (ops.avg_pool3d(t["x"], 2) ** 2).sum(),
            {"x": randn(rng, 1, 2, 5, 5, 5)},
        )

    def test_conv_then_pool_pipeline_grad(self):
        rng = np.random.default_rng(19)
        check_grads(
            lambda t: ops.avg_pool3d(ops.leaky_relu(ops.conv3d(t["x"], t["w"])), 2).sum(),
            {"x": randn(rng, 1, 1, 6, 6, 6), "w": randn(rng, 2, 1, 3, 3, 3)},
            rtol=5e-4,
            atol=5e-5,
        )


class TestLosses:
    def test_mse_value(self):
        p = Tensor(np.array([1.0, 2.0]))
        t = Tensor(np.array([0.0, 0.0]))
        assert ops.mse_loss(p, t).item() == pytest.approx(2.5)

    def test_mse_grad(self):
        rng = np.random.default_rng(20)
        check_grads(
            lambda t: ops.mse_loss(t["p"], t["t"]),
            {"p": randn(rng, 3, 2), "t": randn(rng, 3, 2)},
        )

    def test_mae_value(self):
        p = Tensor(np.array([1.0, -2.0]))
        t = Tensor(np.array([0.0, 0.0]))
        assert ops.mae_loss(p, t).item() == pytest.approx(1.5)

    def test_mae_grad_away_from_zero(self):
        rng = np.random.default_rng(21)
        p = randn(rng, 4) + 3.0
        t = np.zeros(4)
        check_grads(lambda d: ops.mae_loss(d["p"], d["t"]), {"p": p, "t": t})

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ops.mse_loss(Tensor(np.zeros(2)), Tensor(np.zeros(3)))
