"""Tests for the autograd core (repro.tensor.tensor)."""

import numpy as np
import pytest

from repro.tensor import ops
from repro.tensor.tensor import Parameter, Tensor, no_grad, unbroadcast
from tests.gradcheck import check_grads


class TestTensorBasics:
    def test_int_input_becomes_float32(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_tensor_of_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_shape_size_ndim(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3) and t.size == 6 and t.ndim == 2

    def test_item(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_cuts_tape(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        assert b._backward is None

    def test_parameter_requires_grad(self):
        p = Parameter(np.zeros(3), name="w")
        assert p.requires_grad and p.name == "w"
        assert "w" in repr(p)


class TestBackwardMechanics:
    def test_simple_chain(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * 3.0 + 1.0) * (x * 3.0 + 1.0)  # (3x+1)^2, dy/dx = 6(3x+1) = 42
        y.backward()
        assert x.grad == pytest.approx(42.0)

    def test_fan_out_accumulates(self):
        x = Tensor(3.0, requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 7
        y.backward()
        assert x.grad == pytest.approx(7.0)

    def test_diamond_graph(self):
        x = Tensor(2.0, requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        y = a * b  # y = 6x^2, dy/dx = 24
        y.backward()
        assert x.grad == pytest.approx(24.0)

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2.0).backward()
        (x * 2.0).backward()
        assert x.grad == pytest.approx(4.0)

    def test_repeated_backward_same_graph_no_double_count_of_interior(self):
        x = Tensor(1.0, requires_grad=True)
        y = x * 5.0
        y.backward()
        y.backward()
        assert x.grad == pytest.approx(10.0)

    def test_zero_grad(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_nonscalar_needs_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()
        y.backward(np.array([1.0, 1.0], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [2.0, 2.0])

    def test_wrong_grad_shape_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2.0).backward(np.ones(3, dtype=np.float32))

    def test_backward_on_nograd_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(1.0).backward()

    def test_no_requires_grad_means_no_tape(self):
        a = Tensor([1.0])
        b = a * 2.0
        assert not b.requires_grad and b._backward is None

    def test_no_grad_context(self):
        x = Tensor(1.0, requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_nesting_restores(self):
        x = Tensor(1.0, requires_grad=True)
        with no_grad():
            with no_grad():
                pass
            y = x * 2.0
            assert not y.requires_grad
        z = x * 2.0
        assert z.requires_grad

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        assert x.grad == pytest.approx(1.0)

    def test_grad_stops_at_nongrad_branch(self):
        x = Tensor(2.0, requires_grad=True)
        c = Tensor(3.0)  # constant
        y = x * c
        y.backward()
        assert x.grad == pytest.approx(3.0)
        assert c.grad is None


class TestUnbroadcast:
    def test_no_op_when_same_shape(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_added_leading_axes(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 3)), np.full((2, 3), 4.0))

    def test_sums_stretched_axes(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 1)), np.full((2, 1), 3.0))

    def test_scalar_target(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, ()), 6.0)

    def test_combined(self):
        g = np.ones((5, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (1, 3)), np.full((1, 3), 10.0))


class TestCompositeGradients:
    """End-to-end finite-difference checks through composite expressions."""

    def test_polynomial(self):
        rng = np.random.default_rng(0)
        check_grads(
            lambda t: ((t["x"] * t["x"] + t["x"] * 3.0) * 0.5).sum(),
            {"x": rng.standard_normal((3, 4))},
        )

    def test_rational(self):
        rng = np.random.default_rng(1)
        check_grads(
            lambda t: (t["a"] / (t["b"] * t["b"] + 1.0)).sum(),
            {"a": rng.standard_normal((4,)), "b": rng.standard_normal((4,))},
        )

    def test_broadcast_expression(self):
        rng = np.random.default_rng(2)
        check_grads(
            lambda t: (t["m"] * t["v"]).sum(),
            {"m": rng.standard_normal((3, 4)), "v": rng.standard_normal((4,))},
        )

    def test_mean_and_power(self):
        rng = np.random.default_rng(3)
        check_grads(
            lambda t: (t["x"] ** 3).mean(),
            {"x": rng.standard_normal((5,)) + 2.0},
        )

    def test_exp_log_chain(self):
        rng = np.random.default_rng(4)
        check_grads(
            lambda t: ops.log(ops.exp(t["x"]) + 1.0).sum(),
            {"x": rng.standard_normal((6,))},
        )
