"""Tests for batch normalization (op and layer)."""

import numpy as np
import pytest

from repro.tensor.layers import BatchNorm
from repro.tensor.ops.batchnorm import batch_norm
from repro.tensor.tensor import Tensor
from tests.gradcheck import check_grads


def randn(rng, *shape):
    return rng.standard_normal(shape)


class TestBatchNormOp:
    def test_normalizes_batch(self):
        rng = np.random.default_rng(0)
        x = Tensor(randn(rng, 8, 3, 4))
        g = Tensor(np.ones(3))
        b = Tensor(np.zeros(3))
        out = batch_norm(x, g, b).data
        np.testing.assert_allclose(out.mean(axis=(0, 2)), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=(0, 2)), 1.0, atol=1e-3)

    def test_gamma_beta_applied(self):
        rng = np.random.default_rng(1)
        x = Tensor(randn(rng, 8, 2, 4))
        g = Tensor(np.array([2.0, 3.0]))
        b = Tensor(np.array([1.0, -1.0]))
        out = batch_norm(x, g, b).data
        np.testing.assert_allclose(out.mean(axis=(0, 2)), [1.0, -1.0], atol=1e-5)
        np.testing.assert_allclose(out.std(axis=(0, 2)), [2.0, 3.0], rtol=1e-3)

    def test_running_stats_updated(self):
        rng = np.random.default_rng(2)
        x = Tensor(randn(rng, 16, 2, 4) * 3.0 + 1.0)
        rm, rv = np.zeros(2), np.ones(2)
        batch_norm(x, Tensor(np.ones(2)), Tensor(np.zeros(2)), running_stats=(rm, rv))
        assert np.all(rm != 0.0)  # moved toward batch mean

    def test_inference_uses_running_stats(self):
        x = Tensor(np.full((4, 1, 2), 10.0))
        rm, rv = np.array([10.0]), np.array([4.0])
        out = batch_norm(
            x, Tensor(np.ones(1)), Tensor(np.zeros(1)),
            running_stats=(rm, rv), training=False,
        ).data
        np.testing.assert_allclose(out, 0.0, atol=1e-3)

    def test_inference_without_stats_raises(self):
        x = Tensor(np.zeros((2, 1, 2)))
        with pytest.raises(ValueError):
            batch_norm(x, Tensor(np.ones(1)), Tensor(np.zeros(1)), training=False)

    def test_gradients_match_numerical_training_mode(self):
        rng = np.random.default_rng(3)
        check_grads(
            lambda t: (batch_norm(t["x"], t["g"], t["b"]) ** 2).sum(),
            {"x": randn(rng, 4, 2, 3), "g": randn(rng, 2) + 2.0, "b": randn(rng, 2)},
            rtol=5e-4,
            atol=5e-5,
        )

    def test_gradients_inference_mode(self):
        rng = np.random.default_rng(4)
        rm, rv = np.zeros(2), np.ones(2)
        check_grads(
            lambda t: (
                batch_norm(
                    t["x"], t["g"], t["b"], running_stats=(rm, rv), training=False
                )
                ** 2
            ).sum(),
            {"x": randn(rng, 3, 2, 2), "g": randn(rng, 2) + 2.0, "b": randn(rng, 2)},
        )

    def test_batch_one_degeneracy(self):
        """The paper's removal rationale: at batch 1 the op normalizes
        the sample by its own statistics — the channel mean is erased
        regardless of input amplitude."""
        rng = np.random.default_rng(5)
        weak = Tensor(randn(rng, 1, 2, 64) * 0.1)
        strong = Tensor(randn(rng, 1, 2, 64) * 10.0)
        g, b = Tensor(np.ones(2)), Tensor(np.zeros(2))
        out_w = batch_norm(weak, g, b).data
        out_s = batch_norm(strong, g, b).data
        # amplitude information (the sigma_8 signal!) is gone
        assert out_w.std() == pytest.approx(out_s.std(), rel=1e-3)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            batch_norm(Tensor(np.zeros(3)), Tensor(np.ones(1)), Tensor(np.zeros(1)))
        with pytest.raises(ValueError):
            batch_norm(Tensor(np.zeros((2, 3, 2))), Tensor(np.ones(2)), Tensor(np.zeros(2)))


class TestBatchNormLayer:
    def test_forward_shape(self):
        layer = BatchNorm(4)
        out = layer(np.random.default_rng(0).standard_normal((2, 4, 3, 3, 3)).astype(np.float32))
        assert out.shape == (2, 4, 3, 3, 3)

    def test_parameters(self):
        layer = BatchNorm(8)
        assert layer.num_parameters() == 16
        assert layer.output_shape((8, 4, 4, 4)) == (8, 4, 4, 4)

    def test_train_eval_modes(self):
        layer = BatchNorm(1)
        rng = np.random.default_rng(1)
        x = (rng.standard_normal((8, 1, 4)) * 2.0 + 5.0).astype(np.float32)
        for _ in range(20):
            layer(x)  # accumulate running stats
        layer.eval()
        out = layer(x).data
        # running stats approximate batch stats -> output ~standardized
        assert abs(out.mean()) < 0.5
        layer.train()
        assert layer.training

    def test_gradients_flow(self):
        layer = BatchNorm(2)
        x = np.random.default_rng(2).standard_normal((4, 2, 3)).astype(np.float32)
        layer(x).sum().backward()
        assert layer.gamma.grad is not None
        assert layer.beta.grad is not None

    def test_output_shape_channel_check(self):
        with pytest.raises(ValueError):
            BatchNorm(4).output_shape((3, 2, 2, 2))

    def test_bad_channels(self):
        with pytest.raises(ValueError):
            BatchNorm(0)

    def test_sequential_propagates_mode(self):
        from repro.tensor.layers import Dense, Sequential

        bn = BatchNorm(4)
        net = Sequential([bn, Dense(4, 2, rng=np.random.default_rng(0))])
        net.eval()
        assert not bn.training
        net.train()
        assert bn.training
