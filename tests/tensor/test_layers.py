"""Tests for layers and initializers."""

import numpy as np
import pytest

from repro.tensor import initializers
from repro.tensor.layers import (
    AvgPool3D,
    Conv3D,
    Dense,
    Flatten,
    LeakyReLU,
    Sequential,
)
from repro.tensor.tensor import Tensor


class TestInitializers:
    def test_he_normal_std(self):
        w = initializers.he_normal((256, 1024), rng=np.random.default_rng(0))
        expect = np.sqrt(2.0 / 256)  # dense fan-in is the input dimension
        assert w.std() == pytest.approx(expect, rel=0.1)

    def test_he_normal_conv_fan_in(self):
        assert initializers.conv3d_fan_in((16, 8, 3, 3, 3)) == 8 * 27

    def test_he_leaky_alpha_reduces_std(self):
        rng = np.random.default_rng(1)
        a = initializers.he_normal((64, 512), rng=np.random.default_rng(1)).std()
        b = initializers.he_normal((64, 512), rng=rng, leaky_alpha=1.0).std()
        assert b < a

    def test_glorot_uniform_bounds(self):
        w = initializers.glorot_uniform((100, 100), rng=np.random.default_rng(2))
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(w) <= limit)

    def test_zeros(self):
        assert np.all(initializers.zeros((3, 3)) == 0.0)

    def test_dtype_float32(self):
        assert initializers.he_normal((4, 4), rng=np.random.default_rng(0)).dtype == np.float32

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            initializers.he_normal((3, 3, 3), rng=np.random.default_rng(0))


class TestConv3DLayer:
    def test_forward_shape(self):
        layer = Conv3D(2, 16, 3, rng=np.random.default_rng(0))
        out = layer(np.zeros((1, 2, 6, 6, 6), dtype=np.float32))
        assert out.shape == (1, 16, 4, 4, 4)

    def test_output_shape_helper(self):
        layer = Conv3D(1, 16, 3, rng=np.random.default_rng(0))
        assert layer.output_shape((1, 128, 128, 128)) == (16, 126, 126, 126)

    def test_output_shape_channel_check(self):
        layer = Conv3D(4, 8, 3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer.output_shape((3, 8, 8, 8))

    def test_parameters(self):
        layer = Conv3D(2, 4, 3, rng=np.random.default_rng(0))
        params = layer.parameters()
        assert len(params) == 2
        assert layer.num_parameters() == 4 * 2 * 27 + 4

    def test_no_bias(self):
        layer = Conv3D(2, 4, 3, bias=False, rng=np.random.default_rng(0))
        assert len(layer.parameters()) == 1

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            Conv3D(0, 4, 3)

    def test_grad_reaches_weights(self):
        layer = Conv3D(1, 2, 2, rng=np.random.default_rng(0))
        out = layer(np.ones((1, 1, 3, 3, 3), dtype=np.float32))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestOtherLayers:
    def test_avgpool_shape(self):
        layer = AvgPool3D(2)
        out = layer(np.zeros((1, 3, 6, 6, 6), dtype=np.float32))
        assert out.shape == (1, 3, 3, 3, 3)
        assert layer.output_shape((3, 27, 27, 27)) == (3, 13, 13, 13)

    def test_dense_shape_and_params(self):
        layer = Dense(8, 4, rng=np.random.default_rng(0))
        out = layer(np.zeros((2, 8), dtype=np.float32))
        assert out.shape == (2, 4)
        assert layer.num_parameters() == 8 * 4 + 4
        assert layer.output_shape((8,)) == (4,)

    def test_dense_input_check(self):
        layer = Dense(8, 4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer.output_shape((7,))

    def test_flatten(self):
        layer = Flatten()
        out = layer(np.zeros((2, 3, 4, 5), dtype=np.float32))
        assert out.shape == (2, 60)
        assert layer.output_shape((3, 4, 5)) == (60,)

    def test_leaky_relu_layer(self):
        layer = LeakyReLU(alpha=0.5)
        out = layer(np.array([[-2.0, 2.0]], dtype=np.float32))
        np.testing.assert_allclose(out.data, [[-1.0, 2.0]])
        assert layer.output_shape((4,)) == (4,)
        assert layer.num_parameters() == 0


class TestSequential:
    def build(self):
        rng = np.random.default_rng(0)
        return Sequential(
            [
                Conv3D(1, 16, 3, rng=rng, name="conv1"),
                LeakyReLU(),
                AvgPool3D(2),
                Flatten(),
                Dense(16 * 3 * 3 * 3, 4, rng=rng, name="fc1"),
            ]
        )

    def test_forward_shape(self):
        net = self.build()
        out = net(np.zeros((2, 1, 8, 8, 8), dtype=np.float32))
        assert out.shape == (2, 4)

    def test_output_shape_propagation(self):
        net = self.build()
        assert net.output_shape((1, 8, 8, 8)) == (4,)

    def test_parameters_collected(self):
        net = self.build()
        # conv w+b, dense w+b
        assert len(net.parameters()) == 4

    def test_summary_mentions_layers(self):
        net = self.build()
        s = net.summary((1, 8, 8, 8))
        assert "conv1" in s and "fc1" in s and "total" in s

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_iteration_and_len(self):
        net = self.build()
        assert len(net) == 5
        assert len(list(net)) == 5

    def test_end_to_end_gradients(self):
        net = self.build()
        x = np.random.default_rng(1).standard_normal((1, 1, 8, 8, 8)).astype(np.float32)
        out = net(x)
        out.sum().backward()
        for p in net.parameters():
            assert p.grad is not None
            assert p.grad.shape == p.shape

    def test_training_reduces_loss(self):
        """Three plain-SGD steps on a fixed batch reduce the loss."""
        from repro.tensor import ops

        net = self.build()
        rng = np.random.default_rng(2)
        x = rng.standard_normal((2, 1, 8, 8, 8)).astype(np.float32)
        y = rng.standard_normal((2, 4)).astype(np.float32)
        losses = []
        for _ in range(3):
            for p in net.parameters():
                p.zero_grad()
            loss = ops.mse_loss(net(Tensor(x)), Tensor(y))
            loss.backward()
            losses.append(loss.item())
            for p in net.parameters():
                p.data -= 0.01 * p.grad
        assert losses[-1] < losses[0]
