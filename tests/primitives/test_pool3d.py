"""Tests for 3D average pooling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives.conv3d import conv3d_forward
from repro.primitives.pool3d import (
    avg_pool3d_backward,
    avg_pool3d_forward,
    pool3d_output_shape,
)


class TestOutputShape:
    @pytest.mark.parametrize(
        "inp,k,s,expect",
        [
            ((126, 126, 126), 2, None, (63, 63, 63)),
            ((60, 60, 60), 2, None, (30, 30, 30)),
            ((27, 27, 27), 2, None, (13, 13, 13)),  # floor, as in the topology
            ((8, 8, 8), 3, 2, (3, 3, 3)),
        ],
    )
    def test_values(self, inp, k, s, expect):
        assert pool3d_output_shape(inp, k, s) == expect


class TestForward:
    def test_constant_input(self):
        x = np.full((1, 2, 4, 4, 4), 3.0, dtype=np.float32)
        out = avg_pool3d_forward(x, 2)
        np.testing.assert_allclose(out, 3.0)
        assert out.shape == (1, 2, 2, 2, 2)

    def test_manual_small_case(self):
        x = np.arange(8, dtype=np.float32).reshape(1, 1, 2, 2, 2)
        out = avg_pool3d_forward(x, 2)
        assert out.shape == (1, 1, 1, 1, 1)
        assert out[0, 0, 0, 0, 0] == pytest.approx(np.mean(np.arange(8)))

    def test_equals_constant_weight_conv(self):
        """The paper's definition: pooling == conv with weights 1/K^3 per channel."""
        rng = np.random.default_rng(0)
        c, k = 3, 2
        x = rng.standard_normal((2, c, 6, 6, 6)).astype(np.float32)
        w = np.zeros((c, c, k, k, k), dtype=np.float32)
        for i in range(c):
            w[i, i] = 1.0 / k**3
        np.testing.assert_allclose(
            avg_pool3d_forward(x, k),
            conv3d_forward(x, w, stride=k),
            rtol=1e-5,
            atol=1e-6,
        )

    def test_odd_extent_drops_tail(self):
        x = np.zeros((1, 1, 5, 5, 5), dtype=np.float32)
        x[0, 0, 4, 4, 4] = 100.0  # in the dropped tail
        out = avg_pool3d_forward(x, 2)
        assert out.shape == (1, 1, 2, 2, 2)
        np.testing.assert_allclose(out, 0.0)

    def test_channels_independent(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 4, 4, 4, 4)).astype(np.float32)
        out = avg_pool3d_forward(x, 2)
        for c in range(4):
            np.testing.assert_allclose(
                out[:, c : c + 1], avg_pool3d_forward(x[:, c : c + 1], 2)
            )

    def test_mean_preserved_when_divisible(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 1, 8, 8, 8)).astype(np.float64)
        out = avg_pool3d_forward(x, 2)
        assert out.mean() == pytest.approx(x.mean(), rel=1e-10)

    def test_bad_rank(self):
        with pytest.raises(ValueError):
            avg_pool3d_forward(np.zeros((2, 4, 4, 4)), 2)


class TestBackward:
    def test_distributes_uniformly(self):
        g = np.ones((1, 1, 2, 2, 2), dtype=np.float32)
        gi = avg_pool3d_backward(g, (4, 4, 4), 2)
        np.testing.assert_allclose(gi, 1.0 / 8.0)

    def test_grad_sum_conserved(self):
        """sum(grad_in) == sum(grad_out): pooling is an average, its
        adjoint conserves total gradient mass."""
        rng = np.random.default_rng(3)
        g = rng.standard_normal((2, 3, 3, 3, 3)).astype(np.float64)
        gi = avg_pool3d_backward(g, (6, 6, 6), 2)
        assert gi.sum() == pytest.approx(g.sum(), rel=1e-10)

    def test_dropped_tail_gets_zero(self):
        g = np.ones((1, 1, 2, 2, 2), dtype=np.float32)
        gi = avg_pool3d_backward(g, (5, 5, 5), 2)
        assert gi.shape == (1, 1, 5, 5, 5)
        np.testing.assert_allclose(gi[0, 0, 4], 0.0)
        np.testing.assert_allclose(gi[0, 0, :4, :4, :4], 1.0 / 8.0)

    def test_matches_numerical_gradient(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((1, 2, 5, 5, 5)).astype(np.float64)
        g = rng.standard_normal((1, 2, 2, 2, 2)).astype(np.float64)
        eps = 1e-5
        got = avg_pool3d_backward(g, (5, 5, 5), 2)
        # spot-check a few positions with central differences
        for idx in [(0, 0, 0, 0, 0), (0, 1, 2, 3, 1), (0, 0, 4, 4, 4), (0, 1, 3, 3, 3)]:
            orig = x[idx]
            x[idx] = orig + eps
            fp = float(np.sum(avg_pool3d_forward(x, 2) * g))
            x[idx] = orig - eps
            fm = float(np.sum(avg_pool3d_forward(x, 2) * g))
            x[idx] = orig
            assert got[idx] == pytest.approx((fp - fm) / (2 * eps), abs=1e-6)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            avg_pool3d_backward(np.zeros((1, 1, 3, 3, 3)), (4, 4, 4), 2)

    @given(
        size=st.integers(min_value=2, max_value=9),
        k=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_grad_mass(self, size, k, seed):
        if k > size:
            return
        rng = np.random.default_rng(seed)
        out_shape = pool3d_output_shape((size,) * 3, k)
        g = rng.standard_normal((1, 1) + out_shape)
        gi = avg_pool3d_backward(g, (size,) * 3, k)
        assert gi.sum() == pytest.approx(g.sum(), rel=1e-9, abs=1e-9)
