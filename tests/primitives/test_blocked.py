"""Bitwise-parity tests for the blocked-native kernels.

The contract under test (see :mod:`repro.primitives.blocked`): layout
conversion is pure data movement, and the native kernels replicate the
direct kernels' exact loop nests — so running blocked-in/blocked-out
must produce **bitwise** the same numbers as the per-call-repack direct
path, at block-multiple and ragged channel counts alike.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import blocked as bk
from repro.primitives import direct as dk
from repro.primitives.conv3d import (
    conv3d_backward_data,
    conv3d_backward_weights,
    conv3d_forward,
)
from repro.primitives.layout import (
    clear_reorder_cache,
    from_blocked_batch,
    to_blocked_batch,
    to_blocked_bias,
    to_blocked_weights,
)
from repro.primitives.pool3d import avg_pool3d_backward, avg_pool3d_forward


@pytest.fixture(autouse=True)
def _clean_cache():
    clear_reorder_cache()
    yield
    clear_reorder_cache()


def _case(ic, oc, size, k, seed=0, batch=2):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((batch, ic, size, size, size)).astype(np.float32)
    w = (rng.standard_normal((oc, ic, k, k, k)) * 0.1).astype(np.float32)
    b = rng.standard_normal(oc).astype(np.float32)
    return x, w, b


CHANNELS = [(16, 32), (5, 7), (16, 20), (3, 16)]


class TestForward:
    @pytest.mark.parametrize("ic,oc", CHANNELS)
    def test_bitwise_vs_direct(self, ic, oc):
        x, w, b = _case(ic, oc, 6, 3)
        ref = dk.conv3d_forward_direct(x, w, b)
        out_b = bk.conv3d_forward_blocked(
            to_blocked_batch(x), to_blocked_weights(w), to_blocked_bias(b)
        )
        assert np.array_equal(from_blocked_batch(out_b, oc), ref)

    def test_padded_bitwise_vs_direct(self):
        # Spatial padding commutes with channel blocking, so the padded
        # blocked forward must equal direct on the pre-padded input.
        x, w, b = _case(5, 7, 5, 3)
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1), (1, 1)))
        ref = dk.conv3d_forward_direct(xp, w, b)
        out_b = bk.conv3d_forward_blocked(
            to_blocked_batch(x), to_blocked_weights(w), to_blocked_bias(b), padding=1
        )
        assert np.array_equal(from_blocked_batch(out_b, 7), ref)

    def test_strided_bitwise_vs_direct(self):
        x, w, _ = _case(4, 6, 7, 3)
        ref = dk.conv3d_forward_direct(x, w, None, stride=2)
        out_b = bk.conv3d_forward_blocked(
            to_blocked_batch(x), to_blocked_weights(w), stride=2
        )
        assert np.array_equal(from_blocked_batch(out_b, 6), ref)

    def test_padded_output_lanes_zero(self):
        x, w, b = _case(5, 7, 5, 2)
        out_b = bk.conv3d_forward_blocked(
            to_blocked_batch(x), to_blocked_weights(w), to_blocked_bias(b)
        )
        assert np.all(out_b[..., 7:] == 0.0)

    def test_close_to_gemm(self):
        x, w, b = _case(8, 12, 6, 3)
        out_b = bk.conv3d_forward_blocked(
            to_blocked_batch(x), to_blocked_weights(w), to_blocked_bias(b)
        )
        np.testing.assert_allclose(
            from_blocked_batch(out_b, 12), conv3d_forward(x, w, b),
            rtol=2e-4, atol=2e-4,
        )


class TestBackward:
    @pytest.mark.parametrize("ic,oc", CHANNELS)
    def test_backward_data_bitwise(self, ic, oc):
        x, w, _ = _case(ic, oc, 6, 3)
        g = np.random.default_rng(9).standard_normal(
            (x.shape[0], oc, 4, 4, 4)
        ).astype(np.float32)
        ref = dk.conv3d_backward_data_direct(g, w, (6, 6, 6))
        gx_b = bk.conv3d_backward_data_blocked(
            to_blocked_batch(g), to_blocked_weights(w), (6, 6, 6)
        )
        assert np.array_equal(from_blocked_batch(gx_b, ic), ref)

    @pytest.mark.parametrize("ic,oc", CHANNELS)
    def test_backward_weights_bitwise(self, ic, oc):
        x, w, _ = _case(ic, oc, 6, 3)
        g = np.random.default_rng(9).standard_normal(
            (x.shape[0], oc, 4, 4, 4)
        ).astype(np.float32)
        ref_w, ref_b = dk.conv3d_backward_weights_direct(x, g, (3, 3, 3), with_bias=True)
        gw, gb = bk.conv3d_backward_weights_blocked(
            to_blocked_batch(x),
            to_blocked_batch(g),
            (3, 3, 3),
            with_bias=True,
            out_channels=oc,
            in_channels=ic,
        )
        assert np.array_equal(gw, ref_w)
        assert np.array_equal(gb, ref_b)


class TestPool:
    @pytest.mark.parametrize("c", [16, 5])
    def test_forward_bitwise(self, c):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, c, 6, 6, 6)).astype(np.float32)
        out_b = bk.avg_pool3d_forward_blocked(to_blocked_batch(x), 2)
        assert np.array_equal(from_blocked_batch(out_b, c), avg_pool3d_forward(x, 2))

    @pytest.mark.parametrize("c", [16, 5])
    def test_backward_bitwise(self, c):
        rng = np.random.default_rng(4)
        g = rng.standard_normal((2, c, 3, 3, 3)).astype(np.float32)
        ref = avg_pool3d_backward(g, (6, 6, 6), 2)
        gx_b = bk.avg_pool3d_backward_blocked(to_blocked_batch(g), (6, 6, 6), 2)
        assert np.array_equal(from_blocked_batch(gx_b, c), ref)

    def test_bad_rank_raises(self):
        with pytest.raises(ValueError):
            bk.avg_pool3d_forward_blocked(np.zeros((2, 4, 4, 4, 4)), 2)


class TestViaBlockedWrappers:
    """The plain-convention wrappers the registry's "blocked" impl uses."""

    @pytest.mark.parametrize("ic,oc", [(16, 32), (5, 7)])
    def test_forward_bitwise_vs_direct(self, ic, oc):
        x, w, b = _case(ic, oc, 6, 3)
        assert np.array_equal(
            bk.conv3d_forward_via_blocked(x, w, b), dk.conv3d_forward_direct(x, w, b)
        )

    def test_backward_data_bitwise_vs_direct(self):
        x, w, _ = _case(5, 7, 6, 3)
        g = np.random.default_rng(9).standard_normal((2, 7, 4, 4, 4)).astype(np.float32)
        assert np.array_equal(
            bk.conv3d_backward_data_via_blocked(g, w, (6, 6, 6)),
            dk.conv3d_backward_data_direct(g, w, (6, 6, 6)),
        )

    def test_backward_weights_bitwise_vs_direct(self):
        x, w, _ = _case(5, 7, 6, 3)
        g = np.random.default_rng(9).standard_normal((2, 7, 4, 4, 4)).astype(np.float32)
        ref_w, ref_b = dk.conv3d_backward_weights_direct(x, g, (3, 3, 3), with_bias=True)
        gw, gb = bk.conv3d_backward_weights_via_blocked(x, g, (3, 3, 3), with_bias=True)
        assert np.array_equal(gw, ref_w)
        assert np.array_equal(gb, ref_b)

    def test_close_to_gemm_backwards(self):
        x, w, _ = _case(8, 12, 6, 3)
        g = np.random.default_rng(9).standard_normal((2, 12, 4, 4, 4)).astype(np.float32)
        np.testing.assert_allclose(
            bk.conv3d_backward_data_via_blocked(g, w, (6, 6, 6)),
            conv3d_backward_data(g, w, (6, 6, 6)),
            rtol=2e-4, atol=2e-4,
        )
        np.testing.assert_allclose(
            bk.conv3d_backward_weights_via_blocked(x, g, (3, 3, 3)),
            conv3d_backward_weights(x, g, (3, 3, 3)),
            rtol=2e-3, atol=2e-3,
        )


@given(
    ic=st.integers(min_value=1, max_value=20),
    oc=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=15, deadline=None)
def test_forward_parity_property(ic, oc, seed):
    """Blocked-native forward is bitwise-equal to direct at arbitrary
    (mostly ragged) channel counts."""
    x, w, b = _case(ic, oc, 4, 2, seed=seed, batch=1)
    out_b = bk.conv3d_forward_blocked(
        to_blocked_batch(x), to_blocked_weights(w), to_blocked_bias(b)
    )
    assert np.array_equal(
        from_blocked_batch(out_b, oc), dk.conv3d_forward_direct(x, w, b)
    )
