"""Tests for the Algorithm-1 direct blocked convolution kernels.

The direct kernels must agree with the GEMM-path kernels on every
shape, including ragged channel counts (which the blocked layout
zero-pads) and the paper's 28-voxel output-width blocking.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives.conv3d import (
    conv3d_backward_data,
    conv3d_backward_weights,
    conv3d_forward,
)
from repro.primitives.direct import (
    WIDTH_BLOCK,
    conv3d_backward_data_direct,
    conv3d_backward_weights_direct,
    conv3d_forward_direct,
)


def rand_case(rng, n, ic, oc, size, k):
    x = rng.standard_normal((n, ic, size, size, size)).astype(np.float32)
    w = rng.standard_normal((oc, ic, k, k, k)).astype(np.float32)
    return x, w


class TestForwardDirect:
    @pytest.mark.parametrize(
        "n,ic,oc,size,k,stride",
        [
            (1, 16, 16, 6, 3, 1),
            (1, 16, 32, 7, 4, 1),
            (2, 32, 16, 6, 3, 1),
            (1, 1, 16, 6, 3, 1),  # ragged input channels
            (1, 16, 5, 6, 3, 1),  # ragged output channels
            (1, 3, 5, 6, 3, 1),  # both ragged
            (1, 16, 16, 8, 2, 2),  # strided
        ],
    )
    def test_matches_gemm(self, n, ic, oc, size, k, stride):
        rng = np.random.default_rng(0)
        x, w = rand_case(rng, n, ic, oc, size, k)
        b = rng.standard_normal(oc).astype(np.float32)
        got = conv3d_forward_direct(x, w, b, stride)
        want = conv3d_forward(x, w, b, stride)
        np.testing.assert_allclose(got, want, rtol=2e-4, atol=2e-4)

    def test_width_blocking_is_equivalent(self):
        """The 28-voxel output-width blocking changes nothing numerically."""
        rng = np.random.default_rng(1)
        # width 30 > WIDTH_BLOCK=28 so blocking actually splits the row
        x = rng.standard_normal((1, 16, 3, 3, 32)).astype(np.float32)
        w = rng.standard_normal((16, 16, 3, 3, 3)).astype(np.float32)
        full = conv3d_forward_direct(x, w, width_block=None)
        blocked = conv3d_forward_direct(x, w, width_block=WIDTH_BLOCK)
        assert full.shape[-1] == 30
        np.testing.assert_allclose(full, blocked, rtol=1e-5, atol=1e-6)

    def test_small_width_block(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 16, 4, 4, 9)).astype(np.float32)
        w = rng.standard_normal((16, 16, 2, 2, 2)).astype(np.float32)
        np.testing.assert_allclose(
            conv3d_forward_direct(x, w, width_block=3),
            conv3d_forward(x, w),
            rtol=2e-4,
            atol=2e-4,
        )

    def test_padding_via_prepad(self):
        rng = np.random.default_rng(3)
        x, w = rand_case(rng, 1, 16, 16, 5, 3)
        np.testing.assert_allclose(
            conv3d_forward_direct(x, w, padding=1),
            conv3d_forward(x, w, padding=1),
            rtol=2e-4,
            atol=2e-4,
        )

    @given(
        ic=st.integers(min_value=1, max_value=20),
        oc=st.integers(min_value=1, max_value=20),
        k=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_matches_gemm(self, ic, oc, k, seed):
        rng = np.random.default_rng(seed)
        x, w = rand_case(rng, 1, ic, oc, 5, k)
        np.testing.assert_allclose(
            conv3d_forward_direct(x, w),
            conv3d_forward(x, w),
            rtol=3e-4,
            atol=3e-4,
        )


class TestBackwardDirect:
    def test_backward_data_matches_gemm(self):
        rng = np.random.default_rng(4)
        w = rng.standard_normal((16, 16, 3, 3, 3)).astype(np.float32)
        g = rng.standard_normal((2, 16, 4, 4, 4)).astype(np.float32)
        got = conv3d_backward_data_direct(g, w, (6, 6, 6))
        want = conv3d_backward_data(g, w, (6, 6, 6))
        np.testing.assert_allclose(got, want, rtol=2e-4, atol=2e-4)

    def test_backward_data_ragged_channels(self):
        rng = np.random.default_rng(5)
        w = rng.standard_normal((5, 3, 2, 2, 2)).astype(np.float32)
        g = rng.standard_normal((1, 5, 3, 3, 3)).astype(np.float32)
        got = conv3d_backward_data_direct(g, w, (4, 4, 4))
        want = conv3d_backward_data(g, w, (4, 4, 4))
        np.testing.assert_allclose(got, want, rtol=2e-4, atol=2e-4)

    def test_backward_data_strided(self):
        rng = np.random.default_rng(6)
        w = rng.standard_normal((16, 16, 2, 2, 2)).astype(np.float32)
        g = rng.standard_normal((1, 16, 3, 3, 3)).astype(np.float32)
        got = conv3d_backward_data_direct(g, w, (6, 6, 6), stride=2)
        want = conv3d_backward_data(g, w, (6, 6, 6), stride=2)
        np.testing.assert_allclose(got, want, rtol=2e-4, atol=2e-4)

    def test_backward_weights_matches_gemm(self):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((2, 16, 6, 6, 6)).astype(np.float32)
        g = rng.standard_normal((2, 16, 4, 4, 4)).astype(np.float32)
        got = conv3d_backward_weights_direct(x, g, (3, 3, 3))
        want = conv3d_backward_weights(x, g, (3, 3, 3))
        np.testing.assert_allclose(got, want, rtol=2e-4, atol=2e-4)

    def test_backward_weights_with_bias(self):
        rng = np.random.default_rng(8)
        x = rng.standard_normal((1, 16, 5, 5, 5)).astype(np.float32)
        g = rng.standard_normal((1, 16, 3, 3, 3)).astype(np.float32)
        gw, gb = conv3d_backward_weights_direct(x, g, (3, 3, 3), with_bias=True)
        gw2, gb2 = conv3d_backward_weights(x, g, (3, 3, 3), with_bias=True)
        np.testing.assert_allclose(gw, gw2, rtol=2e-4, atol=2e-4)
        np.testing.assert_allclose(gb, gb2, rtol=1e-5)

    def test_backward_weights_ragged(self):
        rng = np.random.default_rng(9)
        x = rng.standard_normal((1, 3, 5, 5, 5)).astype(np.float32)
        g = rng.standard_normal((1, 5, 3, 3, 3)).astype(np.float32)
        got = conv3d_backward_weights_direct(x, g, (3, 3, 3))
        want = conv3d_backward_weights(x, g, (3, 3, 3))
        assert got.shape == (5, 3, 3, 3, 3)
        np.testing.assert_allclose(got, want, rtol=2e-4, atol=2e-4)
