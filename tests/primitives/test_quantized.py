"""Seeded property tests for the int8/int4 quantized kernels.

Satellite coverage for the low-precision path: pack→unpack round trips
over ragged group sizes and non-multiple-of-16 channel counts, and
quantized-conv error bounds against the exact fp32 kernels across
random shapes, strides, and padding.
"""

import numpy as np
import pytest

from repro.primitives import registry
from repro.primitives.quantized import (
    DEFAULT_GROUP_SIZE,
    QuantCache,
    QuantizedWeights,
    default_quant_cache,
    dequantize_groupwise,
    pack_int4,
    quantize_groupwise,
    quantized_matmul,
    unpack_int4,
)
from repro.primitives.registry import auto_candidates, get_impl
from repro.tensor import ops
from repro.tensor.tensor import Tensor


def _rng(seed):
    return np.random.default_rng(seed)


class TestGroupwiseRoundTrip:
    """Dequantize(quantize(x)) is within half a quantization step."""

    # Ragged group sizes, ragged reduction lengths, C % 16 != 0 rows.
    CASES = [
        (5, 37, 32),  # ragged tail group
        (17, 16, 16),  # one exact group, odd rows
        (3, 100, 48),  # group size not dividing cols
        (16, 96, 32),  # exact multiple (block-aligned)
        (1, 1, 32),  # single element
        (7, 5, 64),  # group larger than the whole reduction
    ]

    @pytest.mark.parametrize("bits", [8, 4])
    @pytest.mark.parametrize("rows,cols,group_size", CASES)
    def test_round_trip_error_bound(self, bits, rows, cols, group_size):
        for seed in range(3):
            mat = _rng([seed, rows, cols]).standard_normal((rows, cols))
            mat = mat.astype(np.float32)
            q, scales = quantize_groupwise(mat, bits=bits, group_size=group_size)
            dq = dequantize_groupwise(q, scales, group_size, cols)
            assert dq.shape == mat.shape
            # Symmetric rounding: error is at most half a step per group.
            n_groups = q.shape[1] // group_size
            grouped_err = np.abs(dq - mat)
            pad = (-cols) % group_size
            padded_err = np.zeros((rows, cols + pad), dtype=np.float32)
            padded_err[:, :cols] = grouped_err
            per_group_max = padded_err.reshape(rows, n_groups, group_size).max(axis=2)
            assert np.all(per_group_max <= scales * 0.5 + 1e-7)

    def test_padded_tail_is_zero(self):
        mat = _rng(0).standard_normal((4, 33)).astype(np.float32)
        q, _ = quantize_groupwise(mat, bits=8, group_size=32)
        assert q.shape[1] == 64
        assert np.all(q[:, 33:] == 0)

    def test_zero_group_scale_is_one_and_exact(self):
        mat = np.zeros((2, 64), dtype=np.float32)
        q, scales = quantize_groupwise(mat, bits=8, group_size=32)
        assert np.all(scales == 1.0)
        assert np.all(dequantize_groupwise(q, scales, 32, 64) == 0.0)

    def test_int8_tighter_than_int4(self):
        mat = _rng(7).standard_normal((8, 128)).astype(np.float32)
        errs = {}
        for bits in (8, 4):
            q, s = quantize_groupwise(mat, bits=bits, group_size=32)
            errs[bits] = np.abs(dequantize_groupwise(q, s, 32, 128) - mat).max()
        assert errs[8] < errs[4]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            quantize_groupwise(np.zeros((2, 8), np.float32), bits=16)
        with pytest.raises(ValueError):
            quantize_groupwise(np.zeros((2, 8), np.float32), group_size=0)
        with pytest.raises(ValueError):
            quantize_groupwise(np.zeros(8, np.float32))


class TestInt4Packing:
    @pytest.mark.parametrize("cols", [1, 2, 15, 16, 33, 64])
    def test_pack_unpack_exact(self, cols):
        for seed in range(5):
            v = _rng([seed, cols]).integers(-8, 8, size=(6, cols)).astype(np.int8)
            assert np.array_equal(unpack_int4(pack_int4(v), cols), v)

    def test_two_values_per_byte(self):
        v = np.zeros((3, 40), dtype=np.int8)
        assert pack_int4(v).shape == (3, 20)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_int4(np.full((1, 4), 8, dtype=np.int8))


class TestQuantizedWeights:
    @pytest.mark.parametrize("bits", [8, 4])
    @pytest.mark.parametrize("oc,ic", [(5, 3), (16, 16), (17, 33)])
    def test_dense_round_trip_shape_and_bound(self, bits, oc, ic):
        w = _rng([bits, oc, ic]).standard_normal((oc, ic, 3, 3, 3))
        w = w.astype(np.float32)
        qw = QuantizedWeights.from_dense(w, bits=bits)
        dq = qw.dequantize()
        assert dq.shape == w.shape
        assert np.abs(dq - w).max() <= qw.scales.max() * 0.5 + 1e-7

    def test_int4_storage_is_half_of_int8(self):
        w = _rng(1).standard_normal((16, 16, 3, 3, 3)).astype(np.float32)
        q8 = QuantizedWeights.from_dense(w, bits=8)
        q4 = QuantizedWeights.from_dense(w, bits=4)
        assert q4.data.nbytes * 2 == q8.data.nbytes
        assert q8.nbytes < w.nbytes  # packed + scales beat dense fp32

    def test_layout_descriptors_registered(self):
        from repro.primitives.layout import available_layouts

        names = available_layouts()
        assert "OIdhw16i16o_q8" in names
        assert "OIdhw16i16o_q4" in names


class TestQuantizedMatmul:
    @pytest.mark.parametrize("bits", [8, 4])
    def test_error_bound_vs_fp32(self, bits):
        for seed in range(3):
            rng = _rng([seed, bits])
            m, k, oc = 9, 70, 11
            x = rng.standard_normal((m, k)).astype(np.float32)
            w = rng.standard_normal((oc, k)).astype(np.float32)
            qw = QuantizedWeights.from_dense(w, bits=bits)
            ref = x @ w.T
            out = quantized_matmul(x, qw)
            # Worst-case per-output error: each reduction element is off
            # by at most half a weight step and half an activation step.
            sw = qw.scales.max()
            sx = np.abs(x).max(axis=1, keepdims=True) / 127.0
            bound = k * (
                sx * np.abs(w).max() + sw / 2 * np.abs(x).max() + sw * sx
            )
            assert np.all(np.abs(out - ref) <= bound + 1e-5)

    def test_shape_mismatch_rejected(self):
        qw = QuantizedWeights.from_dense(np.zeros((4, 8), np.float32))
        with pytest.raises(ValueError):
            quantized_matmul(np.zeros((3, 9), np.float32), qw)


class TestQuantizedConvParity:
    """Quantized conv forward vs the exact fp32 kernels, seeded sweep."""

    # (N, C, size, OC, kernel, stride, padding)
    CASES = [
        (1, 3, 8, 5, 3, 1, 0),
        (2, 16, 9, 16, 3, 2, 1),  # block-aligned channels
        (1, 5, 10, 7, 3, 2, 0),  # C % 16 != 0
        (2, 4, 7, 6, 2, 1, 1),
        (1, 17, 6, 9, 3, 1, 0),  # ragged channels > one block
    ]

    @staticmethod
    def _reference(x, w, b, stride, padding):
        # The fp32 direct kernel is the faithful Algorithm-1 reference;
        # it is valid-convolution only, so padded cases pre-pad (the
        # direct kernel's own documented convention).
        from repro.primitives.conv3d import _pad_input, _triple

        pad = _triple(padding)
        if any(p != 0 for p in pad):
            x = _pad_input(x, pad)
        return get_impl("direct").forward(x, w, b, stride=stride, padding=0)

    @pytest.mark.parametrize("bits,impl", [(8, "int8"), (4, "int4")])
    @pytest.mark.parametrize("case", CASES)
    def test_error_bound_vs_direct(self, bits, impl, case):
        n, c, size, oc, kk, stride, padding = case
        rng = _rng([bits, *case])
        x = rng.standard_normal((n, c, size, size, size)).astype(np.float32)
        w = (rng.standard_normal((oc, c, kk, kk, kk)) * 0.2).astype(np.float32)
        b = rng.standard_normal(oc).astype(np.float32)
        ref = self._reference(x, w, b, stride, padding)
        out = get_impl(impl).forward(x, w, b, stride=stride, padding=padding)
        assert out.shape == ref.shape
        qw = QuantizedWeights.from_dense(w, bits=bits)
        k = c * kk**3
        sw = float(qw.scales.max())
        sx = float(np.abs(x).max()) / 127.0
        bound = k * (
            sx * float(np.abs(w).max()) + sw / 2 * float(np.abs(x).max()) + sw * sx
        )
        assert np.abs(out - ref).max() <= bound + 1e-5

    def test_int8_closer_than_int4(self):
        rng = _rng(42)
        x = rng.standard_normal((1, 8, 8, 8, 8)).astype(np.float32)
        w = (rng.standard_normal((8, 8, 3, 3, 3)) * 0.2).astype(np.float32)
        ref = get_impl("gemm").forward(x, w, None)
        e8 = np.abs(get_impl("int8").forward(x, w, None) - ref).max()
        e4 = np.abs(get_impl("int4").forward(x, w, None) - ref).max()
        assert e8 < e4

    def test_backward_delegates_to_gemm_bitwise(self):
        rng = _rng(3)
        x = rng.standard_normal((2, 4, 6, 6, 6)).astype(np.float32)
        w = rng.standard_normal((5, 4, 3, 3, 3)).astype(np.float32)
        go = rng.standard_normal((2, 5, 4, 4, 4)).astype(np.float32)
        ref_dx = get_impl("gemm").backward_data(go, w, x.shape[2:])
        ref_dw = get_impl("gemm").backward_weights(x, go, (3, 3, 3))
        dx = get_impl("int8").backward_data(go, w, x.shape[2:])
        dw = get_impl("int8").backward_weights(x, go, (3, 3, 3))
        assert np.array_equal(dx, ref_dx)
        assert np.array_equal(dw, ref_dw)

    def test_tensor_ops_dispatch_by_name(self):
        rng = _rng(11)
        x = Tensor(rng.standard_normal((1, 3, 6, 6, 6)).astype(np.float32))
        w = Tensor((rng.standard_normal((4, 3, 3, 3, 3)) * 0.2).astype(np.float32))
        out_q = ops.conv3d(x, w, impl="int8")
        out_f = ops.conv3d(x, w, impl="gemm")
        assert out_q.data.shape == out_f.data.shape
        rel = np.abs(out_q.data - out_f.data).max() / (np.abs(out_f.data).max() + 1e-12)
        assert rel < 0.05


class TestRegistryIntegration:
    def test_impls_registered(self):
        from repro.primitives.registry import available_impls

        names = available_impls()
        assert "int8" in names and "int4" in names

    def test_quantized_not_in_default_auto_race(self):
        assert "int8" not in auto_candidates("forward")
        assert "int4" not in auto_candidates("forward")

    def test_auto_race_opt_in_forward_only(self):
        registry.set_auto_quantized(True)
        try:
            fwd = auto_candidates("forward")
            assert "int8" in fwd and "int4" in fwd
            assert "int8" not in auto_candidates("backward_data")
            assert "int8" not in auto_candidates("backward_weights")
        finally:
            registry.set_auto_quantized(False)
        assert "int8" not in auto_candidates("forward")


class TestQuantCache:
    def test_content_addressed_reuse(self):
        cache = QuantCache(capacity=4)
        w = _rng(0).standard_normal((4, 4, 3, 3, 3)).astype(np.float32)
        a = cache.get_or_quantize(w, 8, DEFAULT_GROUP_SIZE)
        b = cache.get_or_quantize(w.copy(), 8, DEFAULT_GROUP_SIZE)
        assert a is b  # same content digest -> same packed buffer
        assert cache.hits == 1 and cache.misses == 1
        c = cache.get_or_quantize(w, 4, DEFAULT_GROUP_SIZE)
        assert c is not a  # bits are part of the key
        assert cache.misses == 2

    def test_capacity_eviction(self):
        cache = QuantCache(capacity=2)
        rng = _rng(5)
        for _ in range(4):
            cache.get_or_quantize(
                rng.standard_normal((2, 2, 2, 2, 2)).astype(np.float32), 8, 32
            )
        assert len(cache) == 2

    def test_default_cache_hit_counter(self):
        cache = default_quant_cache()
        before_hits = cache.hits
        w = _rng(9).standard_normal((3, 3, 2, 2, 2)).astype(np.float32)
        x = _rng(10).standard_normal((1, 3, 4, 4, 4)).astype(np.float32)
        get_impl("int8").forward(x, w, None)
        get_impl("int8").forward(x, w, None)
        assert cache.hits > before_hits
