"""Tests for the shape-keyed kernel autotuner (repro.primitives.autotune)."""

import json

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.primitives import autotune, registry
from repro.primitives.autotune import (
    CACHE_VERSION,
    Autotuner,
    TuningCache,
    conv_shape_key,
    default_cache_path,
    warm_conv_shapes,
)


@pytest.fixture(autouse=True)
def _isolate_tuner():
    """Never let tests touch the user's real ~/.cache tuning file."""
    yield
    autotune.set_tuner(None)
    registry.set_metrics(None)


def _tuner(tmp_path, repeats=1):
    return Autotuner(TuningCache(tmp_path / "autotune.json"), repeats=repeats)


class TestShapeKey:
    def test_fields(self):
        key = conv_shape_key("forward", (1, 4, 8, 8, 8), (16, 4, 3, 3, 3))
        assert key == "forward|a=1x4x8x8x8|b=16x4x3x3x3|s=1x1x1|p=0x0x0|l=ncdhw"

    def test_stride_normalization(self):
        a = conv_shape_key("forward", (1, 4, 8, 8, 8), (16, 4, 3, 3, 3), stride=2)
        b = conv_shape_key("forward", (1, 4, 8, 8, 8), (16, 4, 3, 3, 3), stride=(2, 2, 2))
        assert a == b

    def test_distinct_ops_distinct_keys(self):
        args = ((1, 4, 8, 8, 8), (16, 4, 3, 3, 3))
        assert conv_shape_key("forward", *args) != conv_shape_key("backward_data", *args)


class TestTuningCache:
    def test_persist_and_reload(self, tmp_path):
        path = tmp_path / "c.json"
        cache = TuningCache(path)
        cache.put("k", {"impl": "gemm", "times_ms": {}, "repeats": 1})
        fresh = TuningCache(path)
        assert fresh.get("k")["impl"] == "gemm"
        assert len(fresh) == 1

    def test_version_mismatch_discards(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({
            "version": CACHE_VERSION + 1,
            "entries": {"k": {"impl": "gemm"}},
        }))
        assert TuningCache(path).get("k") is None

    def test_corrupt_file_ignored(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("not json{")
        cache = TuningCache(path)
        assert len(cache) == 0
        cache.put("k", {"impl": "direct"})  # still writable
        assert TuningCache(path).get("k")["impl"] == "direct"

    def test_clear_deletes_file(self, tmp_path):
        path = tmp_path / "c.json"
        cache = TuningCache(path)
        cache.put("k", {"impl": "gemm"})
        assert path.exists()
        cache.clear()
        assert not path.exists()
        assert len(cache) == 0

    def test_env_override(self, tmp_path, monkeypatch):
        target = tmp_path / "env" / "autotune.json"
        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(target))
        assert default_cache_path() == target
        cache = TuningCache()  # no explicit path -> env
        cache.put("k", {"impl": "gemm"})
        assert target.exists()

    def test_saved_file_is_versioned(self, tmp_path):
        path = tmp_path / "c.json"
        TuningCache(path).put("k", {"impl": "gemm"})
        assert json.loads(path.read_text())["version"] == CACHE_VERSION


class TestAutotuner:
    def test_tune_returns_winner_output(self, tmp_path):
        tuner = _tuner(tmp_path)
        name, out = tuner.tune("k", ["a", "b"], lambda n: f"out-{n}")
        assert name in ("a", "b")
        assert out == f"out-{name}"
        assert tuner.misses == 1 and tuner.hits == 0

    def test_cached_choice_after_tune(self, tmp_path):
        tuner = _tuner(tmp_path)
        name, _ = tuner.tune("k", ["a"], lambda n: 0)
        assert tuner.cached_choice("k") == name == "a"
        assert tuner.hits == 1

    def test_no_candidates_raises(self, tmp_path):
        with pytest.raises(ValueError):
            _tuner(tmp_path).tune("k", [], lambda n: 0)

    def test_record_shape(self, tmp_path):
        tuner = _tuner(tmp_path, repeats=3)
        tuner.tune("k", ["a", "b"], lambda n: 0)
        rec = tuner.cache.get("k")
        assert rec["repeats"] == 3
        assert set(rec["times_ms"]) == {"a", "b"}


class TestAutoDispatch:
    """The registry's "auto" policy driven end to end."""

    def _io(self, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, 4, 6, 6, 6)).astype(np.float32)
        w = (rng.standard_normal((8, 4, 3, 3, 3)) * 0.1).astype(np.float32)
        return x, w

    def test_warm_replay_is_bitwise_deterministic(self, tmp_path):
        """Acceptance gate: with a persisted cache, `auto` reproduces the
        same dispatch — hence bitwise the same output — run after run.
        Fresh-cache tuning is the only timed phase."""
        x, w = self._io()
        path = tmp_path / "autotune.json"
        autotune.set_tuner(Autotuner(TuningCache(path), repeats=1))
        first = registry.get_impl(registry.AUTO_IMPL).forward(x, w)  # timed phase
        # Simulate a fresh process: new tuner over the *persisted* file.
        outs = []
        for _ in range(3):
            autotune.set_tuner(Autotuner(TuningCache(path), repeats=1))
            outs.append(registry.get_impl(registry.AUTO_IMPL).forward(x, w))
        for out in outs:
            assert np.array_equal(out, outs[0])
        # The replayed output matches whichever impl won the race.
        key = conv_shape_key("forward", x.shape, w.shape)
        winner = TuningCache(path).get(key)["impl"]
        assert np.array_equal(outs[0], registry.get_impl(winner).forward(x, w))
        assert first.shape == outs[0].shape

    def test_forced_winner_controls_dispatch(self, tmp_path):
        """A hand-written cache entry IS the dispatch table."""
        x, w = self._io()
        key = conv_shape_key("forward", x.shape, w.shape)
        for forced in ("gemm", "direct", "blocked"):
            cache = TuningCache(tmp_path / f"{forced}.json")
            cache.put(key, {"impl": forced, "times_ms": {}, "repeats": 1})
            autotune.set_tuner(Autotuner(cache))
            metrics = MetricsRegistry()
            registry.set_metrics(metrics)
            out = registry.get_impl(registry.AUTO_IMPL).forward(x, w)
            registry.set_metrics(None)
            assert np.array_equal(out, registry.get_impl(forced).forward(x, w))
            snap = metrics.snapshot()
            assert snap[f"primitives.conv3d.auto.forward.{forced}"] == 1
            assert snap["primitives.autotune.hits"] == 1

    def test_unknown_cached_impl_retunes(self, tmp_path):
        x, w = self._io()
        key = conv_shape_key("forward", x.shape, w.shape)
        cache = TuningCache(tmp_path / "c.json")
        cache.put(key, {"impl": "cudnn", "times_ms": {}, "repeats": 1})
        tuner = Autotuner(cache, repeats=1)
        autotune.set_tuner(tuner)
        registry.get_impl(registry.AUTO_IMPL).forward(x, w)
        assert tuner.misses == 1  # stale entry was re-raced
        assert cache.get(key)["impl"] in registry.available_impls()

    def test_auto_candidates_drop_im2col_backward(self):
        assert "im2col" in registry.auto_candidates("forward")
        assert "im2col" not in registry.auto_candidates("backward_data")
        assert "im2col" not in registry.auto_candidates("backward_weights")


class TestWarmConvShapes:
    def test_warm_covers_all_ops(self, tmp_path):
        tuner = _tuner(tmp_path)
        decisions = warm_conv_shapes([(4, 8, 6, 3, 1, 0)], tuner=tuner)
        keys = [k for k, _ in decisions]
        assert len(keys) == 3
        assert any(k.startswith("forward|") for k in keys)
        assert any(k.startswith("backward_data|") for k in keys)
        assert any(k.startswith("backward_weights|") for k in keys)
        for _, impl in decisions:
            assert impl in registry.available_impls()

    def test_warm_is_idempotent(self, tmp_path):
        tuner = _tuner(tmp_path)
        warm_conv_shapes([(4, 8, 6, 3, 1, 0)], tuner=tuner)
        timed_once = tuner.misses
        warm_conv_shapes([(4, 8, 6, 3, 1, 0)], tuner=tuner)
        assert tuner.misses == timed_once  # all warm, nothing re-timed
