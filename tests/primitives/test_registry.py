"""Tests for the conv implementation registry."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.primitives import registry as registry_mod
from repro.primitives.registry import (
    ConvImpl,
    available_impls,
    get_default_impl,
    get_impl,
    register_impl,
    set_default_impl,
    set_metrics,
)


@pytest.fixture(autouse=True)
def restore_default():
    yield
    set_default_impl("gemm")
    set_metrics(None)


class TestRegistry:
    def test_all_registered(self):
        assert available_impls() == [
            "auto", "blocked", "direct", "gemm", "im2col", "int4", "int8",
        ]

    def test_default_is_gemm(self):
        assert get_impl().name == "gemm"
        assert get_default_impl() == "gemm"

    def test_lookup_by_name(self):
        assert get_impl("direct").name == "direct"

    def test_set_default(self):
        set_default_impl("direct")
        assert get_impl().name == "direct"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_impl("cudnn")
        with pytest.raises(KeyError):
            set_default_impl("cudnn")

    def test_impls_agree_end_to_end(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 16, 6, 6, 6)).astype(np.float32)
        w = rng.standard_normal((16, 16, 3, 3, 3)).astype(np.float32)
        g = rng.standard_normal((1, 16, 4, 4, 4)).astype(np.float32)
        a, b = get_impl("gemm"), get_impl("direct")
        np.testing.assert_allclose(a.forward(x, w), b.forward(x, w), rtol=2e-4, atol=2e-4)
        np.testing.assert_allclose(
            a.backward_data(g, w, (6, 6, 6)),
            b.backward_data(g, w, (6, 6, 6)),
            rtol=2e-4,
            atol=2e-4,
        )
        np.testing.assert_allclose(
            a.backward_weights(x, g, (3, 3, 3)),
            b.backward_weights(x, g, (3, 3, 3)),
            rtol=2e-4,
            atol=2e-4,
        )

    def test_direct_padding_fallback(self):
        """The direct wrappers fall back to GEMM kernels when padding != 0."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 4, 5, 5, 5)).astype(np.float32)
        w = rng.standard_normal((4, 4, 3, 3, 3)).astype(np.float32)
        g = rng.standard_normal((1, 4, 5, 5, 5)).astype(np.float32)
        d, r = get_impl("direct"), get_impl("gemm")
        np.testing.assert_allclose(
            d.backward_data(g, w, (5, 5, 5), 1, 1),
            r.backward_data(g, w, (5, 5, 5), 1, 1),
            rtol=2e-4,
            atol=2e-4,
        )
        np.testing.assert_allclose(
            d.backward_weights(x, g, (3, 3, 3), 1, 1),
            r.backward_weights(x, g, (3, 3, 3), 1, 1),
            rtol=2e-4,
            atol=2e-4,
        )

    def test_padding_fallbacks_are_counted(self):
        """Satellite a: direct->gemm substitutions land on the metrics."""
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 4, 5, 5, 5)).astype(np.float32)
        w = rng.standard_normal((4, 4, 3, 3, 3)).astype(np.float32)
        g = rng.standard_normal((1, 4, 5, 5, 5)).astype(np.float32)
        metrics = MetricsRegistry()
        set_metrics(metrics)
        d = get_impl("direct")
        d.backward_data(g, w, (5, 5, 5), 1, 1)
        d.backward_weights(x, g, (3, 3, 3), 1, 1)
        g0 = rng.standard_normal((1, 4, 3, 3, 3)).astype(np.float32)
        d.backward_data(g0, w, (5, 5, 5), 1, 0)  # unpadded: no fallback
        snap = metrics.snapshot()
        assert snap["primitives.conv3d.fallbacks"] == 2
        assert snap["primitives.conv3d.direct.backward_data.fallbacks"] == 1
        assert snap["primitives.conv3d.direct.backward_weights.fallbacks"] == 1

    def test_blocked_native_layout(self):
        assert get_impl("blocked").native_layout == "nCdhw16c"
        assert get_impl("gemm").native_layout == "ncdhw"


class TestRegisterImpl:
    def test_register_and_replace(self):
        original = registry_mod._IMPLS["gemm"]
        calls = []

        def spy_forward(x, w, bias=None, stride=1, padding=0):
            calls.append("hit")
            return original.forward(x, w, bias, stride=stride, padding=padding)

        try:
            register_impl(ConvImpl(
                name="gemm",
                forward=spy_forward,
                backward_data=original.backward_data,
                backward_weights=original.backward_weights,
            ))
            x = np.zeros((1, 2, 3, 3, 3), dtype=np.float32)
            w = np.zeros((2, 2, 2, 2, 2), dtype=np.float32)
            get_impl("gemm").forward(x, w)
            assert calls == ["hit"]
        finally:
            register_impl(original)

    def test_replace_invalidates_instrumented_wrappers(self):
        """Satellite b: a re-registered impl must not be shadowed by a
        stale instrumented wrapper around its predecessor."""
        original = registry_mod._IMPLS["gemm"]
        metrics = MetricsRegistry()
        set_metrics(metrics)
        x = np.zeros((1, 2, 3, 3, 3), dtype=np.float32)
        w = np.zeros((2, 2, 2, 2, 2), dtype=np.float32)
        get_impl("gemm").forward(x, w)  # builds + caches the wrapper
        calls = []

        def spy_forward(xx, ww, bias=None, stride=1, padding=0):
            calls.append("hit")
            return original.forward(xx, ww, bias, stride=stride, padding=padding)

        try:
            register_impl(ConvImpl(
                name="gemm",
                forward=spy_forward,
                backward_data=original.backward_data,
                backward_weights=original.backward_weights,
            ))
            get_impl("gemm").forward(x, w)
            assert calls == ["hit"]  # wrapper was rebuilt over the new impl
        finally:
            register_impl(original)

    def test_set_metrics_invalidates_instrumented_wrappers(self):
        """Counters must land on the currently attached registry, never a
        previously attached one."""
        first = MetricsRegistry()
        set_metrics(first)
        x = np.zeros((1, 2, 3, 3, 3), dtype=np.float32)
        w = np.zeros((2, 2, 2, 2, 2), dtype=np.float32)
        get_impl("gemm").forward(x, w)
        second = MetricsRegistry()
        set_metrics(second)
        get_impl("gemm").forward(x, w)
        assert first.snapshot()["primitives.conv3d.forward.calls"] == 1
        assert second.snapshot()["primitives.conv3d.forward.calls"] == 1

    def test_register_default_flag(self):
        original = registry_mod._IMPLS["gemm"]
        try:
            register_impl(original, default=True)
            assert get_default_impl() == "gemm"
        finally:
            set_default_impl("gemm")

    def test_rejects_non_convimpl(self):
        with pytest.raises(TypeError):
            register_impl("gemm")

    def test_rejects_auto_name(self):
        with pytest.raises(ValueError):
            register_impl(ConvImpl(
                name="auto",
                forward=lambda *a, **k: None,
                backward_data=lambda *a, **k: None,
                backward_weights=lambda *a, **k: None,
            ))

    def test_auto_is_never_instrumented(self):
        """get_impl("auto") must hand back the raw policy: accounting
        happens on the *chosen* impl, wrapping auto would double-count."""
        set_metrics(MetricsRegistry())
        assert get_impl("auto") is registry_mod._AUTO
