"""Tests for the conv implementation registry."""

import numpy as np
import pytest

from repro.primitives.registry import available_impls, get_impl, set_default_impl


@pytest.fixture(autouse=True)
def restore_default():
    yield
    set_default_impl("gemm")


class TestRegistry:
    def test_both_registered(self):
        assert available_impls() == ["direct", "gemm"]

    def test_default_is_gemm(self):
        assert get_impl().name == "gemm"

    def test_lookup_by_name(self):
        assert get_impl("direct").name == "direct"

    def test_set_default(self):
        set_default_impl("direct")
        assert get_impl().name == "direct"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_impl("cudnn")
        with pytest.raises(KeyError):
            set_default_impl("cudnn")

    def test_impls_agree_end_to_end(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 16, 6, 6, 6)).astype(np.float32)
        w = rng.standard_normal((16, 16, 3, 3, 3)).astype(np.float32)
        g = rng.standard_normal((1, 16, 4, 4, 4)).astype(np.float32)
        a, b = get_impl("gemm"), get_impl("direct")
        np.testing.assert_allclose(a.forward(x, w), b.forward(x, w), rtol=2e-4, atol=2e-4)
        np.testing.assert_allclose(
            a.backward_data(g, w, (6, 6, 6)),
            b.backward_data(g, w, (6, 6, 6)),
            rtol=2e-4,
            atol=2e-4,
        )
        np.testing.assert_allclose(
            a.backward_weights(x, g, (3, 3, 3)),
            b.backward_weights(x, g, (3, 3, 3)),
            rtol=2e-4,
            atol=2e-4,
        )

    def test_direct_padding_fallback(self):
        """The direct wrappers fall back to GEMM kernels when padding != 0."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 4, 5, 5, 5)).astype(np.float32)
        w = rng.standard_normal((4, 4, 3, 3, 3)).astype(np.float32)
        g = rng.standard_normal((1, 4, 5, 5, 5)).astype(np.float32)
        d, r = get_impl("direct"), get_impl("gemm")
        np.testing.assert_allclose(
            d.backward_data(g, w, (5, 5, 5), 1, 1),
            r.backward_data(g, w, (5, 5, 5), 1, 1),
            rtol=2e-4,
            atol=2e-4,
        )
        np.testing.assert_allclose(
            d.backward_weights(x, g, (3, 3, 3), 1, 1),
            r.backward_weights(x, g, (3, 3, 3), 1, 1),
            rtol=2e-4,
            atol=2e-4,
        )
