"""Tests for the GEMM-path 3D convolution kernels.

Correctness anchors:
* forward vs an independent scipy.ndimage/scipy.signal reference,
* backward-data and backward-weights vs numerical finite differences,
* shape arithmetic edge cases.
"""

import numpy as np
import pytest
from scipy.signal import correlate

from repro.primitives.conv3d import (
    conv3d_backward_data,
    conv3d_backward_weights,
    conv3d_forward,
    conv3d_output_shape,
)


def reference_conv3d(x, w, bias=None, stride=1, padding=0):
    """Independent reference: per-(n, oc, ic) scipy cross-correlation."""
    if np.isscalar(stride):
        stride = (stride,) * 3
    if np.isscalar(padding):
        padding = (padding,) * 3
    n, ic = x.shape[:2]
    oc = w.shape[0]
    xp = np.pad(x, ((0, 0), (0, 0)) + tuple((p, p) for p in padding))
    outs = []
    for b in range(n):
        per_oc = []
        for o in range(oc):
            acc = None
            for i in range(ic):
                r = correlate(xp[b, i], w[o, i], mode="valid")
                acc = r if acc is None else acc + r
            per_oc.append(acc[:: stride[0], :: stride[1], :: stride[2]])
        outs.append(np.stack(per_oc))
    out = np.stack(outs)
    if bias is not None:
        out = out + bias.reshape(1, -1, 1, 1, 1)
    return out


class TestOutputShape:
    @pytest.mark.parametrize(
        "inp,k,s,p,expect",
        [
            ((8, 8, 8), 3, 1, 0, (6, 6, 6)),
            ((128, 128, 128), 3, 1, 0, (126, 126, 126)),
            ((63, 63, 63), 4, 1, 0, (60, 60, 60)),
            ((8, 8, 8), 2, 2, 0, (4, 4, 4)),
            ((9, 9, 9), 2, 2, 0, (4, 4, 4)),  # floor semantics
            ((27, 27, 27), 2, 2, 0, (13, 13, 13)),
            ((6, 6, 6), 3, 1, 1, (6, 6, 6)),  # "same"-style pad
            ((5, 7, 9), (3, 3, 3), (1, 2, 3), 0, (3, 3, 3)),
        ],
    )
    def test_values(self, inp, k, s, p, expect):
        assert conv3d_output_shape(inp, k, s, p) == expect

    def test_kernel_too_large_raises(self):
        with pytest.raises(ValueError):
            conv3d_output_shape((2, 2, 2), 3, 1, 0)


class TestForward:
    @pytest.mark.parametrize(
        "n,ic,oc,size,k,stride,padding",
        [
            (1, 1, 1, 5, 3, 1, 0),
            (2, 3, 4, 6, 3, 1, 0),
            (1, 2, 2, 7, 4, 1, 0),
            (1, 2, 3, 8, 3, 2, 0),
            (1, 2, 3, 6, 3, 1, 1),
            (2, 1, 2, 6, 2, 2, 0),
        ],
    )
    def test_matches_scipy_reference(self, n, ic, oc, size, k, stride, padding):
        rng = np.random.default_rng(42)
        x = rng.standard_normal((n, ic, size, size, size)).astype(np.float32)
        w = rng.standard_normal((oc, ic, k, k, k)).astype(np.float32)
        b = rng.standard_normal(oc).astype(np.float32)
        got = conv3d_forward(x, w, b, stride, padding)
        want = reference_conv3d(x, w, b, stride, padding)
        np.testing.assert_allclose(got, want, rtol=2e-4, atol=2e-4)

    def test_identity_kernel(self):
        """A 1x1x1 kernel with weight 1 copies the input channel."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 1, 4, 4, 4)).astype(np.float32)
        w = np.ones((1, 1, 1, 1, 1), dtype=np.float32)
        np.testing.assert_allclose(conv3d_forward(x, w), x)

    def test_anisotropic_stride(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 2, 7, 9, 11)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3, 3)).astype(np.float32)
        got = conv3d_forward(x, w, stride=(1, 2, 3))
        want = reference_conv3d(x, w, stride=(1, 2, 3))
        assert got.shape == (1, 3, 5, 4, 3)
        np.testing.assert_allclose(got, want, rtol=2e-4, atol=2e-4)

    def test_dtype_preserved(self):
        x = np.zeros((1, 1, 4, 4, 4), dtype=np.float32)
        w = np.zeros((1, 1, 3, 3, 3), dtype=np.float32)
        assert conv3d_forward(x, w).dtype == np.float32

    def test_output_contiguous(self):
        x = np.zeros((1, 1, 4, 4, 4), dtype=np.float32)
        w = np.zeros((2, 1, 3, 3, 3), dtype=np.float32)
        assert conv3d_forward(x, w).flags["C_CONTIGUOUS"]

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            conv3d_forward(
                np.zeros((1, 2, 4, 4, 4), dtype=np.float32),
                np.zeros((1, 3, 3, 3, 3), dtype=np.float32),
            )

    def test_bad_rank_raises(self):
        with pytest.raises(ValueError):
            conv3d_forward(np.zeros((2, 4, 4, 4)), np.zeros((1, 2, 3, 3, 3)))
        with pytest.raises(ValueError):
            conv3d_forward(np.zeros((1, 2, 4, 4, 4)), np.zeros((2, 3, 3, 3)))

    def test_linearity(self):
        """conv(a*x1 + x2) == a*conv(x1) + conv(x2) (no bias)."""
        rng = np.random.default_rng(3)
        x1 = rng.standard_normal((1, 2, 5, 5, 5)).astype(np.float32)
        x2 = rng.standard_normal((1, 2, 5, 5, 5)).astype(np.float32)
        w = rng.standard_normal((2, 2, 3, 3, 3)).astype(np.float32)
        lhs = conv3d_forward(2.0 * x1 + x2, w)
        rhs = 2.0 * conv3d_forward(x1, w) + conv3d_forward(x2, w)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-4, atol=1e-4)


def numerical_grad(f, x, eps=1e-3):
    """Central-difference gradient of scalar f w.r.t. array x (float64)."""
    g = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f()
        flat[i] = orig - eps
        fm = f()
        flat[i] = orig
        gf[i] = (fp - fm) / (2 * eps)
    return g


class TestBackward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 0), (1, 1)])
    def test_backward_data_matches_numerical(self, stride, padding):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((1, 2, 5, 5, 5)).astype(np.float64)
        w = rng.standard_normal((3, 2, 3, 3, 3)).astype(np.float64)
        out_shape = conv3d_output_shape(x.shape[2:], (3, 3, 3), stride, padding)
        g = rng.standard_normal((1, 3) + out_shape).astype(np.float64)

        def loss():
            return float(np.sum(conv3d_forward(x, w, None, stride, padding) * g))

        want = numerical_grad(loss, x)
        got = conv3d_backward_data(g, w, x.shape[2:], stride, padding)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 0), (1, 1)])
    def test_backward_weights_matches_numerical(self, stride, padding):
        rng = np.random.default_rng(8)
        x = rng.standard_normal((2, 2, 5, 5, 5)).astype(np.float64)
        w = rng.standard_normal((2, 2, 3, 3, 3)).astype(np.float64)
        out_shape = conv3d_output_shape(x.shape[2:], (3, 3, 3), stride, padding)
        g = rng.standard_normal((2, 2) + out_shape).astype(np.float64)

        def loss():
            return float(np.sum(conv3d_forward(x, w, None, stride, padding) * g))

        want = numerical_grad(loss, w)
        got = conv3d_backward_weights(x, g, (3, 3, 3), stride, padding)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    def test_backward_bias(self):
        rng = np.random.default_rng(9)
        g = rng.standard_normal((2, 3, 4, 4, 4)).astype(np.float64)
        x = rng.standard_normal((2, 2, 6, 6, 6)).astype(np.float64)
        _, gb = conv3d_backward_weights(x, g, (3, 3, 3), with_bias=True)
        np.testing.assert_allclose(gb, g.sum(axis=(0, 2, 3, 4)))

    def test_backward_data_shape_validation(self):
        g = np.zeros((1, 2, 4, 4, 4))
        w = np.zeros((2, 1, 3, 3, 3))
        with pytest.raises(ValueError):
            conv3d_backward_data(g, w, (5, 5, 5))  # expects 3^3 output from 5^3

    def test_backward_weights_shape_validation(self):
        x = np.zeros((1, 1, 5, 5, 5))
        g = np.zeros((1, 2, 4, 4, 4))
        with pytest.raises(ValueError):
            conv3d_backward_weights(x, g, (3, 3, 3))

    def test_batch_mismatch_raises(self):
        x = np.zeros((2, 1, 5, 5, 5))
        g = np.zeros((1, 2, 3, 3, 3))
        with pytest.raises(ValueError):
            conv3d_backward_weights(x, g, (3, 3, 3))

    def test_grad_channel_mismatch_raises(self):
        g = np.zeros((1, 3, 3, 3, 3))
        w = np.zeros((2, 1, 3, 3, 3))
        with pytest.raises(ValueError):
            conv3d_backward_data(g, w, (5, 5, 5))
