"""Tests for channel-blocked layouts (repro.primitives.layout)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.primitives import registry
from repro.primitives.layout import (
    BLOCK,
    BLOCKED_NCDHW16C,
    BLOCKED_OIDHW16I16O,
    PLAIN_NCDHW,
    PLAIN_OIDHW,
    ReorderCache,
    available_layouts,
    blocked_channels,
    clear_reorder_cache,
    from_blocked,
    from_blocked_batch,
    from_blocked_bias,
    from_blocked_weights,
    get_layout,
    reorder,
    reorder_cached,
    to_blocked,
    to_blocked_batch,
    to_blocked_bias,
    to_blocked_weights,
)


class TestBlockedChannels:
    @pytest.mark.parametrize("c,expect", [(1, 1), (16, 1), (17, 2), (32, 2), (33, 3)])
    def test_values(self, c, expect):
        assert blocked_channels(c) == expect

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            blocked_channels(0)


class TestActivationLayout:
    def test_shape(self):
        x = np.zeros((32, 4, 5, 6), dtype=np.float32)
        xb = to_blocked(x)
        assert xb.shape == (2, 4, 5, 6, BLOCK)

    def test_round_trip_multiple_of_block(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((32, 3, 4, 5)).astype(np.float32)
        np.testing.assert_array_equal(from_blocked(to_blocked(x), 32), x)

    def test_round_trip_ragged(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((5, 2, 3, 4)).astype(np.float32)
        np.testing.assert_array_equal(from_blocked(to_blocked(x), 5), x)

    def test_padding_is_zero(self):
        x = np.ones((5, 2, 2, 2), dtype=np.float32)
        xb = to_blocked(x)
        assert np.all(xb[0, :, :, :, 5:] == 0.0)

    def test_element_mapping(self):
        # channel c maps to block c//16, lane c%16
        x = np.arange(32, dtype=np.float32).reshape(32, 1, 1, 1)
        xb = to_blocked(x)
        for c in range(32):
            assert xb[c // BLOCK, 0, 0, 0, c % BLOCK] == c

    def test_bad_rank_raises(self):
        with pytest.raises(ValueError):
            to_blocked(np.zeros((2, 2, 2)))

    def test_from_blocked_channel_mismatch(self):
        xb = np.zeros((2, 1, 1, 1, BLOCK))
        with pytest.raises(ValueError):
            from_blocked(xb, 5)  # 5 channels need 1 block, not 2

    @given(
        c=st.integers(min_value=1, max_value=40),
        d=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, c, d, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((c, d, 2, 3)).astype(np.float32)
        np.testing.assert_array_equal(from_blocked(to_blocked(x), c), x)


class TestWeightLayout:
    def test_shape(self):
        w = np.zeros((32, 16, 3, 3, 3), dtype=np.float32)
        wb = to_blocked_weights(w)
        assert wb.shape == (2, 1, 3, 3, 3, BLOCK, BLOCK)

    def test_round_trip(self):
        rng = np.random.default_rng(2)
        w = rng.standard_normal((32, 16, 2, 3, 4)).astype(np.float32)
        np.testing.assert_array_equal(from_blocked_weights(to_blocked_weights(w), 32, 16), w)

    def test_round_trip_ragged(self):
        rng = np.random.default_rng(3)
        w = rng.standard_normal((5, 3, 1, 1, 1)).astype(np.float32)
        np.testing.assert_array_equal(from_blocked_weights(to_blocked_weights(w), 5, 3), w)

    def test_element_mapping(self):
        # W[ocb, icb, kd, kh, kw, ic%16, oc%16] == w[oc, ic, ...]
        rng = np.random.default_rng(4)
        w = rng.standard_normal((32, 32, 1, 1, 1)).astype(np.float32)
        wb = to_blocked_weights(w)
        for oc in (0, 15, 16, 31):
            for ic in (0, 7, 16, 31):
                assert (
                    wb[oc // BLOCK, ic // BLOCK, 0, 0, 0, ic % BLOCK, oc % BLOCK]
                    == w[oc, ic, 0, 0, 0]
                )

    def test_bad_rank_raises(self):
        with pytest.raises(ValueError):
            to_blocked_weights(np.zeros((4, 4, 3, 3)))

    @given(
        oc=st.integers(min_value=1, max_value=33),
        ic=st.integers(min_value=1, max_value=33),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, oc, ic, seed):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((oc, ic, 2, 1, 3)).astype(np.float32)
        np.testing.assert_array_equal(
            from_blocked_weights(to_blocked_weights(w), oc, ic), w
        )


class TestLayoutRegistry:
    def test_known_layouts(self):
        names = available_layouts()
        for expected in ("ncdhw", "nCdhw16c", "oidhw", "OIdhw16i16o"):
            assert expected in names

    def test_lookup(self):
        blocked = get_layout("nCdhw16c")
        assert blocked.is_blocked and blocked.block == BLOCK
        assert blocked.kind == "activation"
        assert not get_layout("ncdhw").is_blocked

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_layout("nhwc")


class TestBatchLayout:
    @pytest.mark.parametrize("c", [1, 5, 16, 17, 32])
    def test_round_trip(self, c):
        rng = np.random.default_rng(c)
        x = rng.standard_normal((3, c, 2, 3, 4)).astype(np.float32)
        np.testing.assert_array_equal(from_blocked_batch(to_blocked_batch(x), c), x)

    def test_matches_per_sample(self):
        """The vectorized batch converter and the per-sample one agree."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 5, 3, 3, 3)).astype(np.float32)
        xb = to_blocked_batch(x)
        for i in range(2):
            np.testing.assert_array_equal(xb[i], to_blocked(x[i]))

    def test_padding_lanes_zero(self):
        x = np.ones((2, 5, 2, 2, 2), dtype=np.float32)
        assert np.all(to_blocked_batch(x)[:, 0, :, :, :, 5:] == 0.0)

    def test_bad_rank_raises(self):
        with pytest.raises(ValueError):
            to_blocked_batch(np.zeros((5, 2, 2, 2)))

    @given(
        c=st.integers(min_value=1, max_value=40),
        n=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, c, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, c, 2, 1, 3)).astype(np.float32)
        np.testing.assert_array_equal(from_blocked_batch(to_blocked_batch(x), c), x)


class TestBiasLayout:
    @pytest.mark.parametrize("c", [1, 5, 16, 17, 32])
    def test_round_trip(self, c):
        b = np.arange(c, dtype=np.float32)
        np.testing.assert_array_equal(from_blocked_bias(to_blocked_bias(b), c), b)

    def test_shape_and_padding(self):
        bb = to_blocked_bias(np.ones(5, dtype=np.float32))
        assert bb.shape == (1, BLOCK)
        assert np.all(bb[0, 5:] == 0.0)

    @given(c=st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_property(self, c):
        rng = np.random.default_rng(c)
        b = rng.standard_normal(c).astype(np.float32)
        np.testing.assert_array_equal(from_blocked_bias(to_blocked_bias(b), c), b)


class TestCountedReorder:
    @pytest.fixture(autouse=True)
    def _detach(self):
        yield
        registry.set_metrics(None)

    def test_reorder_round_trip(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 5, 3, 3, 3)).astype(np.float32)
        xb = reorder(x, PLAIN_NCDHW, BLOCKED_NCDHW16C)
        np.testing.assert_array_equal(
            reorder(xb, BLOCKED_NCDHW16C, PLAIN_NCDHW, channels=5), x
        )

    def test_same_layout_is_uncounted_noop(self):
        metrics = MetricsRegistry()
        registry.set_metrics(metrics)
        x = np.ones((1, 4, 2, 2, 2), dtype=np.float32)
        assert reorder(x, PLAIN_NCDHW, PLAIN_NCDHW) is x
        assert "primitives.reorder.calls" not in metrics.snapshot()

    def test_counters(self):
        metrics = MetricsRegistry()
        registry.set_metrics(metrics)
        x = np.ones((1, 4, 2, 2, 2), dtype=np.float32)
        w = np.ones((4, 4, 2, 2, 2), dtype=np.float32)
        reorder(x, PLAIN_NCDHW, BLOCKED_NCDHW16C)
        reorder(w, PLAIN_OIDHW, BLOCKED_OIDHW16I16O)
        snap = metrics.snapshot()
        assert snap["primitives.reorder.calls"] == 2
        assert snap["primitives.reorder.ncdhw->nCdhw16c.calls"] == 1
        assert snap["primitives.reorder.oidhw->OIdhw16i16o.calls"] == 1
        assert snap["primitives.reorder.bytes"] > 0

    def test_unsupported_pair_raises(self):
        with pytest.raises((KeyError, ValueError)):
            reorder(np.ones((1, 4, 2, 2, 2)), PLAIN_NCDHW, BLOCKED_OIDHW16I16O)


class TestReorderCache:
    def test_hit_on_identical_content(self):
        cache = ReorderCache()
        w = np.ones((4, 4, 2, 2, 2), dtype=np.float32)
        a = cache.get_or_reorder(w, PLAIN_OIDHW, BLOCKED_OIDHW16I16O)
        b = cache.get_or_reorder(w, PLAIN_OIDHW, BLOCKED_OIDHW16I16O)
        assert a is b
        assert cache.hits == 1 and cache.misses == 1

    def test_miss_on_changed_content(self):
        """Content-addressed: an updated weight must repack."""
        cache = ReorderCache()
        w = np.ones((4, 4, 2, 2, 2), dtype=np.float32)
        a = cache.get_or_reorder(w, PLAIN_OIDHW, BLOCKED_OIDHW16I16O)
        w2 = w * 2.0
        b = cache.get_or_reorder(w2, PLAIN_OIDHW, BLOCKED_OIDHW16I16O)
        assert cache.misses == 2
        assert not np.array_equal(a, b)

    def test_lru_eviction(self):
        cache = ReorderCache(max_entries=2)
        for i in range(3):
            w = np.full((4, 4, 1, 1, 1), float(i), dtype=np.float32)
            cache.get_or_reorder(w, PLAIN_OIDHW, BLOCKED_OIDHW16I16O)
        # Entry 0 was evicted: re-requesting it misses again.
        w0 = np.full((4, 4, 1, 1, 1), 0.0, dtype=np.float32)
        cache.get_or_reorder(w0, PLAIN_OIDHW, BLOCKED_OIDHW16I16O)
        assert cache.misses == 4 and cache.hits == 0

    def test_module_default_cache(self):
        clear_reorder_cache()
        w = np.ones((4, 4, 2, 2, 2), dtype=np.float32)
        a = reorder_cached(w, PLAIN_OIDHW, BLOCKED_OIDHW16I16O)
        b = reorder_cached(w, PLAIN_OIDHW, BLOCKED_OIDHW16I16O)
        assert a is b
        clear_reorder_cache()
        c = reorder_cached(w, PLAIN_OIDHW, BLOCKED_OIDHW16I16O)
        assert c is not a
        np.testing.assert_array_equal(c, a)
        clear_reorder_cache()
