"""Tests for channel-blocked layouts (repro.primitives.layout)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives.layout import (
    BLOCK,
    blocked_channels,
    from_blocked,
    from_blocked_weights,
    to_blocked,
    to_blocked_weights,
)


class TestBlockedChannels:
    @pytest.mark.parametrize("c,expect", [(1, 1), (16, 1), (17, 2), (32, 2), (33, 3)])
    def test_values(self, c, expect):
        assert blocked_channels(c) == expect

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            blocked_channels(0)


class TestActivationLayout:
    def test_shape(self):
        x = np.zeros((32, 4, 5, 6), dtype=np.float32)
        xb = to_blocked(x)
        assert xb.shape == (2, 4, 5, 6, BLOCK)

    def test_round_trip_multiple_of_block(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((32, 3, 4, 5)).astype(np.float32)
        np.testing.assert_array_equal(from_blocked(to_blocked(x), 32), x)

    def test_round_trip_ragged(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((5, 2, 3, 4)).astype(np.float32)
        np.testing.assert_array_equal(from_blocked(to_blocked(x), 5), x)

    def test_padding_is_zero(self):
        x = np.ones((5, 2, 2, 2), dtype=np.float32)
        xb = to_blocked(x)
        assert np.all(xb[0, :, :, :, 5:] == 0.0)

    def test_element_mapping(self):
        # channel c maps to block c//16, lane c%16
        x = np.arange(32, dtype=np.float32).reshape(32, 1, 1, 1)
        xb = to_blocked(x)
        for c in range(32):
            assert xb[c // BLOCK, 0, 0, 0, c % BLOCK] == c

    def test_bad_rank_raises(self):
        with pytest.raises(ValueError):
            to_blocked(np.zeros((2, 2, 2)))

    def test_from_blocked_channel_mismatch(self):
        xb = np.zeros((2, 1, 1, 1, BLOCK))
        with pytest.raises(ValueError):
            from_blocked(xb, 5)  # 5 channels need 1 block, not 2

    @given(
        c=st.integers(min_value=1, max_value=40),
        d=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, c, d, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((c, d, 2, 3)).astype(np.float32)
        np.testing.assert_array_equal(from_blocked(to_blocked(x), c), x)


class TestWeightLayout:
    def test_shape(self):
        w = np.zeros((32, 16, 3, 3, 3), dtype=np.float32)
        wb = to_blocked_weights(w)
        assert wb.shape == (2, 1, 3, 3, 3, BLOCK, BLOCK)

    def test_round_trip(self):
        rng = np.random.default_rng(2)
        w = rng.standard_normal((32, 16, 2, 3, 4)).astype(np.float32)
        np.testing.assert_array_equal(from_blocked_weights(to_blocked_weights(w), 32, 16), w)

    def test_round_trip_ragged(self):
        rng = np.random.default_rng(3)
        w = rng.standard_normal((5, 3, 1, 1, 1)).astype(np.float32)
        np.testing.assert_array_equal(from_blocked_weights(to_blocked_weights(w), 5, 3), w)

    def test_element_mapping(self):
        # W[ocb, icb, kd, kh, kw, ic%16, oc%16] == w[oc, ic, ...]
        rng = np.random.default_rng(4)
        w = rng.standard_normal((32, 32, 1, 1, 1)).astype(np.float32)
        wb = to_blocked_weights(w)
        for oc in (0, 15, 16, 31):
            for ic in (0, 7, 16, 31):
                assert (
                    wb[oc // BLOCK, ic // BLOCK, 0, 0, 0, ic % BLOCK, oc % BLOCK]
                    == w[oc, ic, 0, 0, 0]
                )

    def test_bad_rank_raises(self):
        with pytest.raises(ValueError):
            to_blocked_weights(np.zeros((4, 4, 3, 3)))

    @given(
        oc=st.integers(min_value=1, max_value=33),
        ic=st.integers(min_value=1, max_value=33),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, oc, ic, seed):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((oc, ic, 2, 1, 3)).astype(np.float32)
        np.testing.assert_array_equal(
            from_blocked_weights(to_blocked_weights(w), oc, ic), w
        )
