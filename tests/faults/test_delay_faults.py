"""Delay-fault coverage: ``with_slow_rank`` plan derivation,
``FaultPlan.validate`` hardening for delay-carrying events, and
``RANK_HANG`` behavior across the threaded-elastic and process
backends."""

import numpy as np
import pytest

from repro.core.distributed import DistributedConfig
from repro.core.elastic import ElasticConfig, ElasticTrainer
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

OPT = OptimizerConfig(eta0=5e-3, decay_steps=50)


def make_dataset(n=8, seed=0, size=16):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, size, size, size)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


class TestWithSlowRank:
    def test_derives_hang_schedule(self):
        plan = FaultPlan(seed=3).with_slow_rank(1, 0.05, n_steps=4, start_step=2)
        assert [e.step for e in plan.events] == [2, 3, 4, 5]
        assert all(e.kind is FaultKind.RANK_HANG for e in plan.events)
        assert all(e.rank == 1 and e.delay_s == 0.05 for e in plan.events)

    def test_rate_subsamples_deterministically(self):
        a = FaultPlan(seed=3).with_slow_rank(0, 0.05, n_steps=100, rate=0.3)
        b = FaultPlan(seed=3).with_slow_rank(0, 0.05, n_steps=100, rate=0.3)
        assert a.events == b.events
        assert 10 < len(a.events) < 50  # ~30 of 100
        c = FaultPlan(seed=4).with_slow_rank(0, 0.05, n_steps=100, rate=0.3)
        assert c.events != a.events

    def test_preserves_existing_events(self):
        base = FaultPlan(seed=1, events=(
            FaultEvent(FaultKind.RANK_CRASH, rank=2, step=5),
        ))
        plan = base.with_slow_rank(0, 0.01, n_steps=2)
        assert plan.events[0].kind is FaultKind.RANK_CRASH
        assert len(plan.events) == 3

    @pytest.mark.parametrize(
        "kw",
        [
            {"delay_s": 0.0},
            {"delay_s": -0.1},
            {"n_steps": 0},
            {"rate": 0.0},
            {"rate": 1.5},
            {"start_step": -1},
        ],
    )
    def test_bad_arguments(self, kw):
        args = {"rank": 0, "delay_s": 0.01, "n_steps": 3}
        args.update(kw)
        with pytest.raises(ValueError):
            FaultPlan(seed=1).with_slow_rank(
                args["rank"], args["delay_s"], args["n_steps"],
                rate=args.get("rate", 1.0), start_step=args.get("start_step", 0),
            )


class TestValidateDelayEvents:
    @pytest.mark.parametrize(
        "event",
        [
            FaultEvent(FaultKind.RANK_HANG, rank=0, step=1),
            FaultEvent(FaultKind.READ_DELAY, step=1),
            FaultEvent(FaultKind.TARGET_SLOW, step=1),
            FaultEvent(FaultKind.REPLICA_SLOW, step=1),
        ],
    )
    def test_zero_delay_flagged(self, event):
        problems = FaultPlan(events=(event,)).validate(n_ranks=2)
        assert len(problems) == 1
        assert "delay_s=0" in problems[0]
        assert event.kind.value in problems[0]

    def test_positive_delay_passes(self):
        plan = FaultPlan(seed=1).with_slow_rank(1, 0.05, n_steps=3)
        assert plan.validate(n_ranks=2) == []

    def test_out_of_range_hang_rank_flagged(self):
        plan = FaultPlan(seed=1).with_slow_rank(5, 0.05, n_steps=2)
        problems = plan.validate(n_ranks=4)
        assert len(problems) == 2  # one per derived event
        assert all("rank 5" in p for p in problems)

    def test_zero_delay_and_bad_rank_both_reported(self):
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.RANK_HANG, rank=9, step=0, delay_s=0.0),
        ))
        problems = plan.validate(n_ranks=2)
        assert len(problems) == 2


class TestThreadedElasticDelays:
    """Small ``RANK_HANG`` delays under the threaded-elastic backend:
    the rank sleeps, nothing else changes — numerics stay bitwise
    identical to the fault-free run."""

    def run(self, injector=None, elastic=None):
        trainer = ElasticTrainer(
            tiny_16(),
            make_dataset(8),
            config=DistributedConfig(
                n_ranks=2, epochs=2, mode="elastic", validate=False
            ),
            optimizer_config=OPT,
            elastic=elastic or ElasticConfig(timeout_s=10.0),
            injector=injector,
        )
        hist = trainer.run()
        return trainer, hist

    def test_small_delay_is_numerically_invisible(self):
        t_ref, h_ref = self.run()
        plan = FaultPlan(seed=1).with_slow_rank(1, 0.02, n_steps=3)
        inj = FaultInjector(plan)
        t_slow, h_slow = self.run(injector=inj)
        assert inj.fired[FaultKind.RANK_HANG] == 3
        assert h_slow.train_loss == h_ref.train_loss
        assert np.array_equal(
            t_slow.final_model.get_flat_parameters(),
            t_ref.final_model.get_flat_parameters(),
        )
        assert t_slow.group_stats["evicted_ranks"] == []

    def test_persistent_slow_rank_evicted_on_timeout(self):
        plan = FaultPlan(seed=1).with_slow_rank(1, 2.0, n_steps=1, start_step=2)
        t, hist = self.run(
            injector=FaultInjector(plan),
            elastic=ElasticConfig(timeout_s=0.3),
        )
        assert t.group_stats["evicted_ranks"] == [1]
        assert t.group_stats["survivors"] == [0]
        assert len(hist.train_loss) == 2


class TestProcessDelays:
    def test_hang_fires_in_real_process(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path))
        plan = FaultPlan(seed=1).with_slow_rank(1, 0.02, n_steps=2)
        trainer = ElasticTrainer(
            tiny_16(),
            make_dataset(8),
            config=DistributedConfig(
                n_ranks=2, epochs=2, mode="elastic", validate=False
            ),
            optimizer_config=OPT,
            elastic=ElasticConfig(timeout_s=15.0),
            injector=FaultInjector(plan),
            backend="process",
        )
        hist = trainer.run()
        stats = trainer.group_stats
        assert stats["backend"] == "process"
        assert stats["faults_injected"].get("rank_hang", 0) == 2
        assert stats["evicted_ranks"] == []
        assert len(hist.train_loss) == 2
        assert np.isfinite(hist.train_loss[-1])
