"""Tests for the deterministic fault-injection framework."""

import numpy as np
import pytest

from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    InjectedCrash,
    InjectedReadError,
)
from repro.io.records import RecordCorruptError, RecordReader, write_record_file


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan(seed=3)
        assert plan.empty and len(plan) == 0
        assert "no faults" in plan.describe()

    def test_events_need_rank(self):
        with pytest.raises(ValueError, match="need a rank"):
            FaultEvent(FaultKind.RANK_CRASH, step=2)

    def test_bad_fields(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.READ_ERROR, step=-1)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.READ_ERROR, repeats=0)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.RANK_HANG, rank=0, delay_s=-1.0)

    def test_sample_deterministic(self):
        kwargs = dict(
            n_ranks=8, n_steps=40, crash_rate=0.01, hang_rate=0.02,
            read_error_rate=0.05, n_reads=50,
        )
        a = FaultPlan.sample(seed=11, **kwargs)
        b = FaultPlan.sample(seed=11, **kwargs)
        c = FaultPlan.sample(seed=12, **kwargs)
        assert a.events == b.events
        assert a.events != c.events

    def test_sample_crash_at_most_once_per_rank(self):
        plan = FaultPlan.sample(seed=0, n_ranks=4, n_steps=500, crash_rate=0.05)
        crashes = plan.of_kind(FaultKind.RANK_CRASH)
        ranks = [e.rank for e in crashes]
        assert len(ranks) == len(set(ranks))

    def test_sample_rate_validation(self):
        with pytest.raises(ValueError, match="crash_rate"):
            FaultPlan.sample(seed=0, n_ranks=2, n_steps=2, crash_rate=1.5)

    def test_describe_lists_events(self):
        plan = FaultPlan(
            seed=1,
            events=[FaultEvent(FaultKind.RANK_CRASH, rank=2, step=5)],
        )
        assert "rank_crash" in plan.describe()
        assert "rank=2" in plan.describe()

    def test_recover_event_needs_rank(self):
        with pytest.raises(ValueError, match="need a rank"):
            FaultEvent(FaultKind.RANK_RECOVER, step=2)
        FaultEvent(FaultKind.SPARE_JOIN, step=2)  # rank optional: lowest dead


class TestWithRecovery:
    def test_derives_recovery_per_crash(self):
        plan = FaultPlan(
            seed=5,
            events=[
                FaultEvent(FaultKind.RANK_CRASH, rank=1, step=3),
                FaultEvent(FaultKind.RANK_CRASH, rank=2, step=7),
                FaultEvent(FaultKind.RANK_HANG, rank=0, step=4, delay_s=0.1),
            ],
        )
        out = plan.with_recovery(4)
        recoveries = out.of_kind(FaultKind.RANK_RECOVER)
        assert [(e.rank, e.step) for e in recoveries] == [(1, 7), (2, 11)]
        # Originals are preserved; hangs get no recovery (eviction is
        # the group's call, not the schedule's).
        assert len(out) == len(plan) + 2
        assert out.seed == plan.seed

    def test_existing_recovery_not_duplicated(self):
        plan = FaultPlan(
            events=[
                FaultEvent(FaultKind.RANK_CRASH, rank=1, step=3),
                FaultEvent(FaultKind.RANK_RECOVER, rank=1, step=5),
            ]
        )
        out = plan.with_recovery(4)
        assert len(out.of_kind(FaultKind.RANK_RECOVER)) == 1

    def test_validates_after_steps(self):
        with pytest.raises(ValueError):
            FaultPlan().with_recovery(0)


class TestInjector:
    def test_crash_fires_once(self):
        inj = FaultInjector(
            FaultPlan(events=[FaultEvent(FaultKind.RANK_CRASH, rank=1, step=3)])
        )
        inj.maybe_crash(0, 3)  # wrong rank: no fire
        inj.maybe_crash(1, 2)  # wrong step: no fire
        with pytest.raises(InjectedCrash):
            inj.maybe_crash(1, 3)
        inj.maybe_crash(1, 3)  # consumed: elastic restart must not re-crash
        assert inj.fired[FaultKind.RANK_CRASH] == 1

    def test_hang_delay(self):
        inj = FaultInjector(
            FaultPlan(events=[FaultEvent(FaultKind.RANK_HANG, rank=0, step=1, delay_s=0.25)])
        )
        assert inj.hang_delay(0, 0) == 0.0
        assert inj.hang_delay(0, 1) == 0.25
        assert inj.hang_delay(0, 1) == 0.0  # one-shot

    def test_read_error_with_repeats(self):
        inj = FaultInjector(
            FaultPlan(events=[FaultEvent(FaultKind.READ_ERROR, step=1, repeats=2)])
        )
        inj.on_read("f0")  # read 0: clean
        with pytest.raises(InjectedReadError):
            inj.on_read("f1")  # read 1, attempt 0
        with pytest.raises(InjectedReadError):
            inj.on_read("f1", attempt=1)  # retry still fails (repeats=2)
        inj.on_read("f1", attempt=2)  # retry succeeds
        assert inj.fired[FaultKind.READ_ERROR] == 2

    def test_message_corruption_flips_bytes(self):
        inj = FaultInjector(
            FaultPlan(events=[FaultEvent(FaultKind.MESSAGE_CORRUPT, rank=0, step=0)])
        )
        assert inj.corrupts_messages
        arr = np.ones(16, dtype=np.float32)
        wire = inj.corrupt_message(0, 0, arr)
        assert not np.array_equal(wire, arr)
        np.testing.assert_array_equal(arr, np.ones(16, dtype=np.float32))  # source intact
        # consumed: next collective is clean
        assert inj.corrupt_message(0, 0, arr) is arr

    def test_recoveries_due_consumed_at_most_once(self):
        inj = FaultInjector(
            FaultPlan(
                events=[
                    FaultEvent(FaultKind.RANK_RECOVER, rank=1, step=4),
                    FaultEvent(FaultKind.SPARE_JOIN, rank=None, step=4),
                    FaultEvent(FaultKind.RANK_RECOVER, rank=2, step=6),
                ]
            )
        )
        assert inj.has_recoveries
        assert inj.recoveries_due(3) == []
        due = inj.recoveries_due(4)
        assert {(e.kind, e.rank) for e in due} == {
            (FaultKind.RANK_RECOVER, 1),
            (FaultKind.SPARE_JOIN, None),
        }
        # At-most-once: the first survivor to reach the boundary takes
        # them; later callers (and replays) see nothing.
        assert inj.recoveries_due(4) == []
        assert len(inj.recoveries_due(6)) == 1
        assert inj.fired[FaultKind.RANK_RECOVER] == 2
        assert inj.fired[FaultKind.SPARE_JOIN] == 1

    def test_no_recoveries_flag(self):
        inj = FaultInjector(
            FaultPlan(events=[FaultEvent(FaultKind.RANK_CRASH, rank=0, step=1)])
        )
        assert not inj.has_recoveries
        assert inj.recoveries_due(1) == []

    def test_empty_injector_is_noop(self):
        inj = FaultInjector()
        inj.maybe_crash(0, 0)
        assert inj.hang_delay(0, 0) == 0.0
        inj.on_read("x")
        arr = np.zeros(4)
        assert inj.corrupt_message(0, 0, arr) is arr
        assert inj.fired_total() == 0
        assert inj.summary() == {}

    def test_corrupt_record_file(self, tmp_path):
        rng = np.random.default_rng(0)
        vols = [rng.standard_normal((4, 4, 4)).astype(np.float32) for _ in range(3)]
        tgts = [rng.random(3).astype(np.float32) for _ in range(3)]
        path = tmp_path / "data.rec"
        write_record_file(path, vols, tgts)
        inj = FaultInjector(
            FaultPlan(events=[FaultEvent(FaultKind.RECORD_CORRUPT, step=1)])
        )
        assert inj.corrupt_record_file(path) == 1
        with pytest.raises(RecordCorruptError):
            list(RecordReader(path))
        # records 0 and 2 still readable in non-strict mode
        reader = RecordReader(path, strict=False)
        assert len(list(reader)) == 2
        assert reader.records_skipped == 1


class TestPlanValidation:
    """Feasibility checks the faultsim CLI runs before launching."""

    def test_feasible_plan_has_no_problems(self):
        plan = FaultPlan(events=[
            FaultEvent(FaultKind.RANK_CRASH, rank=1, step=3),
            FaultEvent(FaultKind.RANK_RECOVER, rank=1, step=6),
        ])
        assert plan.validate(n_ranks=4, n_steps=10) == []

    def test_rank_out_of_range(self):
        plan = FaultPlan(events=[FaultEvent(FaultKind.RANK_CRASH, rank=4, step=0)])
        (problem,) = plan.validate(n_ranks=4)
        assert "rank 4" in problem and "0..3" in problem

    def test_recovery_past_end_of_run(self):
        plan = FaultPlan(events=[
            FaultEvent(FaultKind.RANK_CRASH, rank=0, step=2),
            FaultEvent(FaultKind.SPARE_JOIN, rank=0, step=50),
        ])
        (problem,) = plan.validate(n_ranks=2, n_steps=10)
        assert "never be admitted" in problem

    def test_no_step_bound_skips_schedule_check(self):
        plan = FaultPlan(events=[FaultEvent(FaultKind.RANK_RECOVER, rank=0, step=50)])
        assert plan.validate(n_ranks=1) == []

    def test_unkeyed_kinds_ignore_rank_bound(self):
        # READ_ERROR's step is a read ordinal, not a rank — never flagged.
        plan = FaultPlan(events=[FaultEvent(FaultKind.READ_ERROR, step=999)])
        assert plan.validate(n_ranks=1, n_steps=1) == []

    def test_bad_n_ranks_rejected(self):
        with pytest.raises(ValueError, match="n_ranks"):
            FaultPlan().validate(n_ranks=0)


class TestReplicaFaults:
    """REPLICA_CRASH / REPLICA_SLOW — the serving tier's fault domain."""

    def test_sample_replica_rates_deterministic(self):
        kwargs = dict(
            n_ranks=1, n_steps=1,
            replica_crash_rate=0.1, replica_slow_rate=0.2,
            replica_slow_s=0.07, n_dispatches=100,
        )
        a = FaultPlan.sample(seed=5, **kwargs)
        b = FaultPlan.sample(seed=5, **kwargs)
        assert a.events == b.events
        crashes = a.of_kind(FaultKind.REPLICA_CRASH)
        slows = a.of_kind(FaultKind.REPLICA_SLOW)
        assert crashes and slows
        assert all(e.delay_s == 0.07 for e in slows)

    def test_sample_replica_rate_validation(self):
        with pytest.raises(ValueError, match="replica_crash_rate"):
            FaultPlan.sample(seed=0, n_ranks=1, n_steps=1,
                             replica_crash_rate=2.0, n_dispatches=5)

    def test_on_dispatch_consumes_at_ordinal(self):
        plan = FaultPlan(events=[
            FaultEvent(FaultKind.REPLICA_CRASH, step=1),
            FaultEvent(FaultKind.REPLICA_SLOW, step=2, delay_s=0.5),
        ])
        inj = FaultInjector(plan)
        assert inj.on_dispatch(0) == (False, 0.0)   # dispatch 0: clean
        assert inj.on_dispatch(1) == (True, 0.0)    # dispatch 1: crash
        assert inj.on_dispatch(1) == (False, 0.5)   # dispatch 2: slow
        assert inj.on_dispatch(0) == (False, 0.0)
        assert inj.fired[FaultKind.REPLICA_CRASH] == 1
        assert inj.fired[FaultKind.REPLICA_SLOW] == 1

    def test_on_dispatch_pinned_replica(self):
        plan = FaultPlan(events=[
            FaultEvent(FaultKind.REPLICA_CRASH, rank=2, step=0),
        ])
        inj = FaultInjector(plan)
        # Dispatch 0 goes to replica 1 — pinned event doesn't match, and
        # the dispatch counter still advances past its ordinal.
        assert inj.on_dispatch(1) == (False, 0.0)
        assert inj.on_dispatch(2) == (False, 0.0)
        assert inj.fired_total() == 0

    def test_on_dispatch_empty_plan_noop(self):
        assert FaultInjector().on_dispatch(0) == (False, 0.0)
