"""JSON round-trip contract for fault plans.

The real-process backend ships a seeded schedule across a process
boundary as JSON; these tests pin the guarantee that makes the replay
bitwise: ``from_json(to_json(plan)) == plan`` for every event field,
and documents we cannot faithfully interpret are rejected loudly.
"""

import json

import pytest

from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.faults.plan import PLAN_SCHEMA_VERSION


def sample_plan():
    return FaultPlan.sample(
        seed=11,
        n_ranks=4,
        n_steps=12,
        crash_rate=0.05,
        hang_rate=0.05,
        corrupt_rate=0.05,
        read_error_rate=0.1,
        n_reads=20,
        stage_fail_rate=0.2,
        n_stage_ops=6,
        stage_fail_repeats=3,
    )


class TestRoundTrip:
    def test_sampled_plan_survives_round_trip(self):
        plan = sample_plan()
        assert not plan.empty  # the sample actually drew events
        rebuilt = FaultPlan.from_json(plan.to_json())
        assert rebuilt == plan

    def test_every_field_round_trips(self):
        plan = FaultPlan(
            seed=3,
            events=(
                FaultEvent(FaultKind.PROC_KILL, rank=2, step=5),
                FaultEvent(FaultKind.RANK_HANG, rank=0, step=1, delay_s=0.25),
                FaultEvent(FaultKind.READ_ERROR, step=7, repeats=4),
                FaultEvent(FaultKind.RANK_RECOVER, rank=2, step=9),
            ),
        )
        rebuilt = FaultPlan.from_json(plan.to_json())
        assert rebuilt.seed == 3
        assert rebuilt.events == plan.events

    def test_empty_plan_round_trips(self):
        plan = FaultPlan(seed=42)
        rebuilt = FaultPlan.from_json(plan.to_json())
        assert rebuilt.empty and rebuilt.seed == 42

    def test_with_recovery_commutes_with_serialization(self):
        plan = FaultPlan(
            seed=1, events=(FaultEvent(FaultKind.PROC_KILL, rank=1, step=2),)
        )
        via_json = FaultPlan.from_json(plan.to_json()).with_recovery(4)
        direct = plan.with_recovery(4)
        assert via_json == direct
        assert direct.of_kind(FaultKind.RANK_RECOVER)[0].step == 6

    def test_save_and_load(self, tmp_path):
        plan = sample_plan()
        path = plan.save(tmp_path / "plans" / "p.json")
        assert path.exists()
        assert FaultPlan.load(path) == plan


class TestDocumentShape:
    def test_document_is_versioned_plain_json(self):
        doc = json.loads(sample_plan().to_json())
        assert doc["schema_version"] == PLAN_SCHEMA_VERSION
        assert isinstance(doc["seed"], int)
        for entry in doc["events"]:
            assert set(entry) == {"kind", "rank", "step", "delay_s", "repeats"}

    def test_kinds_serialize_as_stable_strings(self):
        plan = FaultPlan(
            seed=0, events=(FaultEvent(FaultKind.PROC_KILL, rank=0, step=0),)
        )
        doc = json.loads(plan.to_json())
        assert doc["events"][0]["kind"] == "proc_kill"


class TestRejection:
    def test_not_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_not_an_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")

    def test_missing_schema_version(self):
        with pytest.raises(ValueError, match="schema_version"):
            FaultPlan.from_json('{"seed": 1, "events": []}')

    def test_future_schema_version(self):
        doc = json.dumps({"schema_version": PLAN_SCHEMA_VERSION + 1, "events": []})
        with pytest.raises(ValueError, match="newer than"):
            FaultPlan.from_json(doc)

    def test_unknown_kind(self):
        doc = json.dumps(
            {
                "schema_version": PLAN_SCHEMA_VERSION,
                "seed": 0,
                "events": [{"kind": "solar_flare", "rank": 0, "step": 0}],
            }
        )
        with pytest.raises(ValueError, match="solar_flare"):
            FaultPlan.from_json(doc)

    def test_invalid_event_fields_rejected_by_event_validation(self):
        doc = json.dumps(
            {
                "schema_version": PLAN_SCHEMA_VERSION,
                "seed": 0,
                "events": [{"kind": "rank_crash", "rank": None, "step": 0}],
            }
        )
        with pytest.raises(ValueError, match="need a rank"):
            FaultPlan.from_json(doc)


class TestProcKillSemantics:
    def test_proc_kill_needs_rank(self):
        with pytest.raises(ValueError, match="need a rank"):
            FaultEvent(FaultKind.PROC_KILL)

    def test_validate_flags_out_of_range_proc_kill(self):
        plan = FaultPlan(
            seed=0, events=(FaultEvent(FaultKind.PROC_KILL, rank=7, step=0),)
        )
        problems = plan.validate(n_ranks=4)
        assert len(problems) == 1 and "rank 7" in problems[0]

    def test_with_recovery_covers_proc_kill(self):
        plan = FaultPlan(
            seed=0,
            events=(
                FaultEvent(FaultKind.RANK_CRASH, rank=0, step=1),
                FaultEvent(FaultKind.PROC_KILL, rank=1, step=2),
            ),
        ).with_recovery(3)
        recoveries = plan.of_kind(FaultKind.RANK_RECOVER)
        assert {(e.rank, e.step) for e in recoveries} == {(0, 4), (1, 5)}
