"""Tests for the TFRecord-style framing and sample encoding."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.records import (
    RecordCorruptionError,
    RecordReader,
    RecordWriter,
    decode_sample,
    encode_sample,
    masked_crc32,
    read_record_file,
    write_record_file,
)


def sample(seed=0, size=4, n_params=3):
    rng = np.random.default_rng(seed)
    vol = rng.standard_normal((size, size, size)).astype(np.float32)
    tgt = rng.random(n_params).astype(np.float32)
    return vol, tgt


class TestMaskedCRC:
    def test_deterministic(self):
        assert masked_crc32(b"hello") == masked_crc32(b"hello")

    def test_sensitive_to_content(self):
        assert masked_crc32(b"hello") != masked_crc32(b"hellp")

    def test_uint32_range(self):
        for data in (b"", b"x", b"a" * 1000):
            assert 0 <= masked_crc32(data) < 2**32


class TestSampleEncoding:
    def test_round_trip_3d(self):
        vol, tgt = sample()
        v2, t2 = decode_sample(encode_sample(vol, tgt))
        np.testing.assert_array_equal(v2, vol)
        np.testing.assert_array_equal(t2, tgt)

    def test_round_trip_4d(self):
        vol = np.random.default_rng(1).standard_normal((2, 3, 3, 3)).astype(np.float32)
        tgt = np.array([0.5], dtype=np.float32)
        v2, t2 = decode_sample(encode_sample(vol, tgt))
        np.testing.assert_array_equal(v2, vol)

    def test_dtype_coerced(self):
        vol = np.zeros((2, 2, 2), dtype=np.float64)
        tgt = np.zeros(3, dtype=np.float64)
        v2, t2 = decode_sample(encode_sample(vol, tgt))
        assert v2.dtype == np.float32 and t2.dtype == np.float32

    def test_bad_volume_rank(self):
        with pytest.raises(ValueError):
            encode_sample(np.zeros((2, 2)), np.zeros(3))

    def test_bad_target_rank(self):
        with pytest.raises(ValueError):
            encode_sample(np.zeros((2, 2, 2)), np.zeros((3, 1)))

    def test_bad_magic(self):
        with pytest.raises(RecordCorruptionError):
            decode_sample(b"XXXX" + b"\x00" * 20)

    def test_truncated_payload(self):
        payload = encode_sample(*sample())
        with pytest.raises(RecordCorruptionError):
            decode_sample(payload[:-4])

    @given(
        size=st.integers(min_value=1, max_value=8),
        n_params=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_round_trip(self, size, n_params, seed):
        vol, tgt = sample(seed, size, n_params)
        v2, t2 = decode_sample(encode_sample(vol, tgt))
        np.testing.assert_array_equal(v2, vol)
        np.testing.assert_array_equal(t2, tgt)


class TestRecordFiles:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "test.rec"
        vols = [sample(i)[0] for i in range(5)]
        tgts = [sample(i)[1] for i in range(5)]
        assert write_record_file(path, vols, tgts) == 5
        out = read_record_file(path)
        assert len(out) == 5
        for (v, t), vo, to in zip(out, vols, tgts):
            np.testing.assert_array_equal(v, vo)
            np.testing.assert_array_equal(t, to)

    def test_empty_file_iterates_empty(self, tmp_path):
        path = tmp_path / "empty.rec"
        with RecordWriter(path):
            pass
        assert read_record_file(path) == []

    def test_mismatched_lengths_raise(self, tmp_path):
        with pytest.raises(ValueError):
            write_record_file(tmp_path / "x.rec", [np.zeros((2, 2, 2))], [])

    def test_corrupted_payload_detected(self, tmp_path):
        path = tmp_path / "corrupt.rec"
        write_record_file(path, [sample()[0]], [sample()[1]])
        data = bytearray(path.read_bytes())
        data[30] ^= 0xFF  # flip a payload byte
        path.write_bytes(bytes(data))
        with pytest.raises(RecordCorruptionError, match="CRC"):
            read_record_file(path)

    def test_corrupted_length_detected(self, tmp_path):
        path = tmp_path / "corrupt2.rec"
        write_record_file(path, [sample()[0]], [sample()[1]])
        data = bytearray(path.read_bytes())
        data[0] ^= 0x01  # flip a length byte
        path.write_bytes(bytes(data))
        with pytest.raises(RecordCorruptionError):
            read_record_file(path)

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "trunc.rec"
        write_record_file(path, [sample()[0]], [sample()[1]])
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(RecordCorruptionError, match="truncated"):
            read_record_file(path)

    def test_verification_can_be_disabled(self, tmp_path):
        path = tmp_path / "noverify.rec"
        write_record_file(path, [sample()[0]], [sample()[1]])
        data = bytearray(path.read_bytes())
        # corrupt the payload CRC itself (not the payload)
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert len(list(RecordReader(path, verify=False))) == 1
        with pytest.raises(RecordCorruptionError):
            list(RecordReader(path, verify=True))

    def test_framing_layout(self, tmp_path):
        """First 8 bytes are the little-endian payload length."""
        path = tmp_path / "layout.rec"
        payload = encode_sample(*sample())
        with RecordWriter(path) as w:
            w.write(payload)
        raw = path.read_bytes()
        (length,) = struct.unpack("<Q", raw[:8])
        assert length == len(payload)
        assert len(raw) == 8 + 4 + length + 4

    def test_writer_context_manager_closes(self, tmp_path):
        path = tmp_path / "cm.rec"
        with RecordWriter(path) as w:
            w.write_sample(*sample())
        assert w._fh.closed
        assert w.records_written == 1


class TestCorruptionEdges:
    """Byte-level failure modes the staging tier must be able to detect:
    every distinct way a record file can go bad on a storage tier maps
    to :class:`RecordCorruptionError`, never to garbage data."""

    def write_one(self, tmp_path):
        path = tmp_path / "edge.rec"
        write_record_file(path, [sample()[0]], [sample()[1]])
        return path, path.read_bytes()

    def test_truncated_mid_length_header(self, tmp_path):
        path, raw = self.write_one(tmp_path)
        path.write_bytes(raw[:4])  # half of the 8-byte length field
        with pytest.raises(RecordCorruptionError, match="truncated"):
            read_record_file(path)

    def test_truncated_mid_length_crc(self, tmp_path):
        path, raw = self.write_one(tmp_path)
        path.write_bytes(raw[:10])  # length intact, CRC cut short
        with pytest.raises(RecordCorruptionError, match="truncated"):
            read_record_file(path)

    def test_truncated_mid_payload(self, tmp_path):
        path, raw = self.write_one(tmp_path)
        (length,) = struct.unpack("<Q", raw[:8])
        path.write_bytes(raw[: 12 + length // 2])
        with pytest.raises(RecordCorruptionError, match="truncated"):
            read_record_file(path)

    def test_flipped_length_crc_byte(self, tmp_path):
        path, raw = self.write_one(tmp_path)
        data = bytearray(raw)
        data[9] ^= 0x40  # inside the masked length-CRC field (bytes 8-11)
        path.write_bytes(bytes(data))
        with pytest.raises(RecordCorruptionError, match="CRC"):
            read_record_file(path)

    def test_flipped_payload_crc_byte(self, tmp_path):
        path, raw = self.write_one(tmp_path)
        data = bytearray(raw)
        data[-2] ^= 0x40  # inside the trailing masked payload-CRC field
        path.write_bytes(bytes(data))
        with pytest.raises(RecordCorruptionError, match="CRC"):
            read_record_file(path)

    def test_second_record_corrupt_first_still_read(self, tmp_path):
        path = tmp_path / "two.rec"
        write_record_file(
            path, [sample(0)[0], sample(1)[0]], [sample(0)[1], sample(1)[1]]
        )
        raw = bytearray(path.read_bytes())
        (length,) = struct.unpack("<Q", raw[:8])
        raw[16 + length + 20] ^= 0xFF  # a payload byte of record 2
        path.write_bytes(bytes(raw))
        reader = RecordReader(path)
        first = next(iter(reader))
        np.testing.assert_array_equal(decode_sample(first)[0], sample(0)[0])
        with pytest.raises(RecordCorruptionError):
            list(RecordReader(path))
