"""Tests for the filesystem-model read hook (model -> real pipeline glue)."""

import time

import numpy as np
import pytest

from repro.io.dataset import RecordDataset, write_dataset
from repro.io.filesystem import FilesystemSpec, cori_lustre, make_read_hook
from repro.io.pipeline import PrefetchPipeline


def fast_spec(mbps=100.0):
    return FilesystemSpec(
        name="t", n_targets=4, per_target_bandwidth_GBps=1.0,
        stripe_targets=4, stripe_size_MB=1.0, client_base_MBps=mbps,
    )


class TestMakeReadHook:
    def test_sleeps_for_modeled_time(self):
        hook = make_read_hook(fast_spec(mbps=1.0), n_nodes=1)  # 1 MB/s
        t0 = time.perf_counter()
        hook("x", 30_000)  # 30 KB at 1 MB/s = 30 ms
        elapsed = time.perf_counter() - t0
        assert 0.02 < elapsed < 0.2

    def test_time_scale(self):
        hook = make_read_hook(fast_spec(mbps=1.0), n_nodes=1, time_scale=0.0)
        t0 = time.perf_counter()
        hook("x", 10_000_000)
        assert time.perf_counter() - t0 < 0.01

    def test_contention_slows_reads(self):
        spec = cori_lustre()
        base = spec.read_time_s(8e6, 1)
        contended = spec.read_time_s(8e6, 4096)
        assert contended > 2 * base

    def test_validation(self):
        with pytest.raises(ValueError):
            make_read_hook(fast_spec(), n_nodes=0)
        with pytest.raises(ValueError):
            make_read_hook(fast_spec(), n_nodes=1, time_scale=-1.0)

    def test_end_to_end_with_pipeline(self, tmp_path):
        """A modeled slow filesystem visibly stalls a real epoch."""
        rng = np.random.default_rng(0)
        vols = rng.standard_normal((12, 1, 4, 4, 4)).astype(np.float32)
        tgts = rng.random((12, 3)).astype(np.float32)
        paths = write_dataset(tmp_path, vols, tgts, samples_per_file=4)

        def epoch_time(spec_mbps):
            hook = make_read_hook(fast_spec(mbps=spec_mbps), n_nodes=1)
            ds = RecordDataset(paths, read_hook=hook)
            pipe = PrefetchPipeline(ds, n_io_threads=1, buffer_size=2)
            t0 = time.perf_counter()
            for _ in pipe.batches(2, rng=np.random.default_rng(1)):
                pass
            return time.perf_counter() - t0

        fast = epoch_time(1000.0)
        slow = epoch_time(0.05)  # 50 KB/s: ~3KB files take ~60ms each
        assert slow > fast + 0.05
