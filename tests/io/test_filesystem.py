"""Tests for the filesystem models and Equation 1."""

import numpy as np
import pytest

from repro.io.filesystem import (
    PAPER_SAMPLE_MB,
    FilesystemSpec,
    cori_datawarp,
    cori_lustre,
    pizdaint_lustre,
    required_bandwidth_per_node,
)


class TestEquation1:
    def test_paper_worked_example(self):
        """b=1, S=8 MB, t=0.129 s -> 62 MB/s/node."""
        bw = required_bandwidth_per_node(1, PAPER_SAMPLE_MB, 0.129)
        assert bw == pytest.approx(62.0, rel=0.01)

    def test_scales_with_batch(self):
        assert required_bandwidth_per_node(4) == pytest.approx(
            4 * required_bandwidth_per_node(1)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            required_bandwidth_per_node(0)
        with pytest.raises(ValueError):
            required_bandwidth_per_node(1, -1.0)
        with pytest.raises(ValueError):
            required_bandwidth_per_node(1, 8.0, 0.0)


class TestPresets:
    def test_cori_lustre_hardware_numbers(self):
        fs = cori_lustre()
        assert fs.n_targets == 248
        assert fs.aggregate_bandwidth_GBps == pytest.approx(700.0)
        assert fs.stripe_targets == 64
        assert fs.stripe_size_MB == 1.0

    def test_cori_datawarp_hardware_numbers(self):
        fs = cori_datawarp()
        assert fs.n_targets == 288
        assert fs.aggregate_bandwidth_GBps == pytest.approx(1700.0)
        assert fs.stripe_targets == 125
        assert fs.stripe_size_MB == 8.0

    def test_pizdaint_hardware_numbers(self):
        fs = pizdaint_lustre()
        assert fs.n_targets == 40
        assert fs.aggregate_bandwidth_GBps == pytest.approx(112.0)
        assert fs.stripe_targets == 16

    def test_ost_feeds_46_nodes(self):
        """Paper: a nominal 2.8 GB/s OST can feed 46 nodes at 62 MB/s."""
        fs = cori_lustre()
        assert fs.nodes_fed_per_target(62.0) == pytest.approx(45.5, rel=0.02)


class TestScalingBehaviour:
    REQUIRED = 62.0  # MB/s/node, Eq. 1

    def test_lustre_single_node_unconstrained(self):
        """One reader comfortably exceeds Equation 1's 62 MB/s —
        the single-node baseline is never I/O bound."""
        assert cori_lustre().per_node_bandwidth_MBps(1) > self.REQUIRED

    def test_lustre_feeds_128_nodes_marginally(self):
        """At 128 nodes Lustre delivers ~45 MB/s/node (the paper's
        measured 179 ms step), below the 62 MB/s needed."""
        bw = cori_lustre().per_node_bandwidth_MBps(128)
        assert bw == pytest.approx(44.7, rel=0.05)
        assert bw < self.REQUIRED

    def test_lustre_1024_matches_paper_knee(self):
        """~36 MB/s/node at 1024 -> 222 ms steps -> <58% efficiency."""
        bw = cori_lustre().per_node_bandwidth_MBps(1024)
        assert bw == pytest.approx(35.9, rel=0.05)

    def test_lustre_collapses_at_scale(self):
        fs = cori_lustre()
        assert fs.per_node_bandwidth_MBps(8192) < 10.0

    def test_datawarp_feeds_8192_nodes(self):
        """DataWarp's usable bandwidth exceeds 8192 nodes' demand."""
        fs = cori_datawarp()
        assert fs.per_node_bandwidth_MBps(8192) > 47.0  # demand at 168 ms steps

    def test_datawarp_beats_lustre_everywhere(self):
        bb, lustre = cori_datawarp(), cori_lustre()
        for n in (1, 128, 1024, 8192):
            assert bb.per_node_bandwidth_MBps(n) > lustre.per_node_bandwidth_MBps(n)

    def test_pizdaint_44pct_at_512(self):
        """Piz Daint Lustre at 512 nodes delivers ~44% of the single-node
        demand (44.7 MB/s for a 179 ms GPU step)."""
        fs = pizdaint_lustre()
        demand = required_bandwidth_per_node(1, 8.0, 0.179)
        eff = fs.per_node_bandwidth_MBps(512) / demand
        assert 0.35 < eff < 0.55

    def test_per_node_bandwidth_monotone_in_nodes(self):
        fs = cori_lustre()
        bws = [fs.per_node_bandwidth_MBps(n) for n in (1, 64, 512, 4096)]
        assert all(a >= b for a, b in zip(bws, bws[1:]))


class TestReadTime:
    def test_deterministic_without_variability(self):
        fs = FilesystemSpec(
            name="t", n_targets=4, per_target_bandwidth_GBps=1.0,
            stripe_targets=4, stripe_size_MB=1.0, client_base_MBps=100.0,
        )
        t = fs.read_time_s(8e6, 1)
        assert t == pytest.approx(8e6 / 100e6)

    def test_variability_samples_differ(self):
        fs = cori_lustre()
        times = {fs.read_time_s(8e6, 128, rng=np.random.default_rng(s)) for s in range(5)}
        assert len(times) == 5

    def test_variability_mean_near_nominal(self):
        fs = cori_lustre()
        rng = np.random.default_rng(0)
        nominal = 8e6 / (fs.per_node_bandwidth_MBps(128) * 1e6)
        times = [fs.read_time_s(8e6, 128, rng=rng) for _ in range(500)]
        # lognormal with mean 1 on bandwidth -> harmonic-ish mean on time;
        # just require same order of magnitude and positive skew
        assert np.median(times) == pytest.approx(nominal, rel=0.3)
        assert np.mean(times) >= np.median(times) * 0.9

    def test_no_rng_falls_back_to_seeded_default(self):
        """rng=None must mean the spec's own derived stream, not the
        process-global NumPy RNG: two fresh calls draw the same value,
        and specs with different names draw different ones."""
        fs = cori_lustre()
        assert fs.read_time_s(8e6, 128) == fs.read_time_s(8e6, 128)
        other = cori_datawarp()
        assert fs.read_time_s(8e6, 128) != other.read_time_s(8e6, 128)

    def test_default_rng_isolated_from_global_state(self):
        fs = cori_lustre()
        np.random.seed(12345)
        a = fs.read_time_s(8e6, 128)
        np.random.seed(54321)
        b = fs.read_time_s(8e6, 128)
        assert a == b

    def test_rng_accepts_seed_or_generator(self):
        fs = cori_lustre()
        a = fs.read_time_s(8e6, 128, rng=7)
        b = fs.read_time_s(8e6, 128, rng=np.random.default_rng(7))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            FilesystemSpec("x", 0, 1.0, 1, 1.0, 10.0)
        with pytest.raises(ValueError):
            FilesystemSpec("x", 4, 1.0, 8, 1.0, 10.0)  # stripe > targets
        with pytest.raises(ValueError):
            FilesystemSpec("x", 4, 1.0, 2, 1.0, 10.0, efficiency=0.0)
        with pytest.raises(ValueError):
            FilesystemSpec("x", 4, 1.0, 2, 1.0, 10.0, variability_sigma=-1)
        with pytest.raises(ValueError):
            FilesystemSpec("x", 4, 1.0, 2, 1.0, 10.0, contention_per_doubling=-0.1)
        with pytest.raises(ValueError):
            cori_lustre().per_node_bandwidth_MBps(0)
        with pytest.raises(ValueError):
            cori_lustre().nodes_fed_per_target(0.0)
        with pytest.raises(ValueError):
            cori_lustre().max_nodes_fed(-1.0)
