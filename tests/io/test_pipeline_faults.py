"""Resilience tests for the I/O path: retries, skips, error propagation.

Covers the fault-tolerance contract of the read stack: injected read
errors are retried with backoff, corrupt records are skipped and
counted (never crash the trainer), and a fatal reader exception inside
the prefetch pipeline surfaces in the consuming thread within one
``next()`` call without leaking daemon threads.
"""

import threading
import time

import numpy as np
import pytest

from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    InjectedReadError,
)
from repro.io.dataset import RecordDataset, write_dataset
from repro.io.pipeline import PrefetchPipeline
from repro.io.records import RecordCorruptError
from repro.utils.retry import RetryPolicy, call_with_retry


def make_files(tmp_path, n=24, size=4, samples_per_file=4):
    rng = np.random.default_rng(0)
    vols = rng.standard_normal((n, size, size, size)).astype(np.float32)
    tgts = rng.random((n, 3)).astype(np.float32)
    return write_dataset(tmp_path, vols, tgts, samples_per_file=samples_per_file)


class TestRetryPolicy:
    def test_backoff_schedule(self):
        p = RetryPolicy(max_attempts=4, base_delay_s=0.01, multiplier=2.0, max_delay_s=0.03)
        assert p.delay(0) == pytest.approx(0.01)
        assert p.delay(1) == pytest.approx(0.02)
        assert p.delay(2) == pytest.approx(0.03)  # capped

    def test_succeeds_after_transient_failures(self):
        sleeps = []
        calls = []

        def fn(attempt):
            calls.append(attempt)
            if attempt < 2:
                raise IOError("transient")
            return "ok"

        out = call_with_retry(
            fn, RetryPolicy(max_attempts=3, base_delay_s=0.5), sleep=sleeps.append
        )
        assert out == "ok"
        assert calls == [0, 1, 2]
        assert sleeps == [0.5, 1.0]  # exponential backoff

    def test_exhaustion_reraises_last(self):
        with pytest.raises(IOError, match="always"):
            call_with_retry(
                lambda a: (_ for _ in ()).throw(IOError("always")),
                RetryPolicy(max_attempts=2, base_delay_s=0.0),
            )

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def fn(attempt):
            calls.append(attempt)
            raise RecordCorruptError("rot", path="x")

        with pytest.raises(RecordCorruptError):
            call_with_retry(
                fn,
                RetryPolicy(max_attempts=5, base_delay_s=0.0),
                retryable=(IOError,),
                non_retryable=(RecordCorruptError,),
            )
        assert calls == [0]  # corruption is not retried

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestDatasetRetry:
    def test_injected_read_error_is_retried(self, tmp_path):
        paths = make_files(tmp_path)
        inj = FaultInjector(
            FaultPlan(events=[FaultEvent(FaultKind.READ_ERROR, step=2, repeats=2)])
        )
        ds = RecordDataset(
            paths,
            read_hook=inj.read_hook(),
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0),
        )
        batches = list(ds.batches(4, rng=0, shuffle=False))
        assert sum(len(b[0]) for b in batches) == 24  # nothing lost
        assert ds.read_retries == 2
        assert inj.fired[FaultKind.READ_ERROR] == 2

    def test_persistent_error_exhausts_retries(self, tmp_path):
        paths = make_files(tmp_path)
        inj = FaultInjector(
            FaultPlan(events=[FaultEvent(FaultKind.READ_ERROR, step=0, repeats=10)])
        )
        ds = RecordDataset(
            paths,
            read_hook=inj.read_hook(),
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0),
        )
        with pytest.raises(InjectedReadError):
            list(ds.batches(4, rng=0, shuffle=False))

    def test_no_retry_by_default(self, tmp_path):
        paths = make_files(tmp_path)
        inj = FaultInjector(
            FaultPlan(events=[FaultEvent(FaultKind.READ_ERROR, step=0)])
        )
        ds = RecordDataset(paths, read_hook=inj.read_hook())
        with pytest.raises(InjectedReadError):
            list(ds.batches(4, rng=0, shuffle=False))

    def test_corrupt_record_skipped_not_retried(self, tmp_path):
        paths = make_files(tmp_path)
        inj = FaultInjector(
            FaultPlan(events=[FaultEvent(FaultKind.RECORD_CORRUPT, step=1)])
        )
        inj.corrupt_record_file(paths[0])
        ds = RecordDataset(
            paths, retry=RetryPolicy(max_attempts=2, base_delay_s=0.0), strict=False
        )
        assert len(ds) == 23  # the corrupt record is not even counted
        total = sum(len(b[0]) for b in ds.batches(4, rng=0, shuffle=False))
        assert total == 23
        assert ds.read_retries == 0  # corruption is not transient

    def test_strict_dataset_raises_typed_error(self, tmp_path):
        paths = make_files(tmp_path)
        FaultInjector(
            FaultPlan(events=[FaultEvent(FaultKind.RECORD_CORRUPT, step=0)])
        ).corrupt_record_file(paths[1])
        with pytest.raises(RecordCorruptError) as ei:
            RecordDataset(paths)  # strict indexing hits the bad record
        assert ei.value.path == paths[1]
        assert ei.value.record_index == 0
        assert "CRC" in ei.value.reason

    def test_shard_inherits_policy(self, tmp_path):
        paths = make_files(tmp_path)
        ds = RecordDataset(paths, retry=RetryPolicy(max_attempts=5), strict=False)
        shard = ds.shard(1, 2)
        assert shard.retry == ds.retry
        assert shard.strict is False


class TestPipelineFaultPropagation:
    def test_error_surfaces_within_one_next(self, tmp_path):
        paths = make_files(tmp_path)
        # Both producers' first read fails (reads 0 and 1), so no batch
        # can ever be produced.
        inj = FaultInjector(
            FaultPlan(
                events=[
                    FaultEvent(FaultKind.READ_ERROR, step=0, repeats=100),
                    FaultEvent(FaultKind.READ_ERROR, step=1, repeats=100),
                ]
            )
        )
        ds = RecordDataset(paths, read_hook=inj.read_hook())
        pipe = PrefetchPipeline(ds, n_io_threads=2, buffer_size=4)
        it = pipe.batches(4, rng=0)
        # The consumer must see the failure on its first next() call.
        with pytest.raises(InjectedReadError):
            next(it)

    def test_error_does_not_leak_threads(self, tmp_path):
        paths = make_files(tmp_path)
        inj = FaultInjector(
            FaultPlan(events=[FaultEvent(FaultKind.READ_ERROR, step=3, repeats=100)])
        )
        ds = RecordDataset(paths, read_hook=inj.read_hook())
        before = threading.active_count()
        pipe = PrefetchPipeline(ds, n_io_threads=3, buffer_size=2)
        with pytest.raises(InjectedReadError):
            for _ in pipe.batches(4, rng=0):
                pass
        deadline = time.monotonic() + 5.0
        while threading.active_count() > before and time.monotonic() < deadline:
            time.sleep(0.01)
        assert threading.active_count() == before
        assert pipe.stats.producer_errors >= 1

    def test_error_surfaces_promptly_even_with_buffered_batches(self, tmp_path):
        paths = make_files(tmp_path)
        inj = FaultInjector(
            FaultPlan(events=[FaultEvent(FaultKind.READ_ERROR, step=4, repeats=100)])
        )
        ds = RecordDataset(paths, read_hook=inj.read_hook())
        pipe = PrefetchPipeline(ds, n_io_threads=1, buffer_size=2)
        it = pipe.batches(4, rng=0)
        consumed = 0
        with pytest.raises(InjectedReadError):
            for _ in it:
                consumed += 1
        # 6 files: error at the 5th read; at most the buffered batches
        # plus the in-flight one are delivered before the raise.
        assert consumed <= 4

    def test_pipeline_counts_retries_and_skips(self, tmp_path):
        paths = make_files(tmp_path)
        inj = FaultInjector(
            FaultPlan(
                events=[
                    FaultEvent(FaultKind.READ_ERROR, step=2),
                    FaultEvent(FaultKind.RECORD_CORRUPT, step=2),
                ]
            )
        )
        inj.corrupt_record_file(paths[3])
        ds = RecordDataset(
            paths,
            read_hook=inj.read_hook(),
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0),
            strict=False,
        )
        pipe = PrefetchPipeline(ds, n_io_threads=2, buffer_size=4)
        total = sum(len(b[0]) for b in pipe.batches(4, rng=0))
        assert total == 23  # one corrupt record dropped, nothing crashed
        assert pipe.stats.read_retries >= 1
        # Each of the two I/O threads replays the stream and skips the
        # corrupt record once.
        assert pipe.stats.records_skipped == 2
        assert pipe.stats.producer_errors == 0

    def test_fault_free_pipeline_unchanged(self, tmp_path):
        paths = make_files(tmp_path)
        ds = RecordDataset(paths)
        pipe = PrefetchPipeline(ds, n_io_threads=2, buffer_size=4)
        total = sum(len(b[0]) for b in pipe.batches(4, rng=0))
        assert total == 24
        assert pipe.stats.read_retries == 0
        assert pipe.stats.records_skipped == 0
        assert pipe.stats.producer_errors == 0

    def test_read_delay_fault_just_slows(self, tmp_path):
        paths = make_files(tmp_path)
        inj = FaultInjector(
            FaultPlan(events=[FaultEvent(FaultKind.READ_DELAY, step=1, delay_s=0.05)])
        )
        ds = RecordDataset(paths, read_hook=inj.read_hook())
        total = sum(len(b[0]) for b in ds.batches(4, rng=0, shuffle=False))
        assert total == 24
        assert inj.fired[FaultKind.READ_DELAY] == 1
