"""Tests for the resilient burst-buffer staging tier."""

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.io.dataset import RecordDataset, write_dataset
from repro.io.pipeline import PrefetchPipeline
from repro.io.staging import (
    BreakerState,
    CircuitBreaker,
    StagingConfig,
    StagingManager,
)


@pytest.fixture()
def record_files(tmp_path):
    rng = np.random.default_rng(0)
    vols = rng.standard_normal((12, 1, 4, 4, 4)).astype(np.float32)
    tgts = rng.random((12, 3)).astype(np.float32)
    return write_dataset(tmp_path / "src", vols, tgts, samples_per_file=4)


def make_manager(tmp_path, name="bb", injector=None, **cfg):
    return StagingManager(
        tmp_path / name,
        config=StagingConfig(**cfg),
        seed=7,
        injector=injector,
    )


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        b = CircuitBreaker("t", threshold=3, reset_s=10.0)
        b.record_failure(0.0)
        b.record_failure(0.0)
        assert b.state is BreakerState.CLOSED and b.allow(0.0)
        b.record_failure(0.0)
        assert b.state is BreakerState.OPEN and b.trips == 1
        assert not b.allow(5.0)

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker("t", threshold=2, reset_s=10.0)
        b.record_failure(0.0)
        b.record_success()
        b.record_failure(0.0)
        assert b.state is BreakerState.CLOSED

    def test_half_open_after_cooldown_then_close_on_success(self):
        b = CircuitBreaker("t", threshold=1, reset_s=5.0)
        b.record_failure(0.0)
        assert b.state is BreakerState.OPEN
        assert b.allow(6.0)  # past cooldown: admits one probe
        assert b.state is BreakerState.HALF_OPEN and b.half_opens == 1
        b.record_success()
        assert b.state is BreakerState.CLOSED

    def test_half_open_probe_failure_retrips(self):
        b = CircuitBreaker("t", threshold=3, reset_s=5.0)
        for _ in range(3):
            b.record_failure(0.0)
        assert b.allow(6.0)
        b.record_failure(6.0)  # probe failed: immediate re-trip
        assert b.state is BreakerState.OPEN and b.trips == 2
        assert not b.allow(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("t", threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("t", reset_s=-1.0)


class TestStageIn:
    def test_stage_and_bitwise_read(self, tmp_path, record_files):
        mgr = make_manager(tmp_path)
        assert mgr.stage_all(record_files) == len(record_files)
        assert all(mgr.is_staged(p) for p in record_files)
        staged = RecordDataset(record_files, staging=mgr).to_arrays()
        direct = RecordDataset(record_files).to_arrays()
        np.testing.assert_array_equal(staged[0], direct[0])
        np.testing.assert_array_equal(staged[1], direct[1])
        assert mgr.stats.bb_reads == len(record_files)
        assert mgr.stats.fallback_reads == 0

    def test_transient_stage_fail_retried(self, tmp_path, record_files):
        inj = FaultInjector(
            FaultPlan(seed=0, events=(FaultEvent(FaultKind.STAGE_FAIL, step=0),))
        )
        mgr = make_manager(tmp_path, injector=inj)
        assert mgr.stage(record_files[0])
        assert mgr.stats.stage_retries == 1
        assert mgr.stats.stage_failures == 0

    def test_persistent_stage_fail_degrades_to_backing(self, tmp_path, record_files):
        inj = FaultInjector(
            FaultPlan(
                seed=0,
                events=(FaultEvent(FaultKind.STAGE_FAIL, step=0, repeats=10),),
            )
        )
        mgr = make_manager(tmp_path, injector=inj, stage_on_miss=False)
        assert not mgr.stage(record_files[0])
        assert mgr.stats.stage_failures == 1
        # The file is still readable — served degraded from backing.
        res = mgr.read(record_files[0])
        assert res.tier == "backing" and res.path == record_files[0]
        assert mgr.stats.fallback_reads == 1

    def test_capacity_lru_eviction(self, tmp_path, record_files):
        nbytes = record_files[0].stat().st_size
        mgr = make_manager(tmp_path, capacity_bytes=2 * nbytes + 1)
        mgr.stage_all(record_files)  # 3 files, room for 2
        assert mgr.staged_bytes <= 2 * nbytes + 1
        assert not mgr.is_staged(record_files[0])  # oldest evicted
        assert mgr.stats.capacity_evictions == 1


class TestReadLadder:
    def test_miss_stages_on_demand(self, tmp_path, record_files):
        mgr = make_manager(tmp_path)
        res = mgr.read(record_files[0])
        assert res.tier == "bb" and mgr.is_staged(record_files[0])

    def test_bb_evict_then_restage(self, tmp_path, record_files):
        inj = FaultInjector(
            FaultPlan(seed=0, events=(FaultEvent(FaultKind.BB_EVICT, step=1),))
        )
        mgr = make_manager(tmp_path, injector=inj)
        mgr.stage_all(record_files)
        mgr.read(record_files[0])  # read 0: fine
        res = mgr.read(record_files[1])  # read 1: allocation evicted first
        assert mgr.stats.evictions == 1
        # stage_on_miss restaged the file being read.
        assert res.tier == "bb"
        assert mgr.stats.stage_ins == len(record_files) + 1

    def test_target_slow_triggers_hedge(self, tmp_path, record_files):
        inj = FaultInjector(
            FaultPlan(
                seed=0,
                events=(FaultEvent(FaultKind.TARGET_SLOW, step=0, delay_s=0.5),),
            )
        )
        mgr = make_manager(tmp_path, injector=inj, hedge_budget_s=0.05)
        mgr.stage_all(record_files)
        res = mgr.read(record_files[0])
        assert mgr.stats.hedged_reads == 1
        assert mgr.stats.hedge_wins == 1  # zero-latency backing model wins
        assert res.tier == "hedge" and res.path == record_files[0]

    def test_repeated_slow_target_trips_breaker_then_half_opens(
        self, tmp_path, record_files
    ):
        path = record_files[0]
        events = tuple(
            FaultEvent(FaultKind.TARGET_SLOW, step=i, delay_s=0.5) for i in range(2)
        )
        inj = FaultInjector(FaultPlan(seed=0, events=events))
        mgr = make_manager(
            tmp_path,
            injector=inj,
            hedge_budget_s=0.05,
            breaker_threshold=2,
            breaker_reset_s=0.4,
        )
        mgr.stage(path)
        target = mgr.target_of(path)
        mgr.read(path)
        assert mgr.breaker(target).state is BreakerState.CLOSED
        mgr.read(path)  # second over-budget read trips the breaker
        assert mgr.breaker(target).state is BreakerState.OPEN
        assert mgr.stats.breaker_trips == 1
        # While OPEN (within cooldown) reads fall back to backing.
        res = mgr.read(path)
        assert res.tier == "backing" and mgr.stats.fallback_reads == 1
        # The hedged reads advanced the virtual clock 0.05s each; push
        # past the cooldown and the breaker half-opens, probes, closes.
        mgr._advance(0.5)
        res = mgr.read(path)
        assert res.tier == "bb"
        assert mgr.stats.breaker_half_opens == 1
        assert mgr.breaker(target).state is BreakerState.CLOSED

    def test_read_never_raises_for_tier_trouble(self, tmp_path, record_files):
        events = tuple(
            FaultEvent(FaultKind.STAGE_FAIL, step=i, repeats=10) for i in range(20)
        ) + tuple(FaultEvent(FaultKind.BB_EVICT, step=i) for i in range(10))
        inj = FaultInjector(FaultPlan(seed=0, events=events))
        mgr = make_manager(tmp_path, injector=inj)
        for path in record_files * 2:
            res = mgr.read(path)
            assert res.path.exists()
        assert mgr.stats.fallback_reads > 0


class TestQuarantine:
    def corrupt_bb_copy(self, mgr, source):
        entry = mgr._staged[source]
        data = bytearray(entry.path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        entry.path.write_bytes(bytes(data))

    def test_corrupt_staged_copy_quarantined_and_restaged(
        self, tmp_path, record_files
    ):
        mgr = make_manager(tmp_path)
        mgr.stage_all(record_files)
        self.corrupt_bb_copy(mgr, record_files[0])
        ds = RecordDataset(record_files, staging=mgr)  # strict!
        staged = ds.to_arrays()
        direct = RecordDataset(record_files).to_arrays()
        np.testing.assert_array_equal(staged[0], direct[0])
        assert mgr.stats.quarantined == 1
        assert mgr.stats.restages == 1
        assert ds.records_skipped == 0
        assert (mgr.quarantine_dir.exists()
                and len(list(mgr.quarantine_dir.iterdir())) == 1)

    def test_nonstrict_corrupt_bb_copy_also_healed(self, tmp_path, record_files):
        mgr = make_manager(tmp_path)
        mgr.stage_all(record_files)
        self.corrupt_bb_copy(mgr, record_files[0])
        ds = RecordDataset(record_files, strict=False, staging=mgr)
        x, y = ds.to_arrays()
        assert len(x) == 12  # nothing lost: the source was clean
        assert ds.records_skipped == 0
        assert mgr.stats.quarantined == 1


class TestDeterminism:
    def run_once(self, tmp_path, record_files, tag):
        plan = FaultPlan.sample(
            5, 1, 0,
            stage_fail_rate=0.3, n_stage_ops=30,
            target_slow_rate=0.3, target_slow_s=0.2,
            bb_evict_rate=0.1, n_staged_reads=30,
        )
        mgr = StagingManager(
            tmp_path / f"bb-{tag}",
            config=StagingConfig(
                hedge_budget_s=0.05, breaker_threshold=2, breaker_reset_s=0.5
            ),
            seed=9,
            injector=FaultInjector(plan),
        )
        mgr.stage_all(record_files)
        ds = RecordDataset(record_files, strict=False, staging=mgr)
        pipe = PrefetchPipeline(ds, n_io_threads=1, buffer_size=4)
        batches = [
            (x.copy(), y.copy())
            for x, y in pipe.batches(2, rng=np.random.default_rng(3))
        ]
        return mgr, batches

    def test_same_seed_same_decisions_and_data(self, tmp_path, record_files):
        mgr_a, batches_a = self.run_once(tmp_path, record_files, "a")
        mgr_b, batches_b = self.run_once(tmp_path, record_files, "b")
        assert mgr_a.events == mgr_b.events
        assert mgr_a.stats.as_dict() == mgr_b.stats.as_dict()
        assert len(batches_a) == len(batches_b)
        for (xa, ya), (xb, yb) in zip(batches_a, batches_b):
            np.testing.assert_array_equal(xa, xb)
            np.testing.assert_array_equal(ya, yb)

    def test_virtual_clock_never_sleeps_by_default(self, tmp_path, record_files):
        import time

        mgr = make_manager(tmp_path)
        t0 = time.perf_counter()
        mgr._advance(100.0)
        assert time.perf_counter() - t0 < 0.5
        assert mgr.clock_s == 100.0


class TestPipelineIntegration:
    def test_staging_counters_reach_pipeline_stats(self, tmp_path, record_files):
        events = (
            FaultEvent(FaultKind.TARGET_SLOW, step=0, delay_s=0.5),
            FaultEvent(FaultKind.STAGE_FAIL, step=1),
        )
        inj = FaultInjector(FaultPlan(seed=0, events=events))
        mgr = make_manager(tmp_path, injector=inj, hedge_budget_s=0.05)
        ds = RecordDataset(record_files, strict=False, staging=mgr)
        pipe = PrefetchPipeline(ds, n_io_threads=1, buffer_size=4)
        for _ in pipe.batches(2, rng=np.random.default_rng(1)):
            pass
        assert pipe.stats.hedged_reads == 1
        assert pipe.stats.stage_retries == 1
        assert pipe.stats.degraded_total() >= 2

    def test_shard_shares_staging_manager(self, tmp_path, record_files):
        mgr = make_manager(tmp_path)
        ds = RecordDataset(record_files, staging=mgr)
        shard = ds.shard(0, 2)
        assert shard.staging is mgr
        shard.to_arrays()
        assert mgr.stats.bb_reads > 0


class TestFaultPlanSampling:
    def test_sample_draws_storage_kinds(self):
        plan = FaultPlan.sample(
            3, 1, 0,
            stage_fail_rate=0.5, n_stage_ops=40, stage_fail_repeats=2,
            target_slow_rate=0.5, bb_evict_rate=0.2, n_staged_reads=40,
        )
        kinds = {e.kind for e in plan.events}
        assert FaultKind.STAGE_FAIL in kinds
        assert FaultKind.TARGET_SLOW in kinds
        assert FaultKind.BB_EVICT in kinds
        assert all(
            e.repeats == 2 for e in plan.of_kind(FaultKind.STAGE_FAIL)
        )

    def test_sample_validation(self):
        with pytest.raises(ValueError, match="stage_fail_rate"):
            FaultPlan.sample(0, 1, 0, stage_fail_rate=1.5)
        with pytest.raises(ValueError, match="stage_fail_repeats"):
            FaultPlan.sample(0, 1, 0, stage_fail_repeats=0)

    def test_target_slow_can_pin_a_target(self):
        inj = FaultInjector(
            FaultPlan(
                seed=0,
                events=(
                    FaultEvent(FaultKind.TARGET_SLOW, rank=2, step=0, delay_s=0.3),
                ),
            )
        )
        # Read 0 hits target 1: the pinned event does not fire.
        delay, evict = inj.on_staged_read("x", target=1)
        assert delay == 0.0 and not evict
        # It stays pending for a later read on target 2.
        delay, _ = inj.on_staged_read("x", target=2)
        assert delay == 0.0  # step moved past 0 — event keyed to read 0
