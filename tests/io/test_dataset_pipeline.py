"""Tests for RecordDataset and the prefetch pipeline."""

import numpy as np
import pytest

from repro.io.dataset import RecordDataset, write_dataset
from repro.io.pipeline import PrefetchPipeline


@pytest.fixture
def dataset_dir(tmp_path):
    rng = np.random.default_rng(0)
    vols = rng.standard_normal((20, 1, 4, 4, 4)).astype(np.float32)
    tgts = rng.random((20, 3)).astype(np.float32)
    paths = write_dataset(tmp_path, vols, tgts, samples_per_file=6)
    return tmp_path, paths, vols, tgts


class TestWriteDataset:
    def test_file_count(self, dataset_dir):
        _, paths, _, _ = dataset_dir
        assert len(paths) == 4  # ceil(20/6)

    def test_shuffled_assignment(self, tmp_path):
        rng = np.random.default_rng(1)
        vols = np.arange(12, dtype=np.float32).reshape(12, 1, 1, 1, 1)
        tgts = np.arange(12, dtype=np.float32)[:, None]
        a = write_dataset(tmp_path / "a", vols, tgts, samples_per_file=4, shuffle_rng=3)
        ds = RecordDataset(a)
        _, ys = ds.to_arrays()
        assert not np.array_equal(ys.ravel(), np.arange(12))  # shuffled
        assert sorted(ys.ravel().tolist()) == list(range(12))  # complete

    def test_validation_errors(self, tmp_path):
        with pytest.raises(ValueError):
            write_dataset(tmp_path, np.zeros((0, 1, 2, 2, 2)), np.zeros((0, 3)))
        with pytest.raises(ValueError):
            write_dataset(tmp_path, np.zeros((2, 1, 2, 2, 2)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            write_dataset(
                tmp_path, np.zeros((2, 1, 2, 2, 2)), np.zeros((2, 3)), samples_per_file=0
            )


class TestRecordDataset:
    def test_len(self, dataset_dir):
        _, paths, _, _ = dataset_dir
        assert len(RecordDataset(paths)) == 20

    def test_to_arrays_round_trip(self, dataset_dir):
        _, paths, vols, tgts = dataset_dir
        x, y = RecordDataset(paths).to_arrays()
        # unshuffled write: order preserved
        np.testing.assert_array_equal(x, vols)
        np.testing.assert_array_equal(y, tgts)

    def test_batches_cover_epoch(self, dataset_dir):
        _, paths, _, tgts = dataset_dir
        ds = RecordDataset(paths)
        seen = []
        for x, y in ds.batches(3, rng=np.random.default_rng(0)):
            assert x.ndim == 5
            seen.extend(y[:, 0].tolist())
        assert sorted(seen) == sorted(tgts[:, 0].tolist())

    def test_batches_deterministic(self, dataset_dir):
        _, paths, _, _ = dataset_dir
        ds = RecordDataset(paths)
        a = [y for _, y in ds.batches(2, rng=np.random.default_rng(5))]
        b = [y for _, y in ds.batches(2, rng=np.random.default_rng(5))]
        np.testing.assert_array_equal(np.concatenate(a), np.concatenate(b))

    def test_shard_partition(self, dataset_dir):
        _, paths, _, tgts = dataset_dir
        ds = RecordDataset(paths)
        all_ys = []
        for r in range(2):
            shard = ds.shard(r, 2)
            _, ys = shard.to_arrays()
            all_ys.extend(ys[:, 0].tolist())
        assert sorted(all_ys) == sorted(tgts[:, 0].tolist())

    def test_shard_too_many_ranks(self, dataset_dir):
        _, paths, _, _ = dataset_dir
        with pytest.raises(ValueError):
            RecordDataset(paths).shard(4, 5)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RecordDataset([tmp_path / "nope.rec"])

    def test_empty_paths_raise(self):
        with pytest.raises(ValueError):
            RecordDataset([])

    def test_read_hook_called(self, dataset_dir):
        _, paths, _, _ = dataset_dir
        calls = []
        ds = RecordDataset(paths, read_hook=lambda p, n: calls.append((p, n)))
        ds.to_arrays()
        assert len(calls) == len(paths)
        assert all(n > 0 for _, n in calls)

    def test_bytes_read_tracked(self, dataset_dir):
        _, paths, _, _ = dataset_dir
        ds = RecordDataset(paths)
        ds.to_arrays()
        assert ds.bytes_read == sum(p.stat().st_size for p in paths)


class TestPrefetchPipeline:
    def test_delivers_full_epoch(self, dataset_dir):
        _, paths, _, tgts = dataset_dir
        pipe = PrefetchPipeline(RecordDataset(paths), n_io_threads=3, buffer_size=4)
        seen = []
        for x, y in pipe.batches(2, rng=np.random.default_rng(0)):
            seen.extend(y[:, 0].tolist())
        assert sorted(seen) == sorted(tgts[:, 0].tolist())
        assert pipe.stats.samples_delivered == 20

    def test_len_passthrough(self, dataset_dir):
        _, paths, _, _ = dataset_dir
        assert len(PrefetchPipeline(RecordDataset(paths))) == 20

    def test_single_thread(self, dataset_dir):
        _, paths, _, _ = dataset_dir
        pipe = PrefetchPipeline(RecordDataset(paths), n_io_threads=1)
        n = sum(len(x) for x, _ in pipe.batches(4, rng=np.random.default_rng(1)))
        assert n == 20

    def test_slow_storage_shows_waits(self, dataset_dir):
        _, paths, _, _ = dataset_dir
        pipe = PrefetchPipeline(
            RecordDataset(paths), n_io_threads=1, buffer_size=1, sample_delay_s=0.002
        )
        for _ in pipe.batches(1, rng=np.random.default_rng(0)):
            pass  # consume instantly; producer is the bottleneck
        assert pipe.stats.consumer_wait_s > 0.01

    def test_fast_storage_hides_io(self, dataset_dir):
        """With no injected delay and slow consumption, waits are tiny
        compared to a slow-producer scenario — I/O is hidden."""
        import time

        _, paths, _, _ = dataset_dir

        def consume(pipe):
            for _ in pipe.batches(1, rng=np.random.default_rng(0)):
                time.sleep(0.001)  # "compute"
            return pipe.stats.consumer_wait_s

        fast = consume(PrefetchPipeline(RecordDataset(paths), n_io_threads=2, buffer_size=8))
        slow = consume(
            PrefetchPipeline(
                RecordDataset(paths), n_io_threads=1, buffer_size=1, sample_delay_s=0.005
            )
        )
        assert fast < slow

    def test_trainer_integration(self, dataset_dir):
        """The pipeline satisfies the trainer's dataset protocol."""
        from repro.core.model import CosmoFlowModel
        from repro.core.topology import CosmoFlowConfig, ConvSpec
        from repro.core.trainer import Trainer, TrainerConfig

        _, paths, _, _ = dataset_dir
        cfg = CosmoFlowConfig(
            name="micro4",
            input_size=4,
            conv_layers=(ConvSpec(16, 2),),
            fc_sizes=(8,),
            n_outputs=3,
        )
        model = CosmoFlowModel(cfg, seed=0)
        pipe = PrefetchPipeline(RecordDataset(paths), n_io_threads=2)
        trainer = Trainer(model, pipe, config=TrainerConfig(epochs=2, validate=False))
        hist = trainer.run()
        assert len(hist.train_loss) == 2
        assert all(np.isfinite(l) for l in hist.train_loss)

    def test_validation_errors(self, dataset_dir):
        _, paths, _, _ = dataset_dir
        ds = RecordDataset(paths)
        with pytest.raises(ValueError):
            PrefetchPipeline(ds, n_io_threads=0)
        with pytest.raises(ValueError):
            PrefetchPipeline(ds, buffer_size=0)
        with pytest.raises(ValueError):
            PrefetchPipeline(ds, sample_delay_s=-1.0)

    def test_early_abandon_does_not_leak_threads(self, dataset_dir):
        """Breaking out of the epoch must release the producer threads
        even when the queue is full (the TF Coordinator's job)."""
        import threading
        import time

        _, paths, _, _ = dataset_dir
        before = threading.active_count()
        pipe = PrefetchPipeline(RecordDataset(paths), n_io_threads=3, buffer_size=1)
        for _ in pipe.batches(1, rng=np.random.default_rng(0)):
            break  # abandon after the first batch
        # generator close runs the cleanup; give stragglers a moment
        deadline = time.time() + 3.0
        while threading.active_count() > before and time.time() < deadline:
            time.sleep(0.05)
        assert threading.active_count() <= before

    def test_early_abandon_then_new_epoch_works(self, dataset_dir):
        _, paths, _, tgts = dataset_dir
        ds = RecordDataset(paths)
        pipe = PrefetchPipeline(ds, n_io_threads=2, buffer_size=2)
        for _ in pipe.batches(1, rng=np.random.default_rng(0)):
            break
        seen = sum(len(x) for x, _ in pipe.batches(2, rng=np.random.default_rng(1)))
        assert seen == len(tgts)

    def test_producer_error_propagates(self, dataset_dir):
        _, paths, _, _ = dataset_dir

        class Boom:
            def __len__(self):
                return 1

            def batches(self, *a, **k):
                raise RuntimeError("disk on fire")
                yield  # pragma: no cover

        pipe = PrefetchPipeline(Boom(), n_io_threads=2)
        with pytest.raises(RuntimeError, match="disk on fire"):
            list(pipe.batches(1))
