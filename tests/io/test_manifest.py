"""Tests for dataset directories with manifests."""

import json

import numpy as np
import pytest

from repro.cosmo.dataset_builder import SimulationConfig
from repro.io.manifest import (
    MANIFEST_NAME,
    load_simulation_dataset,
    write_simulation_dataset,
)

SMALL = SimulationConfig(particle_grid=16, histogram_grid=16, box_size=32.0)


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        path = write_simulation_dataset(
            tmp_path / "ds", n_sims=10, config=SMALL, seed=3, samples_per_file=16
        )
        assert path.name == MANIFEST_NAME
        manifest, datasets = load_simulation_dataset(tmp_path / "ds")
        assert manifest["n_sims"] == 10
        assert manifest["seed"] == 3
        assert manifest["subvolume_size"] == 8
        assert set(datasets) == {"train", "val", "test"}
        total = sum(len(d) for d in datasets.values())
        assert total == 10 * 8

    def test_split_counts_match_manifest(self, tmp_path):
        write_simulation_dataset(tmp_path, n_sims=10, config=SMALL, seed=0)
        manifest, datasets = load_simulation_dataset(tmp_path)
        for name, ds in datasets.items():
            assert manifest["splits"][name] == len(ds)

    def test_simulation_config_recorded(self, tmp_path):
        write_simulation_dataset(tmp_path, n_sims=4, config=SMALL, seed=0)
        manifest, _ = load_simulation_dataset(tmp_path)
        assert manifest["simulation"]["particle_grid"] == 16
        assert manifest["simulation"]["box_size"] == 32.0

    def test_samples_readable_and_shaped(self, tmp_path):
        write_simulation_dataset(tmp_path, n_sims=5, config=SMALL, seed=1)
        _, datasets = load_simulation_dataset(tmp_path)
        x, y = datasets["test"].to_arrays()
        assert x.shape[1:] == (1, 8, 8, 8)
        assert y.shape[1] == 3
        assert np.all((y >= 0) & (y <= 1))

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_simulation_dataset(tmp_path)

    def test_bad_version_raises(self, tmp_path):
        write_simulation_dataset(tmp_path, n_sims=4, config=SMALL, seed=0)
        manifest_path = tmp_path / MANIFEST_NAME
        data = json.loads(manifest_path.read_text())
        data["format_version"] = 99
        manifest_path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="version"):
            load_simulation_dataset(tmp_path)

    def test_manifest_records_file_names(self, tmp_path):
        write_simulation_dataset(tmp_path, n_sims=4, config=SMALL, seed=0)
        manifest, _ = load_simulation_dataset(tmp_path)
        assert set(manifest["files"]) == {"train", "val", "test"}
        for split, names in manifest["files"].items():
            for name in names:
                assert (tmp_path / split / name).exists()

    def test_missing_listed_file_raises(self, tmp_path):
        write_simulation_dataset(tmp_path, n_sims=4, config=SMALL, seed=0)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        victim = manifest["files"]["train"][0]
        (tmp_path / "train" / victim).unlink()
        with pytest.raises(FileNotFoundError, match=victim):
            load_simulation_dataset(tmp_path)

    def test_extra_record_file_raises(self, tmp_path):
        write_simulation_dataset(tmp_path, n_sims=4, config=SMALL, seed=0)
        (tmp_path / "train" / "train_99999.rec").write_bytes(b"")
        with pytest.raises(ValueError, match="train_99999.rec"):
            load_simulation_dataset(tmp_path)

    def test_old_manifest_without_files_key_loads(self, tmp_path):
        """Pre-staging manifests (no ``files`` key) must keep loading."""
        write_simulation_dataset(tmp_path, n_sims=4, config=SMALL, seed=0)
        manifest_path = tmp_path / MANIFEST_NAME
        data = json.loads(manifest_path.read_text())
        del data["files"]
        manifest_path.write_text(json.dumps(data))
        _, datasets = load_simulation_dataset(tmp_path)
        assert set(datasets) == {"train", "val", "test"}

    def test_load_with_staging_routes_reads(self, tmp_path):
        from repro.io.staging import StagingManager

        write_simulation_dataset(tmp_path / "ds", n_sims=4, config=SMALL, seed=0)
        mgr = StagingManager(tmp_path / "bb", seed=1)
        _, datasets = load_simulation_dataset(tmp_path / "ds", staging=mgr)
        datasets["test"].to_arrays()
        assert mgr.stats.bb_reads > 0

    def test_deterministic_given_seed(self, tmp_path):
        write_simulation_dataset(tmp_path / "a", n_sims=4, config=SMALL, seed=7)
        write_simulation_dataset(tmp_path / "b", n_sims=4, config=SMALL, seed=7)
        _, da = load_simulation_dataset(tmp_path / "a")
        _, db = load_simulation_dataset(tmp_path / "b")
        xa, ya = da["test"].to_arrays()
        xb, yb = db["test"].to_arrays()
        np.testing.assert_array_equal(xa, xb)
        np.testing.assert_array_equal(ya, yb)
