"""Tests for repro.utils.timer and repro.utils.logging."""

import time

import pytest

from repro.utils.logging import get_logger
from repro.utils.timer import StageTimer, Timer, format_duration


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expect",
        [
            (5e-10, "ns"),
            (5e-7, "ns"),
            (5e-5, "us"),
            (5e-3, "ms"),
            (0.5, "ms"),
            (5.0, "s"),
            (600.0, "min"),
        ],
    )
    def test_units(self, seconds, expect):
        assert expect in format_duration(seconds)

    def test_negative(self):
        assert format_duration(-2.0).startswith("-")


class TestTimer:
    def test_measures_elapsed(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_accumulates(self):
        t = Timer()
        for _ in range(2):
            t.start()
            time.sleep(0.005)
            t.stop()
        assert t.elapsed >= 0.009

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0


class TestStageTimer:
    def test_stage_accumulation(self):
        st = StageTimer()
        with st.stage("a"):
            time.sleep(0.005)
        with st.stage("a"):
            pass
        assert st.stages["a"].count == 2
        assert st.stages["a"].total >= 0.004

    def test_add_external(self):
        st = StageTimer()
        st.add("io", 1.5)
        st.add("io", 0.5)
        assert st.stages["io"].total == 2.0
        assert st.stages["io"].count == 2
        assert st.stages["io"].mean == 1.0

    def test_fractions_sum_to_one(self):
        st = StageTimer()
        st.add("a", 3.0)
        st.add("b", 1.0)
        fr = st.fractions()
        assert abs(sum(fr.values()) - 1.0) < 1e-12
        assert fr["a"] == pytest.approx(0.75)

    def test_fractions_empty(self):
        assert StageTimer().fractions() == {}

    def test_report_contains_stages(self):
        st = StageTimer()
        st.add("conv3d", 2.0)
        st.add("comm", 1.0)
        rep = st.report("breakdown")
        assert "conv3d" in rep and "comm" in rep and "breakdown" in rep

    def test_reset(self):
        st = StageTimer()
        st.add("a", 1.0)
        st.reset()
        assert st.total() == 0.0

    def test_exception_still_recorded(self):
        st = StageTimer()
        with pytest.raises(ValueError):
            with st.stage("x"):
                raise ValueError("boom")
        assert st.stages["x"].count == 1


class TestLogging:
    def test_namespaced(self):
        lg = get_logger("comm")
        assert lg.name == "repro.comm"

    def test_already_namespaced(self):
        lg = get_logger("repro.io")
        assert lg.name == "repro.io"
