"""Tests for repro.utils.timer and repro.utils.logging."""

import time

import pytest

from repro.utils.logging import get_logger
from repro.utils.timer import StageTimer, Timer, format_duration


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expect",
        [
            (5e-10, "ns"),
            (5e-7, "ns"),
            (5e-5, "us"),
            (5e-3, "ms"),
            (0.5, "ms"),
            (5.0, "s"),
            (600.0, "min"),
        ],
    )
    def test_units(self, seconds, expect):
        assert expect in format_duration(seconds)

    def test_negative(self):
        assert format_duration(-2.0).startswith("-")

    @pytest.mark.parametrize(
        "seconds,expect",
        [
            # Unit boundaries are half-open: exactly at the threshold
            # rolls over to the larger unit.
            (1e-6, "1.0 us"),
            (1e-3, "1.00 ms"),
            (1.0, "1.00 s"),
            (119.999, "120.00 s"),
            (120.0, "2.0 min"),
            (7200.0, "120.0 min"),
        ],
    )
    def test_unit_boundaries(self, seconds, expect):
        assert format_duration(seconds) == expect

    def test_zero_renders_as_ns(self):
        assert format_duration(0.0) == "0.0 ns"

    def test_sub_nanosecond(self):
        assert format_duration(5e-10) == "0.5 ns"

    def test_negative_recurses_through_units(self):
        # The sign prefix composes with every unit branch.
        assert format_duration(-5e-10) == "-0.5 ns"
        assert format_duration(-150.0) == "-2.5 min"


class TestTimer:
    def test_measures_elapsed(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_accumulates(self):
        t = Timer()
        for _ in range(2):
            t.start()
            time.sleep(0.005)
            t.stop()
        assert t.elapsed >= 0.009

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0


class TestStageTimer:
    def test_stage_accumulation(self):
        st = StageTimer()
        with st.stage("a"):
            time.sleep(0.005)
        with st.stage("a"):
            pass
        assert st.stages["a"].count == 2
        assert st.stages["a"].total >= 0.004

    def test_add_external(self):
        st = StageTimer()
        st.add("io", 1.5)
        st.add("io", 0.5)
        assert st.stages["io"].total == 2.0
        assert st.stages["io"].count == 2
        assert st.stages["io"].mean == 1.0

    def test_fractions_sum_to_one(self):
        st = StageTimer()
        st.add("a", 3.0)
        st.add("b", 1.0)
        fr = st.fractions()
        assert abs(sum(fr.values()) - 1.0) < 1e-12
        assert fr["a"] == pytest.approx(0.75)

    def test_fractions_empty(self):
        assert StageTimer().fractions() == {}

    def test_report_contains_stages(self):
        st = StageTimer()
        st.add("conv3d", 2.0)
        st.add("comm", 1.0)
        rep = st.report("breakdown")
        assert "conv3d" in rep and "comm" in rep and "breakdown" in rep

    def test_reset(self):
        st = StageTimer()
        st.add("a", 1.0)
        st.reset()
        assert st.total() == 0.0

    def test_exception_still_recorded(self):
        st = StageTimer()
        with pytest.raises(ValueError):
            with st.stage("x"):
                raise ValueError("boom")
        assert st.stages["x"].count == 1

    def test_nested_distinct_stages_count_inclusively(self):
        # Documented semantics: time inside an inner stage is counted
        # in BOTH stages, like a profiler's inclusive time.
        st = StageTimer()
        with st.stage("outer"):
            with st.stage("inner"):
                time.sleep(0.005)
        assert st.stages["outer"].count == 1
        assert st.stages["inner"].count == 1
        assert st.stages["outer"].total >= st.stages["inner"].total >= 0.004

    def test_reentrant_same_stage(self):
        # Re-entering the SAME stage name nests fine; each exit records
        # its own window, so the elapsed inner time is double-counted —
        # exactly the inclusive-time contract.
        st = StageTimer()
        with st.stage("a"):
            with st.stage("a"):
                time.sleep(0.003)
        assert st.stages["a"].count == 2
        assert st.stages["a"].total >= 2 * 0.002

    def test_zero_duration_stage(self):
        st = StageTimer()
        with st.stage("noop"):
            pass
        rec = st.stages["noop"]
        assert rec.count == 1
        assert rec.total >= 0.0
        # A zero-total stage must not poison derived views.
        st.add("noop", -rec.total)  # force an exact 0.0 total
        assert st.stages["noop"].mean == 0.0 or st.stages["noop"].total == 0.0
        assert st.report()  # renders without dividing by zero

    def test_all_zero_totals_fractions_are_zero(self):
        st = StageTimer()
        st.add("a", 0.0)
        st.add("b", 0.0)
        assert st.fractions() == {"a": 0.0, "b": 0.0}

    def test_mean_of_empty_record(self):
        st = StageTimer()
        st.add("a", 0.0, count=0)
        assert st.stages["a"].mean == 0.0


class TestLogging:
    def test_namespaced(self):
        lg = get_logger("comm")
        assert lg.name == "repro.comm"

    def test_already_namespaced(self):
        lg = get_logger("repro.io")
        assert lg.name == "repro.io"
