"""Tests for the logging configuration helper."""

import logging

from repro.utils.logging import configure, get_logger


class TestConfigure:
    def test_idempotent_handler_attachment(self):
        root = logging.getLogger("repro")
        configure(level=logging.DEBUG)
        n_handlers = len(root.handlers)
        configure(level=logging.INFO)
        assert len(root.handlers) == n_handlers  # no duplicates
        assert root.level == logging.INFO

    def test_child_loggers_propagate(self):
        configure()
        child = get_logger("cosmo.nbody")
        assert child.name == "repro.cosmo.nbody"
        assert child.parent.name.startswith("repro")

    def test_messages_flow_to_handler(self, caplog):
        lg = get_logger("test_flow")
        with caplog.at_level(logging.WARNING, logger="repro.test_flow"):
            lg.warning("straggler detected")
        assert "straggler detected" in caplog.text
