"""Unit tests for the shared flatten/unflatten gradient packing."""

import numpy as np
import pytest

from repro.utils.packing import flatten_arrays, unflatten_arrays, unflatten_like


def _tensors():
    rng = np.random.default_rng(3)
    return [
        rng.standard_normal((2, 3, 4)).astype(np.float32),
        rng.standard_normal((5,)).astype(np.float32),
        rng.standard_normal((1, 7)).astype(np.float32),
    ]


class TestFlatten:
    def test_concatenates_in_order(self):
        arrays = _tensors()
        flat = flatten_arrays(arrays)
        assert flat.ndim == 1
        assert flat.size == sum(a.size for a in arrays)
        expected = np.concatenate([a.ravel() for a in arrays])
        np.testing.assert_array_equal(flat, expected)

    def test_single_array_is_ravel(self):
        a = _tensors()[0]
        flat = flatten_arrays([a])
        np.testing.assert_array_equal(flat, a.ravel())
        # Contiguous single input must not be copied (hot path).
        assert flat.base is a or np.shares_memory(flat, a)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            flatten_arrays([])

    def test_accepts_lists(self):
        flat = flatten_arrays([[1.0, 2.0], [3.0]])
        np.testing.assert_array_equal(flat, [1.0, 2.0, 3.0])


class TestUnflatten:
    def test_round_trip_is_bitwise_lossless(self):
        arrays = _tensors()
        out = unflatten_arrays(flatten_arrays(arrays), [a.shape for a in arrays])
        assert len(out) == len(arrays)
        for got, want in zip(out, arrays):
            assert got.shape == want.shape
            np.testing.assert_array_equal(got, want)

    def test_unflatten_like_uses_template_shapes(self):
        arrays = _tensors()
        out = unflatten_like(flatten_arrays(arrays), arrays)
        for got, want in zip(out, arrays):
            np.testing.assert_array_equal(got, want)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="account for"):
            unflatten_arrays(np.zeros(10), [(3,), (3,)])
        with pytest.raises(ValueError, match="too small"):
            unflatten_arrays(np.zeros(4), [(3,), (3,)])

    def test_non_1d_buffer_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            unflatten_arrays(np.zeros((2, 3)), [(6,)])


class TestCallSitesAgree:
    """The three historical implementations must share this one."""

    def test_plugin_and_horovod_agree(self):
        from repro.comm.horovod import HorovodLike
        from repro.comm.plugin import MLPlugin
        from repro.comm.serial import SerialCommunicator

        grads = _tensors()
        plugin_out = MLPlugin(SerialCommunicator()).init().gradients(grads)
        hvd_out = HorovodLike(SerialCommunicator()).init().gradients(grads)
        for a, b, original in zip(plugin_out, hvd_out, grads):
            np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(a, original)  # 1-rank mean = identity

    def test_distributed_unflatten_alias(self):
        from repro.core.distributed import DistributedTrainer

        arrays = _tensors()
        out = DistributedTrainer._unflatten(flatten_arrays(arrays), arrays)
        for got, want in zip(out, arrays):
            np.testing.assert_array_equal(got, want)
