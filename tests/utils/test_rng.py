"""Tests for repro.utils.rng."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import derive_seed, new_rng, spawn_rngs


class TestNewRng:
    def test_seeded_is_deterministic(self):
        a = new_rng(123).random(8)
        b = new_rng(123).random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(new_rng(1).random(8), new_rng(2).random(8))

    def test_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert new_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(new_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_independent(self):
        rngs = spawn_rngs(42, 3)
        draws = [r.random(16) for r in rngs]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not np.array_equal(draws[i], draws[j])

    def test_deterministic(self):
        a = [r.random(4) for r in spawn_rngs(7, 2)]
        b = [r.random(4) for r in spawn_rngs(7, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_ok(self):
        assert spawn_rngs(0, 0) == []


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "epoch", 3) == derive_seed(1, "epoch", 3)

    def test_key_path_matters(self):
        assert derive_seed(1, "epoch", 3) != derive_seed(1, "epoch", 4)
        assert derive_seed(1, "train") != derive_seed(1, "val")

    def test_base_seed_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_none_seed_ok(self):
        assert isinstance(derive_seed(None, "x"), int)

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.text(max_size=20))
    def test_always_valid_uint32(self, seed, key):
        s = derive_seed(seed, key)
        assert 0 <= s < 2**32
