"""Tests for the consolidated retry/backoff helper.

The jittered schedule is shared by the staging tier, the elastic
restart loop, and the serving tier's replica bring-up, so its
determinism contract — same seed, same delays, in draw order — is
load-bearing for every fault benchmark's bitwise-replay assertion.
"""

import numpy as np
import pytest

from repro.utils.retry import RetryPolicy, call_with_retry, jittered_delay
from repro.utils.rng import new_rng


class TestRetryPolicy:
    def test_exponential_schedule(self):
        p = RetryPolicy(max_attempts=5, base_delay_s=0.01, multiplier=2.0, max_delay_s=1.0)
        assert [p.delay(a) for a in range(4)] == [0.01, 0.02, 0.04, 0.08]

    def test_cap(self):
        p = RetryPolicy(base_delay_s=0.5, multiplier=10.0, max_delay_s=1.0)
        assert p.delay(3) == 1.0


class TestJitteredDelay:
    POLICY = RetryPolicy(max_attempts=6, base_delay_s=0.1, multiplier=2.0, max_delay_s=10.0)

    def test_no_jitter_is_bare_schedule(self):
        for attempt in range(5):
            assert jittered_delay(self.POLICY, attempt) == self.POLICY.delay(attempt)

    def test_no_rng_is_bare_schedule(self):
        # A jitter fraction without a generator cannot randomize.
        assert jittered_delay(self.POLICY, 2, jitter=0.5) == self.POLICY.delay(2)

    def test_seeded_jitter_is_deterministic(self):
        a = [jittered_delay(self.POLICY, i, jitter=0.25, rng=new_rng(7)) for i in range(6)]
        b = [jittered_delay(self.POLICY, i, jitter=0.25, rng=new_rng(7)) for i in range(6)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [jittered_delay(self.POLICY, i, jitter=0.25, rng=new_rng(7)) for i in range(6)]
        c = [jittered_delay(self.POLICY, i, jitter=0.25, rng=new_rng(8)) for i in range(6)]
        assert a != c

    def test_jitter_bounds(self):
        rng = new_rng(3)
        for attempt in range(50):
            base = self.POLICY.delay(attempt % 6)
            d = jittered_delay(self.POLICY, attempt % 6, jitter=0.25, rng=rng)
            assert 0.75 * base <= d <= 1.25 * base

    def test_one_draw_per_call(self):
        # The helper consumes exactly one uniform per call, so shared
        # generators stay in lockstep with the historical inline code.
        rng = new_rng(11)
        jittered_delay(self.POLICY, 0, jitter=0.25, rng=rng)
        ref = new_rng(11)
        ref.uniform(-1.0, 1.0)
        assert rng.uniform() == ref.uniform()

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            jittered_delay(self.POLICY, 0, jitter=1.5, rng=new_rng(0))

    def test_matches_staging_inline_formula(self):
        # The formula the staging tier used before consolidation.
        rng_new = new_rng(5)
        rng_old = new_rng(5)
        for attempt in range(4):
            got = jittered_delay(self.POLICY, attempt, jitter=0.25, rng=rng_new)
            want = self.POLICY.delay(attempt) * (
                1.0 + 0.25 * float(rng_old.uniform(-1.0, 1.0))
            )
            assert got == want


class TestCallWithRetryJitter:
    def test_sleeps_are_jittered_and_seeded(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.01)

        def run(seed):
            slept = []
            calls = []

            def fn(attempt):
                calls.append(attempt)
                if attempt < 3:
                    raise IOError("transient")
                return "ok"

            out = call_with_retry(
                fn,
                policy,
                sleep=slept.append,
                jitter=0.25,
                rng=new_rng(seed),
            )
            assert out == "ok"
            assert calls == [0, 1, 2, 3]
            return slept

        a, b, c = run(1), run(1), run(2)
        assert a == b
        assert a != c
        assert len(a) == 3
        for attempt, d in enumerate(a):
            base = policy.delay(attempt)
            assert 0.75 * base <= d <= 1.25 * base

    def test_default_unjittered_path_unchanged(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.01)
        slept = []

        def fn(attempt):
            raise IOError("always")

        with pytest.raises(IOError):
            call_with_retry(fn, policy, sleep=slept.append)
        assert slept == [policy.delay(0), policy.delay(1)]


class TestElasticRestartBackoffConfig:
    def test_config_accepts_policy(self):
        from repro.core.elastic import ElasticConfig

        cfg = ElasticConfig(
            restart_backoff=RetryPolicy(base_delay_s=0.0), restart_jitter=0.5
        )
        assert cfg.restart_backoff.base_delay_s == 0.0

    def test_invalid_restart_jitter_rejected(self):
        from repro.core.elastic import ElasticConfig

        with pytest.raises(ValueError):
            ElasticConfig(restart_jitter=2.0)


def test_numpy_interop():
    # The helper accepts any object with .uniform — numpy Generators in
    # practice — and returns a builtin float either way.
    d = jittered_delay(RetryPolicy(), 0, jitter=0.1, rng=np.random.default_rng(0))
    assert isinstance(d, float)
