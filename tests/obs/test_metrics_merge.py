"""Merging per-process metrics dumps into one registry.

The real-process backend runs one :class:`MetricsRegistry` per worker
process and folds the dumps into the parent's registry after the run.
The contract these tests pin: N child registries merged into a fresh
parent are indistinguishable from one shared registry that observed
everything — including exact histogram quantiles, which requires the
dump format to carry raw samples rather than summaries.
"""

import json

import pytest

from repro.obs.metrics import MetricsRegistry


def observe_shard(registry, shard):
    """One worker's worth of activity, parameterized by shard id."""
    registry.counter("engine.steps").add(10 + shard)
    registry.counter("comm.bytes_reduced").add(1000 * (shard + 1))
    registry.gauge("engine.stage.io.seconds").add(0.5 * (shard + 1))
    hist = registry.histogram("serve.latency_s")
    for i in range(20):
        # Dyadic values keep float summation exact regardless of order.
        hist.observe((shard * 20 + i) / 1024)


class TestMergeEqualsSingleRegistry:
    N = 4

    def build(self):
        single = MetricsRegistry()
        merged = MetricsRegistry()
        for shard in range(self.N):
            observe_shard(single, shard)
            child = MetricsRegistry()
            observe_shard(child, shard)
            merged.merge(child.dump())
        return single, merged

    def test_snapshots_identical(self):
        single, merged = self.build()
        assert merged.snapshot() == single.snapshot()

    def test_histogram_quantiles_exact(self):
        single, merged = self.build()
        h1 = single.histogram("serve.latency_s")
        h2 = merged.histogram("serve.latency_s")
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert h2.quantile(q) == h1.quantile(q)
        assert (h2.count, h2.total, h2.min, h2.max) == (
            h1.count, h1.total, h1.min, h1.max,
        )

    def test_merge_order_does_not_matter(self):
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        dumps = []
        for shard in range(self.N):
            child = MetricsRegistry()
            observe_shard(child, shard)
            dumps.append(child.dump())
        for d in dumps:
            forward.merge(d)
        for d in reversed(dumps):
            backward.merge(d)
        assert forward.snapshot() == backward.snapshot()


class TestDumpFormat:
    def test_dump_is_json_serializable(self):
        reg = MetricsRegistry()
        observe_shard(reg, 0)
        rebuilt = MetricsRegistry()
        rebuilt.merge(json.loads(json.dumps(reg.dump())))
        assert rebuilt.snapshot() == reg.snapshot()

    def test_dump_tags_kinds(self):
        reg = MetricsRegistry()
        reg.counter("c").add(1)
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(3.0)
        dump = reg.dump()
        assert dump["c"] == {"kind": "counter", "value": 1}
        assert dump["g"] == {"kind": "gauge", "value": 2.0}
        assert dump["h"] == {"kind": "histogram", "samples": [3.0]}

    def test_empty_registry_dump(self):
        reg = MetricsRegistry()
        assert reg.dump() == {}
        target = MetricsRegistry()
        target.merge(reg.dump())
        assert target.names() == []


class TestMergeSafety:
    def test_merge_into_nonempty_adds(self):
        reg = MetricsRegistry()
        reg.counter("engine.steps").add(5)
        child = MetricsRegistry()
        child.counter("engine.steps").add(7)
        reg.merge(child.dump())
        assert reg.value("engine.steps") == 12

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.gauge("x").set(1.0)
        child = MetricsRegistry()
        child.counter("x").add(1)
        with pytest.raises(TypeError):
            reg.merge(child.dump())

    def test_unknown_kind_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown instrument kind"):
            reg.merge({"x": {"kind": "sparkline", "value": 1}})
