"""End-to-end tracing through the engine: validity, agreement, cost.

The ISSUE acceptance criteria pinned here:

* a seeded elastic run with a tracer produces a valid Chrome trace with
  per-rank tracks and io/compute/comm/optimizer spans;
* ``trace summarize`` totals agree with the run's StageTimer/History
  accounting (same numbers, by construction — one timing window feeds
  both sinks);
* with tracing disabled (the default NULL_TRACER) runs record nothing
  and numerics are bit-identical to traced runs.
"""

import time

import numpy as np
import pytest

from repro.core.elastic import ElasticConfig
from repro.core.engine import ElasticBackend, EngineConfig, TrainingEngine
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData
from repro.faults import FaultInjector
from repro.obs import (
    MetricsRegistry,
    Tracer,
    format_summary,
    load_trace,
    summarize_trace,
)

OPT = OptimizerConfig(eta0=5e-3, decay_steps=50)
STAGES = ("io", "compute", "comm", "optimizer")


def make_dataset(n, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, 16, 16, 16)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


def run_elastic(tracer=None, metrics=None, epochs=2, seed=0):
    backend = ElasticBackend(
        tiny_16(),
        make_dataset(9),
        val_data=make_dataset(6, seed=7),
        optimizer_config=OPT,
        n_ranks=3,
        elastic=ElasticConfig(timeout_s=10.0),
        injector=FaultInjector(),
    )
    engine = TrainingEngine(
        backend,
        config=EngineConfig(epochs=epochs, seed=seed),
        tracer=tracer,
        metrics=metrics,
    )
    hist = engine.run()
    return engine, hist


class TestTracedElasticRun:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        tracer, metrics = Tracer(), MetricsRegistry()
        engine, hist = run_elastic(tracer, metrics)
        path = tracer.export(tmp_path_factory.mktemp("trace") / "out.json")
        return tracer, metrics, hist, path

    def test_per_rank_tracks_and_stage_spans(self, traced):
        tracer, _, _, _ = traced
        events = tracer.ordered()
        tracks = {e.track for e in events}
        assert {0, 1, 2} <= tracks
        for rank in range(3):
            names = {e.name for e in events if e.track == rank and e.ph == "X"}
            assert set(STAGES) <= names, f"rank {rank} missing stage spans"
        comm = {e.name for e in events if e.cat == "comm" and e.ph == "X"}
        assert "allreduce" in comm

    def test_exported_trace_is_valid_chrome_json(self, traced):
        _, _, _, path = traced
        events = load_trace(path)
        meta = {
            e["args"]["name"] for e in events if e.get("ph") == "M"
        }
        assert {"rank 0", "rank 1", "rank 2"} <= meta
        spans = [e for e in events if e.get("ph") == "X"]
        assert spans and all(
            isinstance(e["ts"], float) and "dur" in e for e in spans
        )

    def test_summarize_agrees_with_stage_accounting(self, traced):
        # One perf_counter window feeds both the StageTimer (absorbed
        # into the metrics registry) and the trace span, so the
        # summarize totals must match up to the µs JSON round-trip.
        _, metrics, _, path = traced
        summary = summarize_trace(load_trace(path))
        for stage in STAGES:
            want = metrics.value(f"engine.stage.{stage}.seconds")
            assert summary.stage_total_s(stage) == pytest.approx(want, rel=1e-6)
            assert summary.stages[stage].count == metrics.value(
                f"engine.stage.{stage}.count"
            )

    def test_format_summary_prints_stage_table(self, traced):
        _, _, _, path = traced
        text = format_summary(summarize_trace(load_trace(path)))
        for stage in STAGES:
            assert stage in text
        assert "track: rank 0" in text


class TestDisabledTracing:
    def test_null_tracer_records_nothing(self):
        engine, _ = run_elastic()  # default NULL_TRACER
        assert engine.tracer.enabled is False
        assert engine.tracer.events == []

    def test_tracing_does_not_perturb_numerics(self):
        _, ref = run_elastic()
        _, traced = run_elastic(Tracer(), MetricsRegistry())
        assert traced.train_loss == ref.train_loss  # bitwise
        assert traced.val_loss == ref.val_loss

    def test_disabled_call_site_overhead_is_negligible(self):
        # The call-site pattern is `if tracer.enabled:` plus, for
        # spans, a pre-dispatched no-op context manager; bound the
        # per-call cost rather than racing wall clocks.
        from repro.obs.tracer import NULL_TRACER

        n = 100_000
        t0 = time.perf_counter()
        for _ in range(n):
            if NULL_TRACER.enabled:
                pass  # pragma: no cover
        per_call = (time.perf_counter() - t0) / n
        assert per_call < 5e-6  # far below any step time


class TestTracingOverhead:
    def test_enabled_overhead_under_budget(self):
        # Acceptance criterion: <5% step-time overhead with tracing on.
        # Wall-clock comparisons flake under CI load, so assert a
        # generous multiple of the target; the recording path is a
        # dataclass append under a lock (~1µs) against ~10ms steps.
        def timed(traced):
            best = float("inf")
            for _ in range(2):
                t0 = time.perf_counter()
                run_elastic(Tracer() if traced else None, epochs=1)
                best = min(best, time.perf_counter() - t0)
            return best

        base = timed(False)
        traced = timed(True)
        assert traced <= base * 1.25
