"""Tests for the metrics registry and its legacy-stats adapters."""

import pytest

from repro.io.pipeline import PipelineStats
from repro.io.staging import StagingStats
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.utils.timer import StageTimer


class TestInstruments:
    def test_counter_accumulates(self):
        m = MetricsRegistry()
        c = m.counter("steps")
        c.add()
        c.add(4)
        assert c.value == 5
        assert m.counter("steps") is c  # same instrument on re-ask

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            MetricsRegistry().counter("x").add(-1)

    def test_gauge_set_and_add(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3.0)
        g.add(-1.5)
        assert g.value == 1.5

    def test_histogram_summary(self):
        h = MetricsRegistry().histogram("lat")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3 and s["min"] == 1.0 and s["max"] == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_empty_histogram_summary_is_zeroed(self):
        s = MetricsRegistry().histogram("lat").summary()
        assert s == {
            "count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p99": 0.0,
        }

    def test_kind_conflict_raises(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            m.gauge("x")


class TestHistogramQuantiles:
    """p50/p99 extraction — the numbers the A9 serving report prints.

    Wrong quantiles would silently misreport tail latency, so the edge
    cases (empty, single sample, heavy tails) are pinned exactly.
    """

    def test_empty_stream_reports_zero(self):
        h = MetricsRegistry().histogram("lat")
        assert h.quantile(0.5) == 0.0
        assert h.p50 == 0.0 and h.p99 == 0.0

    def test_single_sample_is_every_quantile(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(0.042)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.042)

    def test_two_samples_interpolate(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(1.0)
        h.observe(2.0)
        assert h.p50 == pytest.approx(1.5)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 2.0

    def test_matches_numpy_linear_interpolation(self):
        import numpy as np

        rng = np.random.default_rng(3)
        values = rng.uniform(0.0, 1.0, size=101)
        h = MetricsRegistry().histogram("lat")
        for v in values:
            h.observe(v)
        for q in (0.01, 0.25, 0.5, 0.9, 0.99):
            assert h.quantile(q) == pytest.approx(float(np.quantile(values, q)))

    def test_heavy_tailed_stream(self):
        # 99 fast requests and one catastrophic straggler: p50 must not
        # see the tail, p99 must.
        h = MetricsRegistry().histogram("lat")
        for _ in range(99):
            h.observe(0.010)
        h.observe(60.0)
        assert h.p50 == pytest.approx(0.010)
        assert h.p99 > 0.5  # interpolates into the straggler
        assert h.max == 60.0
        import numpy as np

        samples = [0.010] * 99 + [60.0]
        assert h.p99 == pytest.approx(float(np.quantile(samples, 0.99)))

    def test_insertion_order_irrelevant(self):
        a = MetricsRegistry().histogram("a")
        b = MetricsRegistry().histogram("b")
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        for v in values:
            a.observe(v)
        for v in sorted(values):
            b.observe(v)
        for q in (0.1, 0.5, 0.99):
            assert a.quantile(q) == b.quantile(q)

    def test_summary_includes_quantiles(self):
        h = MetricsRegistry().histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["p50"] == pytest.approx(2.5)
        assert s["p99"] == pytest.approx(3.97)

    def test_out_of_range_quantile_rejected(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(-0.1)

    def test_thread_safety_of_concurrent_observes(self):
        import threading

        h = MetricsRegistry().histogram("lat")

        def worker(base):
            for i in range(200):
                h.observe(base + i * 1e-6)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 800
        assert h.quantile(1.0) == h.max


class TestRegistryReads:
    def test_value_and_default(self):
        m = MetricsRegistry()
        m.counter("a").add(2)
        m.histogram("h").observe(4.0)
        assert m.value("a") == 2
        assert m.value("h") == 4.0  # histograms read as their mean
        assert m.value("missing", default=-1) == -1

    def test_names_and_snapshot_sorted(self):
        m = MetricsRegistry()
        m.gauge("b").set(1)
        m.counter("a").add(1)
        assert m.names() == ["a", "b"]
        assert list(m.snapshot()) == ["a", "b"]

    def test_report_renders_every_instrument(self):
        m = MetricsRegistry()
        m.counter("engine.steps").add(7)
        m.histogram("engine.epoch_time_s").observe(0.5)
        text = m.report()
        assert "engine.steps = 7" in text
        assert "n=1" in text


class TestAbsorbers:
    def test_absorb_mapping_skips_non_numeric(self):
        m = MetricsRegistry()
        m.absorb_mapping(
            {"reductions": 4, "survivors": [0, 1], "ok": True, "note": "x"}, "comm"
        )
        assert m.names() == ["comm.reductions"]
        assert m.value("comm.reductions") == 4

    def test_absorb_staging(self):
        stats = StagingStats(stage_ins=3, hedged_reads=2, bytes_staged=100)
        m = MetricsRegistry()
        m.absorb_staging(stats)
        assert m.value("io.staging.stage_ins") == 3
        assert m.value("io.staging.hedged_reads") == 2
        assert m.value("io.staging.bytes_staged") == 100

    def test_absorb_pipeline(self):
        stats = PipelineStats(
            samples_delivered=8, max_queue_depth=4, hedged_reads=1, consumer_wait_s=0.25
        )
        m = MetricsRegistry()
        m.absorb_pipeline(stats)
        assert m.value("io.pipeline.samples_delivered") == 8
        assert m.value("io.pipeline.max_queue_depth") == 4
        assert m.value("io.pipeline.hedged_reads") == 1
        assert m.value("io.pipeline.consumer_wait_s") == pytest.approx(0.25)

    def test_absorb_timer(self):
        t = StageTimer()
        t.add("io", 1.5, count=3)
        t.add("compute", 2.5)
        m = MetricsRegistry()
        m.absorb_timer(t)
        assert m.value("engine.stage.io.seconds") == pytest.approx(1.5)
        assert m.value("engine.stage.io.count") == 3
        assert m.value("engine.stage.compute.seconds") == pytest.approx(2.5)
