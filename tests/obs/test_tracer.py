"""Tests for the structured tracer and its Chrome trace exporter."""

import json
import time

import pytest

from repro.obs.summarize import format_summary, load_trace, summarize_trace
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer


class TestRecording:
    def test_span_records_complete_event(self):
        tr = Tracer()
        with tr.span("io", cat="engine", track=0, step=3):
            time.sleep(0.001)
        (e,) = tr.events
        assert e.name == "io" and e.cat == "engine" and e.ph == "X"
        assert e.track == 0 and e.args == {"step": 3}
        assert e.dur_s >= 0.0009

    def test_span_records_on_exception(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("x")
        assert len(tr.events) == 1 and tr.events[0].name == "boom"

    def test_complete_uses_external_duration(self):
        tr = Tracer()
        tr.complete("compute", time.perf_counter(), 1.25, track=2)
        assert tr.events[0].dur_s == 1.25

    def test_instant(self):
        tr = Tracer()
        tr.instant("eviction", cat="comm", track=1, collective=7)
        (e,) = tr.events
        assert e.ph == "i" and e.dur_s == 0.0 and e.args == {"collective": 7}

    def test_per_track_sequence_numbers_are_independent(self):
        tr = Tracer()
        tr.instant("a", track=0)
        tr.instant("b", track=1)
        tr.instant("c", track=0)
        tr.instant("d", track="staging")
        seqs = {(e.track, e.name): e.seq for e in tr.events}
        assert seqs[(0, "a")] == 0 and seqs[(0, "c")] == 1
        assert seqs[(1, "b")] == 0 and seqs[("staging", "d")] == 0

    def test_clear(self):
        tr = Tracer()
        tr.instant("a", track=0)
        tr.clear()
        assert tr.events == []
        tr.instant("b", track=0)
        assert tr.events[0].seq == 0  # counters reset too


class TestOrdering:
    def test_ordered_sorts_ranks_before_named_tracks(self):
        tr = Tracer()
        tr.instant("s", track="staging")
        tr.instant("r1", track=1)
        tr.instant("d", track="driver")
        tr.instant("r0", track=0)
        assert [e.track for e in tr.ordered()] == [0, 1, "driver", "staging"]

    def test_sequence_excludes_wall_clock(self):
        tr = Tracer()
        tr.complete("io", time.perf_counter(), 0.5, track=0, step=4)
        tr.instant("restart", track="driver")
        assert tr.sequence() == [(0, "io", 4), ("driver", "restart", None)]

    def test_sequence_independent_of_append_interleaving(self):
        # Same per-track event streams, different global interleaving:
        # the deterministic order must agree.
        a, b = Tracer(), Tracer()
        a.instant("x", track=0)
        a.instant("y", track=1)
        a.instant("z", track=0)
        b.instant("y", track=1)
        b.instant("x", track=0)
        b.instant("z", track=0)
        assert a.sequence() == b.sequence()


class TestChromeExport:
    def make_tracer(self):
        tr = Tracer()
        with tr.span("compute", cat="engine", track=0, step=0):
            pass
        with tr.span("allreduce", cat="comm", track=1, nbytes=64):
            pass
        tr.instant("hedge", cat="io", track="staging", file="a.rec")
        return tr

    def test_trace_structure(self):
        doc = self.make_tracer().to_chrome()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        labels = {e["tid"]: e["args"]["name"] for e in meta}
        assert labels == {0: "rank 0", 1: "rank 1", 2: "staging"}
        spans = [e for e in events if e["ph"] == "X"]
        assert all("dur" in e and "ts" in e for e in spans)
        instants = [e for e in events if e["ph"] == "i"]
        assert instants[0]["s"] == "t"

    def test_named_track_tids_follow_ranks(self):
        tr = Tracer()
        tr.instant("a", track=3)
        tr.instant("b", track="driver")
        tr.instant("c", track="staging")
        meta = {
            e["args"]["name"]: e["tid"]
            for e in tr.to_chrome()["traceEvents"]
            if e["ph"] == "M"
        }
        assert meta["rank 3"] == 3
        assert sorted((meta["driver"], meta["staging"])) == [4, 5]

    def test_export_roundtrip_and_summary(self, tmp_path):
        path = self.make_tracer().export(tmp_path / "out.json")
        json.loads(path.read_text())  # valid JSON
        summary = summarize_trace(load_trace(path))
        assert summary.stages["compute"].count == 1
        assert summary.comm["allreduce"].count == 1
        assert summary.instants == {"hedge": 1}
        text = format_summary(summary)
        assert "compute" in text and "allreduce" in text and "hedge" in text

    def test_load_trace_accepts_bare_array(self, tmp_path):
        p = tmp_path / "bare.json"
        p.write_text(json.dumps([{"name": "x", "ph": "i", "tid": 0, "ts": 0}]))
        assert summarize_trace(load_trace(p)).instants == {"x": 1}

    def test_load_trace_rejects_non_trace(self, tmp_path):
        p = tmp_path / "junk.json"
        p.write_text(json.dumps({"traceEvents": "nope"}))
        with pytest.raises(ValueError):
            load_trace(p)


class TestInstantOnlyTracks:
    """Serving traces are instant-heavy: whole tracks may carry no
    duration spans at all, and the summary must not assume otherwise."""

    def test_instant_only_trace_summarizes_cleanly(self, tmp_path):
        tr = Tracer()
        for _ in range(3):
            tr.instant("admit", cat="serve", track="serve")
        tr.instant("shed", cat="serve", track="serve")
        path = tr.export(tmp_path / "serve.json")
        summary = summarize_trace(load_trace(path))
        assert summary.stages == {}
        assert summary.instants == {"admit": 3, "shed": 1}
        assert summary.per_track_instants == {"serve": {"admit": 3, "shed": 1}}
        text = format_summary(summary)
        assert "no engine stage spans" in text
        assert "admit: 3" in text

    def test_mixed_trace_keeps_instant_track_attribution(self, tmp_path):
        tr = Tracer()
        with tr.span("compute", cat="engine", track=0):
            pass
        with tr.span("compute", cat="engine", track=1):
            pass
        tr.instant("redrain", cat="serve", track="serve")
        tr.instant("hedge", cat="serve", track="serve")
        tr.instant("hedge", cat="serve", track="serve")
        path = tr.export(tmp_path / "mixed.json")
        summary = summarize_trace(load_trace(path))
        # The instant-only track shows up alongside the span tracks.
        assert "serve" in summary.tracks()
        assert summary.per_track_instants["serve"] == {"redrain": 1, "hedge": 2}
        assert "serve" not in summary.per_track  # no durations there
        text = format_summary(summary)
        assert "track: serve" in text
        assert "hedge: 2" in text

    def test_cli_exits_zero_on_instant_only_trace(self, tmp_path, capsys):
        from repro.cli import main

        tr = Tracer()
        tr.instant("evict", cat="serve", track="serve")
        path = tr.export(tmp_path / "only.json")
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "evict: 1" in out


class TestNullTracer:
    def test_disabled_and_records_nothing(self):
        nt = NullTracer()
        assert nt.enabled is False and Tracer.enabled is True
        with nt.span("x", track=0):
            pass
        nt.complete("y", 0.0, 1.0)
        nt.instant("z")
        assert nt.events == [] and nt.sequence() == []

    def test_span_is_shared_reusable_object(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_engine_defaults_to_null_tracer(self):
        from repro.core.engine import TrainingEngine

        assert TrainingEngine.__init__.__defaults__ is not None
        # The module-level singleton is what an engine without an
        # explicit tracer consults on every step.
        assert NULL_TRACER.enabled is False
