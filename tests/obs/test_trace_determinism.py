"""Deterministic-trace golden tests.

The same seed and fault plan must replay the same *event sequence* —
``Tracer.sequence()``: per-track ``(track, name, step)`` tuples with
wall clock excluded — across runs.  Two scenarios are pinned:

* an elastic run through a rank crash, quorum loss, and a checkpoint
  restart (the full driver path: rank-failed, quorum-lost, restart);
* the staging tier under injected stage failures and slow targets
  (stage / stage-fail / hedge / fallback instants).

Only *crash* faults are used: hang-driven evictions depend on real
timeouts and are legitimately timing-sensitive.
"""

import numpy as np

from repro.core.distributed import DistributedConfig
from repro.core.elastic import ElasticConfig, ElasticTrainer
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.io.dataset import write_dataset
from repro.io.staging import StagingConfig, StagingManager
from repro.obs import Tracer
from repro.utils.retry import RetryPolicy

OPT = OptimizerConfig(eta0=5e-3, decay_steps=50)


def make_dataset(n, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, 16, 16, 16)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


def traced_elastic_run(ckpt_dir):
    """One seeded elastic run: crash rank 1 at step 4 with an all-rank
    quorum, forcing a checkpoint restart.  Returns the trace sequence."""
    plan = FaultPlan(events=[FaultEvent(FaultKind.RANK_CRASH, rank=1, step=4)])
    tracer = Tracer()
    trainer = ElasticTrainer(
        tiny_16(),
        make_dataset(9),
        config=DistributedConfig(n_ranks=3, epochs=3, mode="elastic", validate=False),
        optimizer_config=OPT,
        elastic=ElasticConfig(
            timeout_s=10.0,
            quorum=3,
            checkpoint_dir=str(ckpt_dir),
            checkpoint_every_epochs=1,
            max_restarts=2,
        ),
        injector=FaultInjector(plan),
        tracer=tracer,
    )
    trainer.run()
    assert trainer.group_stats["restarts"] == 1
    return tracer.sequence()


class TestElasticTraceDeterminism:
    def test_crash_restart_sequence_replays_identically(self, tmp_path):
        a = traced_elastic_run(tmp_path / "a")
        b = traced_elastic_run(tmp_path / "b")
        assert a == b

    def test_sequence_covers_failure_and_restart_events(self, tmp_path):
        seq = traced_elastic_run(tmp_path / "c")
        names = {name for _, name, _ in seq}
        assert "rank-failed" in names
        assert "quorum-lost" in names
        assert "restart" in names
        # Driver-track ordering: quorum loss precedes the restart.
        driver = [name for track, name, _ in seq if track == "driver"]
        assert driver.index("quorum-lost") < driver.index("restart")


def traced_staging_run(tmp_path, name):
    """Stage + read a small shard set under injected storage faults;
    returns (trace sequence with virtual timestamps, string event log)."""
    rng = np.random.default_rng(0)
    vols = rng.standard_normal((8, 1, 4, 4, 4)).astype(np.float32)
    tgts = rng.random((8, 3)).astype(np.float32)
    files = write_dataset(tmp_path / f"src-{name}", vols, tgts, samples_per_file=2)
    # stage ops 0-3 are stage_all's four shards (ops 0-2 fail
    # terminally with max_attempts=1); op 4 is the first read's
    # stage-on-miss retry, which also fails -> a fallback read.  Reads
    # 1 and 3 hit a slow target and hedge.
    plan = FaultPlan(
        seed=5,
        events=(
            FaultEvent(FaultKind.STAGE_FAIL, step=0),
            FaultEvent(FaultKind.STAGE_FAIL, step=1),
            FaultEvent(FaultKind.STAGE_FAIL, step=2),
            FaultEvent(FaultKind.STAGE_FAIL, step=4),
            FaultEvent(FaultKind.TARGET_SLOW, step=1, delay_s=0.5),
            FaultEvent(FaultKind.TARGET_SLOW, step=3, delay_s=0.5),
        ),
    )
    tracer = Tracer()
    mgr = StagingManager(
        tmp_path / f"bb-{name}",
        config=StagingConfig(
            retry=RetryPolicy(max_attempts=1, base_delay_s=0.01),
            hedge_budget_s=0.05,
        ),
        seed=7,
        injector=FaultInjector(plan),
        tracer=tracer,
    )
    mgr.stage_all(files)
    for f in files:
        mgr.read(f)
    sequence = [
        (e.name, e.args["file"], e.args["vts"]) for e in tracer.ordered()
    ]
    return sequence, list(mgr.events)


class TestStagingTraceDeterminism:
    def test_hedge_and_fallback_sequence_replays_identically(self, tmp_path):
        a_seq, a_log = traced_staging_run(tmp_path, "a")
        b_seq, b_log = traced_staging_run(tmp_path, "b")
        assert a_seq == b_seq  # names, files, and virtual timestamps
        assert a_log == b_log

    def test_instants_mirror_the_string_log(self, tmp_path):
        seq, log = traced_staging_run(tmp_path, "c")
        assert [f"{name}:{detail}" for name, detail, _ in seq] == log
        kinds = {name for name, _, _ in seq}
        assert "stage-fail" in kinds
        assert "hedge" in kinds
        assert "fallback" in kinds
