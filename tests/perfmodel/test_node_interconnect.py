"""Tests for the node and interconnect models."""

import numpy as np
import pytest

from repro.perfmodel.interconnect import PAPER_COMM, InterconnectSpec, aries_plugin
from repro.perfmodel.node import NodeSpec, knl_node, p100_node


class TestNodeSpec:
    def test_knl_step_time_matches_paper(self):
        """535 Gflop/s on 69.33 Gflop -> the paper's 129 ms step."""
        t = knl_node().step_compute_time(69.33e9)
        assert t == pytest.approx(0.1296, rel=0.01)

    def test_knl_samples_per_sec(self):
        """Paper: 'A single node ... achieves 7.72 samples/sec'."""
        sps = 1.0 / knl_node().step_compute_time(69.33e9)
        assert sps == pytest.approx(7.72, rel=0.01)

    def test_p100_step_time(self):
        """388 Gflop/s -> ~179 ms per sample on Piz Daint."""
        t = p100_node().step_compute_time(69.33e9)
        assert t == pytest.approx(0.1787, rel=0.01)

    def test_compute_efficiency_below_peak(self):
        for node in (knl_node(), p100_node()):
            assert 0.0 < node.compute_efficiency < 0.2

    def test_batch_scales_linearly(self):
        n = knl_node()
        assert n.step_compute_time(1e9, batch_size=4) == pytest.approx(
            4 * n.step_compute_time(1e9)
        )

    def test_jitter_sampling(self):
        node = NodeSpec("t", 1e9, 1e10, jitter_sigma=0.1)
        rng = np.random.default_rng(0)
        times = [node.sample_compute_time(1e9, rng=rng) for _ in range(200)]
        assert np.mean(times) == pytest.approx(1.0, rel=0.05)
        assert np.std(times) > 0.01

    def test_zero_jitter_deterministic(self):
        node = NodeSpec("t", 1e9, 1e10, jitter_sigma=0.0)
        assert node.sample_compute_time(1e9) == node.step_compute_time(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeSpec("t", 0.0, 1e10)
        with pytest.raises(ValueError):
            NodeSpec("t", 1e12, 1e10)  # sustained > peak
        with pytest.raises(ValueError):
            NodeSpec("t", 1e9, 1e10, jitter_sigma=-0.1)
        with pytest.raises(ValueError):
            knl_node().step_compute_time(0.0)
        with pytest.raises(ValueError):
            knl_node().step_compute_time(1e9, batch_size=0)


class TestInterconnect:
    def test_calibration_points(self):
        """The model passes exactly through the paper's two measured
        bandwidths."""
        ic = aries_plugin()
        assert ic.bandwidth_Bps(1024) == pytest.approx(1.7e9, rel=1e-6)
        assert ic.bandwidth_Bps(8192) == pytest.approx(1.42e9, rel=1e-6)

    def test_allreduce_latency_at_1024(self):
        """Paper: 'the latency from gradient aggregation is 33 ms' at
        1024 nodes for the 28.15 MB model."""
        t = aries_plugin().allreduce_time_s(1024, PAPER_COMM["model_bytes"])
        assert t == pytest.approx(0.033, rel=0.02)

    def test_allreduce_at_8192(self):
        """2 x 28.15 MB / 1.42 GB/s ~ 39.6 ms."""
        t = aries_plugin().allreduce_time_s(8192, PAPER_COMM["model_bytes"])
        assert t == pytest.approx(0.0396, rel=0.03)

    def test_single_rank_free(self):
        assert aries_plugin().allreduce_time_s(1, 28.15e6) == 0.0

    def test_bandwidth_capped_at_peak(self):
        ic = aries_plugin()
        assert ic.bandwidth_Bps(2) <= ic.peak_bandwidth_Bps

    def test_bandwidth_decays_with_scale(self):
        ic = aries_plugin()
        assert ic.bandwidth_Bps(256) > ic.bandwidth_Bps(4096)

    def test_helper_threads_scale_bandwidth(self):
        base = aries_plugin().bandwidth_Bps(1024)
        doubled = aries_plugin(helper_thread_scale=2.0).bandwidth_Bps(1024)
        assert doubled == pytest.approx(2 * base, rel=1e-6)

    def test_time_monotone_in_message(self):
        ic = aries_plugin()
        assert ic.allreduce_time_s(1024, 1e6) < ic.allreduce_time_s(1024, 1e8)

    def test_validation(self):
        with pytest.raises(ValueError):
            InterconnectSpec("t", 0.0, 4, 0.1, 1e9)
        with pytest.raises(ValueError):
            InterconnectSpec("t", 1e9, 0, 0.1, 1e9)
        with pytest.raises(ValueError):
            aries_plugin().bandwidth_Bps(0)
        with pytest.raises(ValueError):
            aries_plugin().allreduce_time_s(4, -1.0)
