"""Tests for the reliability (MTBF) term of the performance model."""

import pytest

from repro.perfmodel.cluster import FullScaleRun, cori_datawarp_machine


class TestSystemMtbf:
    def test_scales_inversely_with_nodes(self):
        m = cori_datawarp_machine(node_mtbf_hours=43_800.0)
        assert m.system_mtbf_hours(1) == 43_800.0
        assert m.system_mtbf_hours(8192) == pytest.approx(43_800.0 / 8192)

    def test_disabled_by_default(self):
        m = cori_datawarp_machine()
        assert m.system_mtbf_hours(8192) == float("inf")
        assert m.expected_failures(8192, 3600.0) == 0.0

    def test_expected_failures_linear_in_duration(self):
        m = cori_datawarp_machine(node_mtbf_hours=43_800.0)
        one_hour = m.expected_failures(8192, 3600.0)
        assert one_hour == pytest.approx(8192 / 43_800.0)
        assert m.expected_failures(8192, 7200.0) == pytest.approx(2 * one_hour)

    def test_validation(self):
        with pytest.raises(ValueError):
            cori_datawarp_machine(node_mtbf_hours=-1.0)
        m = cori_datawarp_machine(node_mtbf_hours=1.0)
        with pytest.raises(ValueError):
            m.system_mtbf_hours(0)
        with pytest.raises(ValueError):
            m.expected_failures(4, -1.0)


class TestFullScaleRestarts:
    def test_paper_run_is_short_enough_to_usually_survive(self):
        """The flagship ~9-minute run: < 5% expected failures — but a
        day of such runs sees several, which is the elastic trainer's
        reason to exist."""
        run = FullScaleRun(
            cori_datawarp_machine(node_mtbf_hours=43_800.0), seed=1
        ).run()
        assert 0.0 < run.expected_restarts < 0.05
        per_day = run.expected_restarts * 86400.0 / run.training_time_s
        assert per_day > 1.0

    def test_zero_without_mtbf(self):
        run = FullScaleRun(cori_datawarp_machine(), seed=1).run()
        assert run.expected_restarts == 0.0
