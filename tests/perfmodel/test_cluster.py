"""Tests for the assembled cluster model — including the checks against
every published number of the paper's Sections V-C, V-D and VI."""

import numpy as np
import pytest

from repro.perfmodel.cluster import (
    ClusterModel,
    FullScaleRun,
    cori_datawarp_machine,
    cori_lustre_machine,
    pizdaint_lustre_machine,
)


@pytest.fixture
def bb():
    return cori_datawarp_machine(straggler_exposure=0.0)


@pytest.fixture
def lustre():
    return cori_lustre_machine(straggler_exposure=0.0)


@pytest.fixture
def pizdaint():
    return pizdaint_lustre_machine(straggler_exposure=0.0)


class TestPaperStepTimes:
    def test_single_node_129ms(self, bb):
        assert bb.step_time_s(1) == pytest.approx(0.1296, rel=0.01)

    def test_1024_nodes_162ms(self, bb):
        """Paper: 'At 1024 nodes, each node achieves 6.19 samples/sec or
        a step time of 162 ms.'"""
        assert bb.step_time_s(1024) == pytest.approx(0.162, rel=0.02)

    def test_8192_nodes_168ms(self, bb):
        """Paper: 'Each node for the 8192 node job achieved 5.96
        samples/sec or a step time of 168 ms.'"""
        assert bb.step_time_s(8192) == pytest.approx(0.168, rel=0.02)

    def test_lustre_128_nodes_179ms(self, lustre):
        """Paper: 'The step time at 128 nodes is 150 ms using DataWarp
        and 179 ms using Lustre.'"""
        assert lustre.step_time_s(128) == pytest.approx(0.179, rel=0.02)

    def test_bb_beats_lustre_at_128_by_16pct(self, bb, lustre):
        """Paper: 'absolute performance is 16% better using DataWarp at
        128 MPI ranks'."""
        gain = lustre.step_time_s(128) / bb.step_time_s(128) - 1.0
        assert 0.10 < gain < 0.22


class TestPaperScaling:
    def test_bb_77pct_at_8192(self, bb):
        assert bb.efficiency(8192) == pytest.approx(0.77, abs=0.02)

    def test_bb_speedup_6324x(self, bb):
        """Paper: '77% parallel efficiency relative to a single node
        (6324X speedup)'."""
        assert bb.speedup(8192) == pytest.approx(6324, rel=0.03)

    def test_sustained_3_5_pflops(self, bb):
        """Paper: 'slightly over 3.5 Pflop/s'. Our model gives 3.35-3.5
        (the paper's own numbers are not perfectly consistent:
        8192 x 69.33 Gflop / 0.168 s = 3.38 Pflop/s)."""
        assert bb.sustained_flops(8192) / 1e15 == pytest.approx(3.4, abs=0.15)

    def test_lustre_knee_at_1024(self, lustre):
        """Paper: 'efficiency dropping to less than 58% at 1024 nodes'."""
        assert lustre.efficiency(1024) == pytest.approx(0.58, abs=0.02)
        assert lustre.efficiency(512) > lustre.efficiency(1024)

    def test_lustre_poor_beyond_512(self, lustre, bb):
        for n in (1024, 2048):
            assert lustre.efficiency(n) < bb.efficiency(n) - 0.15

    def test_pizdaint_44pct_at_512(self, pizdaint):
        """Paper: 'the scaling efficiency drops to 44% at 512 node
        count' on Piz Daint Lustre."""
        assert pizdaint.efficiency(512) == pytest.approx(0.44, abs=0.03)

    def test_dummy_data_removes_io_bottleneck(self):
        """Paper's diagnostic: 'tests with dummy data ... suggest that
        I/O causes significant scaling drop'."""
        lustre = cori_lustre_machine(straggler_exposure=0.0)
        dummy = cori_lustre_machine(straggler_exposure=0.0, filesystem=None)
        assert dummy.efficiency(1024) > lustre.efficiency(1024) + 0.15

    def test_efficiency_monotone_decreasing(self, bb):
        effs = [bb.efficiency(n) for n in (1, 64, 512, 4096, 8192)]
        assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))


class TestFullScaleRun:
    def test_flagship_run_numbers(self):
        """Section V-D: 3.35 +- 0.32 s epochs, ~8 min training, 77%."""
        run = FullScaleRun(cori_datawarp_machine(), seed=1).run()
        assert run.mean_epoch_s == pytest.approx(3.35, rel=0.08)
        assert 0.1 < run.std_epoch_s < 0.6
        assert run.training_time_s / 60 == pytest.approx(8.0, rel=0.15)
        assert run.parallel_efficiency == pytest.approx(0.77, abs=0.03)
        assert run.sustained_pflops == pytest.approx(3.4, abs=0.2)

    def test_epoch_count(self):
        run = FullScaleRun(cori_datawarp_machine(), epochs=10, seed=0).run()
        assert len(run.epoch_times) == 10


class TestModelMechanics:
    def test_io_stall_zero_when_fast(self, bb):
        assert bb.io_stall_s(1) == 0.0
        assert bb.io_stall_s(8192) == 0.0

    def test_io_stall_positive_when_slow(self, lustre):
        assert lustre.io_stall_s(1024) > 0.0

    def test_dummy_data_no_read_time(self):
        m = cori_lustre_machine(filesystem=None)
        assert m.io_read_time_s(1024) == 0.0

    def test_straggler_increases_compute(self):
        base = cori_datawarp_machine(straggler_exposure=0.0)
        strag = cori_datawarp_machine(straggler_exposure=1.0)
        assert strag.compute_time_s(8192) > base.compute_time_s(8192)
        assert strag.compute_time_s(1) == pytest.approx(base.compute_time_s(1))

    def test_steps_per_epoch(self, bb):
        assert bb.steps_per_epoch(8192, 8192 * 20) == 20

    def test_steps_per_epoch_too_few_samples(self, bb):
        with pytest.raises(ValueError):
            bb.steps_per_epoch(100, 50)

    def test_epoch_noise_sampling(self, bb):
        rng = np.random.default_rng(0)
        times = {bb.epoch_time_s(8192, 8192 * 20, rng=rng) for _ in range(5)}
        assert len(times) == 5

    def test_sweep_rows(self, bb):
        points = bb.sweep([1, 16, 64])
        assert [p.n_nodes for p in points] == [1, 16, 64]
        assert points[0].efficiency == pytest.approx(1.0)
        for p in points:
            assert p.step_time_s > 0 and p.sustained_flops > 0

    def test_validation(self, bb):
        with pytest.raises(ValueError):
            bb.step_time_s(0)
        with pytest.raises(ValueError):
            ClusterModel(
                node=bb.node, interconnect=bb.interconnect, flops_per_sample=-1.0
            )
        with pytest.raises(ValueError):
            ClusterModel(node=bb.node, interconnect=bb.interconnect, batch_per_node=0)
        with pytest.raises(ValueError):
            ClusterModel(
                node=bb.node, interconnect=bb.interconnect, straggler_exposure=2.0
            )


class TestCompressedComm:
    def test_default_wire_bytes_are_dense(self, bb):
        assert bb.compression == "none"
        assert bb.compression_ratio == 1.0
        assert bb.wire_model_bytes == bb.model_bytes

    def test_fp16_halves_comm_time(self, bb):
        half = cori_datawarp_machine(straggler_exposure=0.0, compression="fp16")
        assert half.wire_model_bytes == bb.model_bytes / 2
        # Bandwidth term shrinks; latency structure is untouched, so
        # the saving is positive but less than 2x end to end.
        assert half.comm_time_s(1024) < bb.comm_time_s(1024)

    def test_topk_wire_ratio(self, bb):
        topk = cori_datawarp_machine(
            straggler_exposure=0.0, compression="topk", topk_fraction=0.1
        )
        assert topk.compression_ratio == pytest.approx(0.2)
        assert topk.wire_model_bytes == pytest.approx(0.2 * bb.model_bytes)
        assert topk.comm_time_s(1024) < bb.comm_time_s(1024)

    def test_unknown_compression_rejected(self):
        with pytest.raises(ValueError):
            cori_datawarp_machine(compression="zip")
