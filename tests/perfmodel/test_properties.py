"""Property-based invariants of the performance model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel import (
    aries_plugin,
    cori_datawarp_machine,
    cori_lustre_machine,
    pizdaint_lustre_machine,
)

MACHINES = {
    "bb": cori_datawarp_machine,
    "lustre": cori_lustre_machine,
    "pizdaint": pizdaint_lustre_machine,
}

node_counts = st.integers(min_value=1, max_value=16384)


class TestClusterInvariants:
    @pytest.mark.parametrize("factory", MACHINES.values(), ids=MACHINES.keys())
    @given(n=node_counts)
    @settings(max_examples=30, deadline=None)
    def test_speedup_bounded_by_node_count(self, factory, n):
        m = factory()
        assert 0.0 < m.speedup(n) <= n + 1e-9

    @pytest.mark.parametrize("factory", MACHINES.values(), ids=MACHINES.keys())
    @given(n=node_counts)
    @settings(max_examples=30, deadline=None)
    def test_efficiency_in_unit_interval(self, factory, n):
        m = factory()
        assert 0.0 < m.efficiency(n) <= 1.0 + 1e-9

    @pytest.mark.parametrize("factory", MACHINES.values(), ids=MACHINES.keys())
    @given(n=st.integers(min_value=1, max_value=8192))
    @settings(max_examples=20, deadline=None)
    def test_step_time_never_below_single_node_compute(self, factory, n):
        m = factory()
        assert m.step_time_s(n) >= m.compute_time_s(1) - 1e-12

    @pytest.mark.parametrize("factory", MACHINES.values(), ids=MACHINES.keys())
    def test_efficiency_monotone_nonincreasing(self, factory):
        m = factory()
        effs = [m.efficiency(n) for n in (1, 2, 8, 64, 512, 2048, 8192)]
        assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))

    @given(n=node_counts)
    @settings(max_examples=30, deadline=None)
    def test_dummy_data_at_least_as_fast(self, n):
        real = cori_lustre_machine()
        dummy = cori_lustre_machine(filesystem=None)
        assert dummy.step_time_s(n) <= real.step_time_s(n) + 1e-12

    @given(n=node_counts)
    @settings(max_examples=30, deadline=None)
    def test_step_decomposition_consistent(self, n):
        m = cori_lustre_machine()
        total = m.step_time_s(n)
        parts = m.compute_time_s(n) + m.comm_time_s(n) + m.io_stall_s(n)
        assert total == pytest.approx(parts, rel=1e-12)


class TestInterconnectInvariants:
    @given(
        p=st.integers(min_value=2, max_value=65536),
        mb=st.floats(min_value=0.001, max_value=1000.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_allreduce_time_positive_and_bandwidth_bounded(self, p, mb):
        ic = aries_plugin()
        t = ic.allreduce_time_s(p, mb * 1e6)
        assert t > 0
        # effective bandwidth can never exceed the Aries peak
        volume = 2 * mb * 1e6 * (p - 1) / p
        assert volume / t <= ic.peak_bandwidth_Bps * 1.01

    @given(p=st.integers(min_value=2, max_value=65536))
    @settings(max_examples=30, deadline=None)
    def test_bandwidth_monotone_nonincreasing_in_ranks(self, p):
        ic = aries_plugin()
        assert ic.bandwidth_Bps(p) >= ic.bandwidth_Bps(2 * p) - 1e-9
