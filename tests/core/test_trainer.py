"""Tests for the single-process trainer."""

import numpy as np
import pytest

from repro.comm.plugin import MLPlugin
from repro.comm.serial import SerialCommunicator
from repro.core.model import CosmoFlowModel
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData, Trainer, TrainerConfig, random_cube_symmetry


def make_dataset(n=8, seed=0, size=16):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, size, size, size)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


class TestInMemoryData:
    def test_len(self):
        assert len(make_dataset(5)) == 5

    def test_batches_cover_all(self):
        data = make_dataset(7)
        seen = sum(len(x) for x, _ in data.batches(2, shuffle=False))
        assert seen == 7

    def test_last_batch_short(self):
        sizes = [len(x) for x, _ in make_dataset(7).batches(3, shuffle=False)]
        assert sizes == [3, 3, 1]

    def test_shuffle_deterministic(self):
        data = make_dataset(8)
        a = [y for _, y in data.batches(1, rng=np.random.default_rng(1))]
        b = [y for _, y in data.batches(1, rng=np.random.default_rng(1))]
        np.testing.assert_array_equal(np.concatenate(a), np.concatenate(b))

    def test_no_shuffle_preserves_order(self):
        data = make_dataset(4)
        ys = np.concatenate([y for _, y in data.batches(1, shuffle=False)])
        np.testing.assert_array_equal(ys, data.y)

    def test_shard_partition(self):
        data = make_dataset(10)
        shards = [data.shard(r, 3) for r in range(3)]
        assert sum(len(s) for s in shards) == 10
        np.testing.assert_array_equal(shards[1].y, data.y[1::3])

    def test_shard_bad_rank(self):
        with pytest.raises(ValueError):
            make_dataset(4).shard(3, 3)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            InMemoryData(np.zeros((2, 1, 4, 4, 4)), np.zeros((3, 3)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            InMemoryData(np.zeros((0, 1, 4, 4, 4)), np.zeros((0, 3)))

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(make_dataset(4).batches(0))


class TestAugmentation:
    def test_preserves_multiset_of_values(self):
        rng = np.random.default_rng(0)
        v = rng.standard_normal((1, 4, 4, 4)).astype(np.float32)
        out = random_cube_symmetry(v, np.random.default_rng(1))
        assert out.shape == v.shape
        np.testing.assert_allclose(np.sort(out.ravel()), np.sort(v.ravel()))

    def test_identity_possible(self):
        """Some draws are the identity transform."""
        v = np.arange(8, dtype=np.float32).reshape(1, 2, 2, 2)
        seen_identity = any(
            np.array_equal(random_cube_symmetry(v, np.random.default_rng(s)), v)
            for s in range(200)
        )
        assert seen_identity

    def test_nontrivial_transforms_occur(self):
        v = np.arange(27, dtype=np.float32).reshape(1, 3, 3, 3)
        outs = {random_cube_symmetry(v, np.random.default_rng(s)).tobytes() for s in range(50)}
        assert len(outs) > 5  # many distinct group elements sampled

    def test_deterministic_given_rng(self):
        v = np.arange(8, dtype=np.float32).reshape(1, 2, 2, 2)
        a = random_cube_symmetry(v, np.random.default_rng(7))
        b = random_cube_symmetry(v, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_channel_axis_untouched(self):
        rng = np.random.default_rng(2)
        v = rng.standard_normal((3, 2, 2, 2)).astype(np.float32)
        out = random_cube_symmetry(v, np.random.default_rng(3))
        # per-channel value multisets preserved -> channels not mixed
        for c in range(3):
            np.testing.assert_allclose(np.sort(out[c].ravel()), np.sort(v[c].ravel()))

    def test_bad_rank_raises(self):
        with pytest.raises(ValueError):
            random_cube_symmetry(np.zeros((2, 2, 2)), np.random.default_rng(0))

    def test_dataset_augment_flag(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((4, 1, 3, 3, 3)).astype(np.float32)
        y = rng.random((4, 3)).astype(np.float32)
        plain = InMemoryData(x, y)
        aug = InMemoryData(x, y, augment=True)
        xp = np.concatenate([b for b, _ in plain.batches(1, shuffle=False)])
        xa = np.concatenate([b for b, _ in aug.batches(1, rng=np.random.default_rng(5), shuffle=False)])
        np.testing.assert_array_equal(xp, x)
        assert not np.array_equal(xa, x)  # some volume transformed
        # targets unchanged by augmentation
        ya = np.concatenate([t for _, t in aug.batches(1, shuffle=False)])
        np.testing.assert_array_equal(ya, y)

    def test_shard_inherits_augment(self):
        x = np.zeros((4, 1, 2, 2, 2), dtype=np.float32)
        y = np.zeros((4, 3), dtype=np.float32)
        assert InMemoryData(x, y, augment=True).shard(0, 2).augment


class TestTrainer:
    def test_loss_decreases(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        trainer = Trainer(
            model,
            make_dataset(8),
            optimizer_config=OptimizerConfig(eta0=5e-3, decay_steps=100),
            config=TrainerConfig(epochs=6, validate=False),
        )
        hist = trainer.run()
        assert len(hist.train_loss) == 6
        assert hist.train_loss[-1] < hist.train_loss[0]

    def test_validation_tracked(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        trainer = Trainer(
            model,
            make_dataset(6),
            val_data=make_dataset(4, seed=9),
            config=TrainerConfig(epochs=2),
        )
        hist = trainer.run()
        assert len(hist.val_loss) == 2
        assert all(np.isfinite(v) for v in hist.val_loss)

    def test_no_val_data_gives_nan(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        trainer = Trainer(model, make_dataset(4), config=TrainerConfig(epochs=1))
        hist = trainer.run()
        assert np.isnan(hist.val_loss[0])

    def test_validate_without_data_raises(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        trainer = Trainer(model, make_dataset(4), config=TrainerConfig(epochs=1))
        with pytest.raises(RuntimeError):
            trainer.validate()

    def test_stage_timer_populated(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        trainer = Trainer(model, make_dataset(4), config=TrainerConfig(epochs=1, validate=False))
        trainer.run()
        assert "compute" in trainer.timer.stages
        assert "optimizer" in trainer.timer.stages
        assert trainer.timer.stages["compute"].total > 0

    def test_throughput(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        trainer = Trainer(model, make_dataset(4), config=TrainerConfig(epochs=1, validate=False))
        assert trainer.throughput()["samples_per_sec"] == 0.0
        trainer.run()
        tp = trainer.throughput()
        assert tp["samples_per_sec"] > 0
        assert tp["flops_per_sec"] == pytest.approx(
            tp["samples_per_sec"] * model.flops_per_sample()
        )

    def test_with_single_rank_plugin(self):
        """Paper-style: plugin enabled even on a single node."""
        model = CosmoFlowModel(tiny_16(), seed=0)
        plugin = MLPlugin(SerialCommunicator())
        trainer = Trainer(
            model,
            make_dataset(4),
            val_data=make_dataset(2, seed=5),
            config=TrainerConfig(epochs=2),
            plugin=plugin,
        )
        hist = trainer.run()
        assert plugin.stats.calls == 8  # 4 samples x 2 epochs, batch 1
        assert "comm" in trainer.timer.stages
        assert len(hist.train_loss) == 2

    def test_plugin_does_not_change_numerics(self):
        """A single-rank plugin must be a numerical no-op."""
        a = CosmoFlowModel(tiny_16(), seed=0)
        b = CosmoFlowModel(tiny_16(), seed=0)
        data = make_dataset(4)
        cfg = TrainerConfig(epochs=2, validate=False, seed=11)
        Trainer(a, data, config=cfg, optimizer_config=OptimizerConfig()).run()
        Trainer(
            b,
            data,
            config=cfg,
            optimizer_config=OptimizerConfig(),
            plugin=MLPlugin(SerialCommunicator()),
        ).run()
        np.testing.assert_allclose(
            a.get_flat_parameters(), b.get_flat_parameters(), rtol=1e-6, atol=1e-7
        )

    def test_optimizer_and_config_conflict(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        from repro.core.optimizer import CosmoFlowOptimizer

        opt = CosmoFlowOptimizer(model.parameter_arrays())
        with pytest.raises(ValueError):
            Trainer(model, make_dataset(4), optimizer=opt, optimizer_config=OptimizerConfig())

    def test_history_lr_recorded(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        trainer = Trainer(
            model,
            make_dataset(4),
            optimizer_config=OptimizerConfig(decay_steps=8),
            config=TrainerConfig(epochs=2, validate=False),
        )
        hist = trainer.run()
        assert hist.lr[0] == pytest.approx(2e-3)
        assert hist.lr[1] < hist.lr[0]

    def test_history_as_dict(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        trainer = Trainer(model, make_dataset(4), config=TrainerConfig(epochs=1, validate=False))
        d = trainer.run().as_dict()
        assert set(d) == {"train_loss", "val_loss", "epoch_time", "lr", "effective_batch"}
