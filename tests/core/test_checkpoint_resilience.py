"""Crash-safety and integrity guarantees of the checkpoint layer."""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

import repro
from repro.core.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    latest_checkpoint,
    load_checkpoint,
    load_latest_checkpoint,
    prune_checkpoints,
    save_checkpoint,
    sweep_stale_tmp,
)
from repro.core.model import CosmoFlowModel
from repro.core.optimizer import CosmoFlowOptimizer
from repro.core.topology import ConvSpec, CosmoFlowConfig

MICRO = CosmoFlowConfig(
    name="micro4ckpt",
    input_size=4,
    conv_layers=(ConvSpec(16, 2),),
    fc_sizes=(8,),
    n_outputs=3,
)


def make_model():
    model = CosmoFlowModel(MICRO, seed=0)
    opt = CosmoFlowOptimizer(model.parameter_arrays())
    return model, opt


class TestAtomicSave:
    def test_no_tmp_leftover(self, tmp_path):
        model, opt = make_model()
        path = save_checkpoint(tmp_path / "ckpt", model, opt)
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_overwrite_is_atomic_content_swap(self, tmp_path):
        model, opt = make_model()
        path = save_checkpoint(tmp_path / "ckpt", model, opt)
        flat_before = model.get_flat_parameters().copy()
        # Mutate and re-save over the same name.
        model.set_flat_parameters(flat_before + 1.0)
        save_checkpoint(tmp_path / "ckpt", model, opt)
        fresh, fopt = make_model()
        load_checkpoint(path, fresh, fopt)
        np.testing.assert_array_equal(fresh.get_flat_parameters(), flat_before + 1.0)

    def test_roundtrip_with_crc(self, tmp_path):
        model, opt = make_model()
        path = save_checkpoint(tmp_path / "ckpt", model, opt)
        with np.load(path) as data:
            assert "payload_crc32" in data.files
        fresh, fopt = make_model()
        fresh.set_flat_parameters(np.zeros_like(fresh.get_flat_parameters()))
        load_checkpoint(path, fresh, fopt)
        np.testing.assert_array_equal(
            fresh.get_flat_parameters(), model.get_flat_parameters()
        )


class TestCorruptionDetection:
    def test_bitflip_detected(self, tmp_path):
        model, opt = make_model()
        path = save_checkpoint(tmp_path / "ckpt", model, opt)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # bit-rot in the middle of the archive
        path.write_bytes(bytes(data))
        fresh, fopt = make_model()
        with pytest.raises(CheckpointCorruptError) as ei:
            load_checkpoint(path, fresh, fopt)
        assert ei.value.path == path

    def test_truncation_detected(self, tmp_path):
        model, opt = make_model()
        path = save_checkpoint(tmp_path / "ckpt", model, opt)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        fresh, fopt = make_model()
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path, fresh, fopt)

    def test_garbage_file_detected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a checkpoint at all")
        model, opt = make_model()
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path, model, opt)

    def test_missing_file_is_not_corruption(self, tmp_path):
        model, _ = make_model()
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "absent.npz", model)

    def test_corrupt_error_is_checkpoint_error(self):
        assert issubclass(CheckpointCorruptError, CheckpointError)
        assert issubclass(CheckpointError, ValueError)


class TestLatestCheckpoint:
    def test_orders_by_name(self, tmp_path):
        model, opt = make_model()
        for step in (3, 12, 7):
            save_checkpoint(tmp_path / f"ckpt-{step:06d}", model, opt)
        latest = latest_checkpoint(tmp_path)
        assert latest is not None
        assert latest.name == "ckpt-000012.npz"

    def test_ignores_tmp_files(self, tmp_path):
        model, opt = make_model()
        save_checkpoint(tmp_path / "ckpt-000001", model, opt)
        (tmp_path / "ckpt-000009.npz.tmp").write_bytes(b"partial")
        latest = latest_checkpoint(tmp_path, pattern="*")
        assert latest.name == "ckpt-000001.npz"

    def test_empty_or_missing_directory(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "nope") is None


def corrupt(path):
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


class TestSelfHealingLoad:
    def test_falls_back_to_newest_good_checkpoint(self, tmp_path):
        model, opt = make_model()
        flats = {}
        for step in (1, 2, 3):
            model.set_flat_parameters(
                np.full_like(model.get_flat_parameters(), float(step))
            )
            flats[step] = model.get_flat_parameters().copy()
            save_checkpoint(tmp_path / f"ckpt-{step:06d}", model, opt)
        corrupt(tmp_path / "ckpt-000003.npz")
        fresh, fopt = make_model()
        loaded = load_latest_checkpoint(tmp_path, fresh, fopt)
        assert loaded is not None and loaded.name == "ckpt-000002.npz"
        np.testing.assert_array_equal(fresh.get_flat_parameters(), flats[2])

    def test_corrupt_checkpoint_is_quarantined(self, tmp_path):
        model, opt = make_model()
        for step in (1, 2):
            save_checkpoint(tmp_path / f"ckpt-{step:06d}", model, opt)
        corrupt(tmp_path / "ckpt-000002.npz")
        fresh, fopt = make_model()
        load_latest_checkpoint(tmp_path, fresh, fopt)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["ckpt-000001.npz", "ckpt-000002.npz.corrupt"]
        # The quarantined file is out of every later *.npz scan.
        assert latest_checkpoint(tmp_path).name == "ckpt-000001.npz"

    def test_quarantine_can_be_disabled(self, tmp_path):
        model, opt = make_model()
        save_checkpoint(tmp_path / "ckpt-000001", model, opt)
        save_checkpoint(tmp_path / "ckpt-000002", model, opt)
        corrupt(tmp_path / "ckpt-000002.npz")
        fresh, fopt = make_model()
        loaded = load_latest_checkpoint(tmp_path, fresh, fopt, quarantine=False)
        assert loaded.name == "ckpt-000001.npz"
        assert (tmp_path / "ckpt-000002.npz").exists()

    def test_all_corrupt_returns_none(self, tmp_path):
        model, opt = make_model()
        save_checkpoint(tmp_path / "ckpt-000001", model, opt)
        corrupt(tmp_path / "ckpt-000001.npz")
        fresh, fopt = make_model()
        assert load_latest_checkpoint(tmp_path, fresh, fopt) is None

    def test_empty_or_missing_directory(self, tmp_path):
        model, _ = make_model()
        assert load_latest_checkpoint(tmp_path, model) is None
        assert load_latest_checkpoint(tmp_path / "nope", model) is None


def _kill_between_write_and_rename(directory, name):
    """Run a real saver process SIGKILLed between tmp write and rename.

    ``os.replace`` is swapped for a self-SIGKILL inside the child, so
    the temp file is fully written and fsync'd but never moved into
    place — the exact crash window atomic saves protect against.
    Returns the child's pid.
    """
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    script = textwrap.dedent(
        """
        import os, signal, sys
        from repro.core.checkpoint import save_checkpoint
        from repro.core.model import CosmoFlowModel
        from repro.core.topology import ConvSpec, CosmoFlowConfig

        cfg = CosmoFlowConfig(
            name="micro4ckpt", input_size=4,
            conv_layers=(ConvSpec(16, 2),), fc_sizes=(8,), n_outputs=3,
        )
        model = CosmoFlowModel(cfg, seed=0)
        os.replace = lambda a, b: os.kill(os.getpid(), signal.SIGKILL)
        save_checkpoint(sys.argv[1], model)
        """
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", script, str(directory / name)],
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == -9, proc.stderr  # died to SIGKILL, not an error
    return proc


class TestCrashWindow:
    """A writer SIGKILLed between tmp write and rename leaves only debris."""

    def test_orphan_tmp_never_shadows_previous_checkpoint(self, tmp_path):
        model, opt = make_model()
        good = model.get_flat_parameters().copy()
        save_checkpoint(tmp_path / "ckpt-000001", model, opt)

        _kill_between_write_and_rename(tmp_path, "ckpt-000002")
        orphans = list(tmp_path.glob("*.tmp"))
        assert len(orphans) == 1  # the crash really left debris behind
        assert not (tmp_path / "ckpt-000002.npz").exists()

        fresh, fopt = make_model()
        loaded = load_latest_checkpoint(tmp_path, fresh, fopt)
        assert loaded is not None and loaded.name == "ckpt-000001.npz"
        np.testing.assert_array_equal(fresh.get_flat_parameters(), good)
        # Recovery swept the dead writer's temp file.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_sweep_removes_only_dead_writers_debris(self, tmp_path):
        _kill_between_write_and_rename(tmp_path, "ckpt-000001")
        # A live writer's temp file (ours) must survive the sweep.
        live = tmp_path / f"ckpt-000009.npz.{os.getpid()}-1.tmp"
        live.write_bytes(b"in-flight save")
        # Foreign debris without a parseable pid is not ours to judge.
        foreign = tmp_path / "ckpt-000008.npz.tmp"
        foreign.write_bytes(b"unknown writer")

        removed = sweep_stale_tmp(tmp_path)
        assert len(removed) == 1 and "-" in removed[0].name
        assert live.exists()
        assert foreign.exists()

    def test_sweep_missing_directory_is_noop(self, tmp_path):
        assert sweep_stale_tmp(tmp_path / "nope") == []


class TestRetention:
    def test_prune_keeps_newest(self, tmp_path):
        model, opt = make_model()
        for step in range(5):
            save_checkpoint(tmp_path / f"ckpt-{step:06d}", model, opt)
        removed = prune_checkpoints(tmp_path, keep_last=2)
        assert sorted(p.name for p in removed) == [
            "ckpt-000000.npz", "ckpt-000001.npz", "ckpt-000002.npz",
        ]
        assert sorted(p.name for p in tmp_path.glob("*.npz")) == [
            "ckpt-000003.npz", "ckpt-000004.npz",
        ]

    def test_prune_fewer_than_keep_is_noop(self, tmp_path):
        model, opt = make_model()
        save_checkpoint(tmp_path / "ckpt-000001", model, opt)
        assert prune_checkpoints(tmp_path, keep_last=3) == []
        assert prune_checkpoints(tmp_path / "nope", keep_last=3) == []

    def test_prune_validates_keep_last(self, tmp_path):
        with pytest.raises(ValueError):
            prune_checkpoints(tmp_path, keep_last=0)
