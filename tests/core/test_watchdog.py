"""Tests for the numerical-health watchdog (NaN/Inf rollback + LR cut)."""

import math

import numpy as np
import pytest

from repro.core.engine import (
    Callback,
    EngineConfig,
    LocalBackend,
    ThreadedBackend,
    TrainingEngine,
)
from repro.core.model import CosmoFlowModel
from repro.core.optimizer import CosmoFlowOptimizer, OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData
from repro.core.watchdog import NumericalHealthError, NumericalHealthWatchdog

OPT = OptimizerConfig(eta0=5e-3, decay_steps=50)


def make_dataset(n=4, seed=0, size=16):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, size, size, size)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


def local_engine(epochs, callbacks, eta0=5e-3, n=4):
    model = CosmoFlowModel(tiny_16(), seed=0)
    optimizer = CosmoFlowOptimizer(
        model.parameter_arrays(), OptimizerConfig(eta0=eta0, decay_steps=50)
    )
    backend = LocalBackend(model, optimizer, make_dataset(n))
    engine = TrainingEngine(
        backend,
        config=EngineConfig(epochs=epochs, validate=False),
        callbacks=callbacks,
    )
    return engine, model, optimizer


class PoisonOnce(Callback):
    """Corrupts the model's parameters once, at a chosen step."""

    def __init__(self, epoch, step):
        self.epoch = epoch
        self.step = step
        self.fired = False

    def on_step_end(self, rc):
        if not self.fired and rc.epoch == self.epoch and rc.step == self.step:
            self.fired = True
            flat = rc.model.get_flat_parameters()
            flat[:8] = np.nan
            rc.model.set_flat_parameters(flat)


class TestValidation:
    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError):
            NumericalHealthWatchdog(tmp_path, lr_cut=0.0)
        with pytest.raises(ValueError):
            NumericalHealthWatchdog(tmp_path, lr_cut=1.5)
        with pytest.raises(ValueError):
            NumericalHealthWatchdog(tmp_path, max_rollbacks=-1)
        with pytest.raises(ValueError):
            NumericalHealthWatchdog(tmp_path, keep_last=0)


class TestRollback:
    def test_nan_poison_is_rolled_back_and_training_recovers(self, tmp_path):
        wd = NumericalHealthWatchdog(tmp_path, lr_cut=0.5, max_rollbacks=2)
        poison = PoisonOnce(epoch=1, step=0)
        engine, model, optimizer = local_engine(4, [poison, wd])
        hist = engine.run()
        assert poison.fired
        assert wd.rollbacks == 1
        # The poisoned epoch's mean loss is NaN; the watchdog rolled the
        # model back to the end-of-epoch-0 snapshot and training
        # finished with finite numbers and a halved LR.
        assert math.isnan(hist.train_loss[1])
        assert math.isfinite(hist.train_loss[-1])
        assert len(hist.train_loss) == 4
        assert optimizer.lr_scale == 0.5
        assert np.all(np.isfinite(model.get_flat_parameters()))

    def test_lr_scale_cuts_compound(self, tmp_path):
        wd = NumericalHealthWatchdog(tmp_path, lr_cut=0.5, max_rollbacks=3)
        poisons = [PoisonOnce(epoch=1, step=0), PoisonOnce(epoch=2, step=0)]
        engine, _, optimizer = local_engine(5, [*poisons, wd])
        engine.run()
        assert wd.rollbacks == 2
        assert optimizer.lr_scale == 0.25

    def test_first_epoch_divergence_uses_baseline_snapshot(self, tmp_path):
        """on_run_start's baseline snapshot is the rollback target when
        the very first epoch goes bad."""
        wd = NumericalHealthWatchdog(tmp_path, lr_cut=0.5, max_rollbacks=1)
        poison = PoisonOnce(epoch=0, step=0)
        engine, model, _ = local_engine(3, [poison, wd])
        hist = engine.run()
        assert wd.rollbacks == 1
        assert math.isfinite(hist.train_loss[-1])
        assert np.all(np.isfinite(model.get_flat_parameters()))

    def test_retry_budget_exhaustion_aborts_with_typed_error(self, tmp_path):
        """Real divergence: an absurd LR blows the loss up every epoch;
        after max_rollbacks the watchdog aborts cleanly."""
        wd = NumericalHealthWatchdog(tmp_path, lr_cut=1.0, max_rollbacks=1)
        engine, _, _ = local_engine(6, [wd], eta0=1e12)
        with pytest.raises(NumericalHealthError, match="still diverging"):
            engine.run()

    def test_snapshot_retention_is_pruned(self, tmp_path):
        wd = NumericalHealthWatchdog(tmp_path, keep_last=2)
        engine, _, _ = local_engine(5, [wd])
        engine.run()
        assert len(list(tmp_path.glob("*.npz"))) == 2

    def test_healthy_run_is_untouched(self, tmp_path):
        wd = NumericalHealthWatchdog(tmp_path)
        engine, _, optimizer = local_engine(3, [wd])
        ref_engine, _, _ = local_engine(3, [])
        hist = engine.run()
        ref = ref_engine.run()
        assert hist.train_loss == ref.train_loss  # bitwise
        assert wd.rollbacks == 0
        assert optimizer.lr_scale == 1.0


class TestThreadedLockstep:
    def test_all_ranks_roll_back_in_lockstep(self, tmp_path):
        """Post-aggregation loss is identical on every rank, so each
        rank takes the same rollback decision without extra collectives
        and the replicas stay bitwise identical afterwards."""
        wd = NumericalHealthWatchdog(tmp_path, lr_cut=0.5, max_rollbacks=2)

        class PoisonAllRanks(Callback):
            def on_step_end(self, rc):
                if rc.epoch == 1 and rc.step == 0:
                    flat = rc.model.get_flat_parameters()
                    flat[:8] = np.nan
                    rc.model.set_flat_parameters(flat)

        backend = ThreadedBackend(
            tiny_16(),
            make_dataset(8),
            optimizer_config=OPT,
            n_ranks=2,
        )
        engine = TrainingEngine(
            backend,
            config=EngineConfig(epochs=4, validate=False),
            callbacks=[PoisonAllRanks(), wd],
        )
        hist = engine.run()
        assert len(hist.train_loss) == 4
        assert math.isfinite(hist.train_loss[-1])
        assert np.all(np.isfinite(engine.final_model.get_flat_parameters()))
