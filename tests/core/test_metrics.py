"""Tests for metrics (the paper's relative-error definition)."""

import numpy as np
import pytest

from repro.core.metrics import PAPER_REL_ERRORS, relative_errors


class TestRelativeErrors:
    def test_exact_prediction_zero_error(self):
        theta = np.array([[0.3, 0.8, 0.95]])
        summary = relative_errors(theta, theta)
        assert summary.errors == (0.0, 0.0, 0.0)

    def test_paper_formula_denominator_is_model(self):
        """|model - true| / model, not / true."""
        pred = np.array([[2.0]])
        true = np.array([[1.0]])
        summary = relative_errors(pred, true)
        assert summary.errors[0] == pytest.approx(0.5)  # 1/2, not 1/1

    def test_averages_over_samples(self):
        pred = np.array([[1.0], [1.0]])
        true = np.array([[0.9], [1.1]])
        summary = relative_errors(pred, true)
        assert summary.errors[0] == pytest.approx(0.1)

    def test_1d_inputs_promoted(self):
        summary = relative_errors(np.array([2.0, 4.0]), np.array([1.0, 2.0]))
        assert summary.errors == (pytest.approx(0.5), pytest.approx(0.5))

    def test_named_summary(self):
        summary = relative_errors(
            np.array([[0.3, 0.8, 0.95]]),
            np.array([[0.31, 0.81, 0.96]]),
            names=("omega_m", "sigma_8", "n_s"),
        )
        d = summary.as_dict()
        assert set(d) == {"omega_m", "sigma_8", "n_s"}
        assert "omega_m" in str(summary)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            relative_errors(np.zeros((2, 3)), np.zeros((2, 2)))

    def test_name_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            relative_errors(np.ones((1, 3)), np.ones((1, 3)), names=("a",))

    def test_zero_estimate_raises(self):
        with pytest.raises(ValueError):
            relative_errors(np.zeros((1, 1)), np.ones((1, 1)))

    def test_paper_reference_values_recorded(self):
        assert PAPER_REL_ERRORS["2048_node"]["omega_m"] == 0.0022
        assert PAPER_REL_ERRORS["8192_node"]["n_s"] == 0.022
        # 2048-node run is better converged than 8192 across the board
        for key in PAPER_REL_ERRORS["2048_node"]:
            assert PAPER_REL_ERRORS["2048_node"][key] < PAPER_REL_ERRORS["8192_node"][key]
