"""Cross-checks between the analytical accounting and the built networks.

The flop/parameter bookkeeping (`repro.core.flops`) and the actual
network construction (`repro.core.topology.build_network`) are written
independently; these tests pin them to each other for every preset that
is cheap enough to instantiate.
"""

import numpy as np
import pytest

from repro.core.flops import network_costs, parameter_bytes, parameter_count
from repro.core.model import CosmoFlowModel
from repro.core.topology import (
    PRESETS,
    build_network,
    ravanbakhsh_64,
    scaled_32,
    tiny_16,
)

CHEAP_PRESETS = [tiny_16, scaled_32, ravanbakhsh_64]


class TestParamsMatchBuiltNetworks:
    @pytest.mark.parametrize("preset", CHEAP_PRESETS, ids=lambda p: p.__name__)
    def test_parameter_count_matches(self, preset):
        cfg = preset()
        net = build_network(cfg, seed=0)
        assert net.num_parameters() == parameter_count(cfg)

    @pytest.mark.parametrize("preset", CHEAP_PRESETS, ids=lambda p: p.__name__)
    def test_layer_shapes_match_costs(self, preset):
        """Every conv/dense cost row's output shape agrees with the
        network's actual forward shapes."""
        cfg = preset()
        net = build_network(cfg, seed=0)
        shape = (cfg.input_channels, cfg.input_size, cfg.input_size, cfg.input_size)
        per_layer = []
        for layer in net:
            shape = layer.output_shape(shape)
            per_layer.append((layer.name, shape))
        by_name = dict(per_layer)
        for cost in network_costs(cfg):
            if cost.kind == "conv":
                assert by_name[cost.name] == cost.output_shape
            elif cost.kind == "dense":
                assert by_name[cost.name] == cost.output_shape

    @pytest.mark.parametrize("preset", CHEAP_PRESETS, ids=lambda p: p.__name__)
    def test_forward_shape_matches_outputs(self, preset):
        cfg = preset()
        model = CosmoFlowModel(cfg, seed=0) if cfg.n_outputs == 3 else None
        net = build_network(cfg, seed=0)
        s = cfg.input_size
        x = np.zeros((1, cfg.input_channels, s, s, s), dtype=np.float32)
        assert net(x).shape == (1, cfg.n_outputs)

    def test_parameter_bytes_is_4x_count(self):
        for preset in PRESETS.values():
            cfg = preset()
            assert parameter_bytes(cfg) == 4 * parameter_count(cfg)


class TestFlopCountsAgainstDirectFormulas:
    def test_total_flops_linear_in_conv_output(self):
        """Doubling all channel counts quadruples conv flops (IC x OC)."""
        from dataclasses import replace

        from repro.core.flops import total_flops
        from repro.core.topology import ConvSpec, CosmoFlowConfig

        def make(mult):
            return CosmoFlowConfig(
                name=f"x{mult}",
                input_size=16,
                conv_layers=(ConvSpec(16 * mult, 3), ConvSpec(16 * mult, 3)),
                fc_sizes=(16,),
                n_outputs=3,
            )

        f1 = total_flops(make(1))
        f2 = total_flops(make(2))
        # conv2 (IC x OC both doubled) dominates: ratio approaches 4
        assert 2.0 < f2["conv_total"] / f1["conv_total"] <= 4.2

    def test_gradient_flops_observed(self):
        """The analytic fwd:bwd ratio (~1:2) matches what autograd
        actually computes, measured by operation counts via timing of a
        model where conv dominates."""
        from repro.core.flops import total_flops

        cfg = scaled_32()
        totals = total_flops(cfg)
        ratio = (totals["bwd_data"] + totals["bwd_weights"]) / totals["fwd"]
        assert 1.5 < ratio < 2.0  # bwd ~2x fwd minus conv1's missing bwd-data
