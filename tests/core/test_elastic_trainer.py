"""Tests for elastic fault-tolerant SSGD (the resilience tentpole).

The contract under test:

* faults disabled → bitwise identical to the pre-existing threaded
  trainer (same history, same final parameters);
* a rank crash at a fixed step → training completes over the survivors
  with the gradient average renormalized, final loss close to the
  fault-free run;
* quorum loss → restart from the last crash-safe checkpoint with the
  full rank count, consumed fault events not re-firing;
* injected I/O and comm faults never crash the trainer.
"""

import numpy as np
import pytest

from repro.comm.errors import QuorumLostError
from repro.core.distributed import DistributedConfig, DistributedTrainer
from repro.core.elastic import ElasticConfig, ElasticTrainer
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan


def make_dataset(n=8, seed=0, size=16):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, size, size, size)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


OPT = OptimizerConfig(eta0=5e-3, decay_steps=50)
FAST = ElasticConfig(timeout_s=10.0)


def run_threaded_reference(n_ranks=3, epochs=3, n=9):
    trainer = DistributedTrainer(
        tiny_16(),
        make_dataset(n),
        config=DistributedConfig(
            n_ranks=n_ranks, epochs=epochs, mode="threaded", validate=False
        ),
        optimizer_config=OPT,
    )
    hist = trainer.run()
    return hist, trainer.final_model.get_flat_parameters()


def eval_loss(model, n=12, seed=1):
    """Loss of ``model`` on a fixed held-out set (same for every run)."""
    data = make_dataset(n, seed=seed)
    return float(
        np.mean([model.validation_loss(x, y) for x, y in data.batches(1, shuffle=False)])
    )


class TestConfig:
    def test_quorum_resolution(self):
        assert ElasticConfig(quorum_fraction=0.5).resolve_quorum(8) == 4
        assert ElasticConfig(quorum=6).resolve_quorum(8) == 6
        assert ElasticConfig(quorum=99).resolve_quorum(8) == 8  # clamped
        assert ElasticConfig(quorum_fraction=0.01).resolve_quorum(2) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ElasticConfig(timeout_s=0)
        with pytest.raises(ValueError):
            ElasticConfig(quorum_fraction=0.0)
        with pytest.raises(ValueError):
            ElasticConfig(max_restarts=-1)
        with pytest.raises(ValueError):
            ElasticConfig(join_timeout_s=0.0)

    def test_join_unbounded_by_default(self):
        # A healthy run must never be wall-clock capped by the join
        # (the collective timeout is a heartbeat, not a run bound).
        assert ElasticConfig().join_timeout_s is None


class TestBitwiseIdentity:
    def test_fault_free_matches_threaded_exactly(self):
        ref_hist, ref_params = run_threaded_reference()
        trainer = ElasticTrainer(
            tiny_16(),
            make_dataset(9),
            config=DistributedConfig(
                n_ranks=3, epochs=3, mode="elastic", validate=False
            ),
            optimizer_config=OPT,
            elastic=FAST,
        )
        hist = trainer.run()
        assert hist.train_loss == ref_hist.train_loss  # bitwise, not approx
        assert hist.lr == ref_hist.lr
        np.testing.assert_array_equal(
            trainer.final_model.get_flat_parameters(), ref_params
        )
        assert trainer.group_stats["restarts"] == 0
        assert trainer.group_stats["failed_ranks"] == []

    def test_mode_elastic_on_plain_trainer(self):
        """DistributedConfig(mode="elastic") works without the subclass."""
        ref_hist, ref_params = run_threaded_reference()
        trainer = DistributedTrainer(
            tiny_16(),
            make_dataset(9),
            config=DistributedConfig(
                n_ranks=3, epochs=3, mode="elastic", validate=False
            ),
            optimizer_config=OPT,
        )
        hist = trainer.run()
        assert hist.train_loss == ref_hist.train_loss
        np.testing.assert_array_equal(
            trainer.final_model.get_flat_parameters(), ref_params
        )


class TestCrashSurvival:
    def test_rank_crash_completes_over_survivors(self):
        epochs, n_ranks, n = 6, 4, 16
        ref_trainer = DistributedTrainer(
            tiny_16(),
            make_dataset(n),
            config=DistributedConfig(
                n_ranks=n_ranks, epochs=epochs, mode="threaded", validate=False
            ),
            optimizer_config=OPT,
        )
        ref_trainer.run()
        ref_loss = eval_loss(ref_trainer.final_model)
        # Crash rank 3 at a fixed late step (epoch 4 of 6): survivors
        # finish the remaining ~5 epochs-worth of steps without it.
        plan = FaultPlan(
            seed=42,
            events=[FaultEvent(FaultKind.RANK_CRASH, rank=3, step=19)],
        )
        trainer = ElasticTrainer(
            tiny_16(),
            make_dataset(n),
            config=DistributedConfig(
                n_ranks=n_ranks, epochs=epochs, mode="elastic", validate=False
            ),
            optimizer_config=OPT,
            elastic=FAST,
            injector=FaultInjector(plan),
        )
        hist = trainer.run()
        assert len(hist.train_loss) == epochs  # all epochs completed
        stats = trainer.group_stats
        assert stats["failed_ranks"] == [3]
        assert stats["survivors"] == [0, 1, 2]
        assert stats["faults_injected"] == {"rank_crash": 1}
        # Acceptance criterion: held-out loss within 10% of fault-free.
        assert eval_loss(trainer.final_model) == pytest.approx(ref_loss, rel=0.10)

    def test_rank0_crash_still_returns_model(self):
        plan = FaultPlan(events=[FaultEvent(FaultKind.RANK_CRASH, rank=0, step=2)])
        trainer = ElasticTrainer(
            tiny_16(),
            make_dataset(9),
            config=DistributedConfig(
                n_ranks=3, epochs=2, mode="elastic", validate=False
            ),
            optimizer_config=OPT,
            elastic=FAST,
            injector=FaultInjector(plan),
        )
        hist = trainer.run()
        assert len(hist.train_loss) == 2
        assert trainer.final_model is not None
        assert trainer.group_stats["survivors"] == [1, 2]

    def test_straggler_rank_is_evicted(self):
        plan = FaultPlan(
            events=[FaultEvent(FaultKind.RANK_HANG, rank=1, step=3, delay_s=2.0)]
        )
        trainer = ElasticTrainer(
            tiny_16(),
            make_dataset(9),
            config=DistributedConfig(
                n_ranks=3, epochs=2, mode="elastic", validate=False
            ),
            optimizer_config=OPT,
            elastic=ElasticConfig(timeout_s=0.3),
            injector=FaultInjector(plan),
        )
        hist = trainer.run()
        assert len(hist.train_loss) == 2
        assert trainer.group_stats["evicted_ranks"] == [1]
        assert trainer.group_stats["survivors"] == [0, 2]

    def test_message_corruption_recovered_bitwise(self):
        ref_hist, ref_params = run_threaded_reference()
        # step is a global *training* step (epoch 1, step 2 of 3 here):
        # the rank's first gradient contribution of that step is flipped.
        plan = FaultPlan(
            events=[FaultEvent(FaultKind.MESSAGE_CORRUPT, rank=1, step=5)]
        )
        trainer = ElasticTrainer(
            tiny_16(),
            make_dataset(9),
            config=DistributedConfig(
                n_ranks=3, epochs=3, mode="elastic", validate=False
            ),
            optimizer_config=OPT,
            elastic=FAST,
            injector=FaultInjector(plan),
        )
        hist = trainer.run()
        # Retransmission makes corruption invisible to the numerics.
        assert hist.train_loss == ref_hist.train_loss
        np.testing.assert_array_equal(
            trainer.final_model.get_flat_parameters(), ref_params
        )
        assert trainer.group_stats["retransmits"] == 1


class TestQuorumRestart:
    def test_restart_from_checkpoint_on_quorum_loss(self, tmp_path):
        # quorum == n_ranks: any crash forces a checkpoint restart.
        plan = FaultPlan(
            events=[FaultEvent(FaultKind.RANK_CRASH, rank=1, step=4)]
        )
        trainer = ElasticTrainer(
            tiny_16(),
            make_dataset(9),
            config=DistributedConfig(
                n_ranks=3, epochs=3, mode="elastic", validate=False
            ),
            optimizer_config=OPT,
            elastic=ElasticConfig(
                timeout_s=10.0,
                quorum=3,
                checkpoint_dir=str(tmp_path),
                checkpoint_every_epochs=1,
                max_restarts=2,
            ),
            injector=FaultInjector(plan),
        )
        hist = trainer.run()
        stats = trainer.group_stats
        assert stats["restarts"] == 1
        # The crash fired in epoch 1 (step 4 of 3-step epochs); the
        # restart resumed from the epoch-1 checkpoint and re-ran the
        # remaining epochs with the full rank count.  The checkpoint
        # also carries the completed epoch's curves, so History spans
        # the whole run, not just the epochs after resume.
        assert stats["survivors"] == [0, 1, 2]
        assert len(hist.train_loss) == 3
        assert hist.train_loss[-1] < hist.train_loss[0] * 1.5  # still training

    def test_quorum_loss_without_checkpoints_raises(self):
        plan = FaultPlan(
            events=[FaultEvent(FaultKind.RANK_CRASH, rank=0, step=1)]
        )
        trainer = ElasticTrainer(
            tiny_16(),
            make_dataset(9),
            config=DistributedConfig(
                n_ranks=3, epochs=2, mode="elastic", validate=False
            ),
            optimizer_config=OPT,
            elastic=ElasticConfig(timeout_s=10.0, quorum=3),  # no checkpoint_dir
            injector=FaultInjector(plan),
        )
        with pytest.raises(QuorumLostError):
            trainer.run()

    def test_restart_resume_matches_uninterrupted_determinism(self, tmp_path):
        """Burned-in RNG streams: a resumed run and a straight run end
        at the same parameters when the same ranks survive throughout."""
        ref_hist, ref_params = run_threaded_reference(n_ranks=2, epochs=4, n=8)
        # All-rank quorum, crash in epoch 2 → restart resumes epoch 2
        # with both ranks alive again; no shrink ever happens, so the
        # final state must match the uninterrupted threaded run.
        plan = FaultPlan(
            events=[FaultEvent(FaultKind.RANK_CRASH, rank=1, step=9)]
        )
        trainer = ElasticTrainer(
            tiny_16(),
            make_dataset(8),
            config=DistributedConfig(
                n_ranks=2, epochs=4, mode="elastic", validate=False
            ),
            optimizer_config=OPT,
            elastic=ElasticConfig(
                timeout_s=10.0, quorum=2, checkpoint_dir=str(tmp_path)
            ),
            injector=FaultInjector(plan),
        )
        hist = trainer.run()
        assert trainer.group_stats["restarts"] == 1
        np.testing.assert_array_equal(
            trainer.final_model.get_flat_parameters(), ref_params
        )
        # Full-span history: the checkpointed pre-crash epochs plus the
        # resumed epochs reproduce the uninterrupted reference bitwise.
        assert hist.train_loss == ref_hist.train_loss


class ShortEpochData(InMemoryData):
    """Emulates a ``strict=False`` record dataset whose file went corrupt
    after construction: ``len()`` still counts every record, but each
    epoch stream silently comes up one batch short (the skipped record).
    """

    def batches(self, batch_size=1, rng=None, shuffle=True):
        out = list(super().batches(batch_size, rng=rng, shuffle=shuffle))
        yield from out[:-1]

    def shard(self, rank, n_ranks):
        base = super().shard(rank, n_ranks)
        return ShortEpochData(base.x, base.y)


class TestShortEpochStream:
    def test_skipped_record_does_not_crash_training(self):
        """A shard shortened by skip-and-count must not kill the rank
        with StopIteration — the epoch stream is recycled instead."""
        epochs, n_ranks = 2, 2
        trainer = ElasticTrainer(
            tiny_16(),
            ShortEpochData(make_dataset(8).x, make_dataset(8).y),
            config=DistributedConfig(
                n_ranks=n_ranks, epochs=epochs, mode="elastic", validate=False
            ),
            optimizer_config=OPT,
            elastic=FAST,
        )
        hist = trainer.run()
        assert len(hist.train_loss) == epochs
        assert trainer.group_stats["failed_ranks"] == []
        assert trainer.group_stats["survivors"] == list(range(n_ranks))
