"""Tests for checkpointing and the hyperparameter search harness."""

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.hyperparams import HyperparameterSearch
from repro.core.model import CosmoFlowModel
from repro.core.optimizer import CosmoFlowOptimizer, OptimizerConfig
from repro.core.topology import ConvSpec, CosmoFlowConfig, tiny_16
from repro.core.trainer import InMemoryData

MICRO = CosmoFlowConfig(
    name="micro4ckpt",
    input_size=4,
    conv_layers=(ConvSpec(16, 2),),
    fc_sizes=(8,),
    n_outputs=3,
)


def make_data(n=8, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, 4, 4, 4)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


class TestCheckpoint:
    def test_model_round_trip(self, tmp_path):
        model = CosmoFlowModel(MICRO, seed=1)
        path = save_checkpoint(tmp_path / "ckpt", model)
        assert path.suffix == ".npz"
        clone = CosmoFlowModel(MICRO, seed=2)
        load_checkpoint(path, clone)
        np.testing.assert_array_equal(
            clone.get_flat_parameters(), model.get_flat_parameters()
        )

    def test_optimizer_state_round_trip(self, tmp_path):
        model = CosmoFlowModel(MICRO, seed=1)
        opt = CosmoFlowOptimizer(model.parameter_arrays(), OptimizerConfig())
        x = np.zeros((1, 1, 4, 4, 4), dtype=np.float32)
        y = np.full((1, 3), 0.5, dtype=np.float32)
        for _ in range(3):
            _, grads = model.loss_and_gradients(x, y)
            opt.step(grads)
        path = save_checkpoint(tmp_path / "full", model, opt)

        clone = CosmoFlowModel(MICRO, seed=9)
        clone_opt = CosmoFlowOptimizer(clone.parameter_arrays(), OptimizerConfig())
        load_checkpoint(path, clone, clone_opt)
        assert clone_opt.adam.t == 3
        assert clone_opt.step_count == 3
        for a, b in zip(clone_opt.adam.m, opt.adam.m):
            np.testing.assert_array_equal(a, b)
        # continued training is bitwise identical
        _, g1 = model.loss_and_gradients(x, y)
        _, g2 = clone.loss_and_gradients(x, y)
        opt.step(g1)
        clone_opt.step(g2)
        np.testing.assert_array_equal(
            model.get_flat_parameters(), clone.get_flat_parameters()
        )

    def test_wrong_config_rejected(self, tmp_path):
        model = CosmoFlowModel(MICRO, seed=0)
        path = save_checkpoint(tmp_path / "x", model)
        other = CosmoFlowModel(tiny_16(), seed=0)
        with pytest.raises(ValueError, match="config"):
            load_checkpoint(path, other)

    def test_missing_optimizer_state(self, tmp_path):
        model = CosmoFlowModel(MICRO, seed=0)
        path = save_checkpoint(tmp_path / "noopt", model)
        opt = CosmoFlowOptimizer(model.parameter_arrays())
        with pytest.raises(ValueError, match="optimizer"):
            load_checkpoint(path, model, opt)

    def test_foreign_optimizer_rejected(self, tmp_path):
        model = CosmoFlowModel(MICRO, seed=0)
        foreign = CosmoFlowOptimizer([np.zeros(3, dtype=np.float32)])
        with pytest.raises(ValueError, match="belong"):
            save_checkpoint(tmp_path / "bad", model, foreign)


class TestHyperparameterSearch:
    def test_grid_candidates(self):
        search = HyperparameterSearch(MICRO, {"eta0": [1e-3, 2e-3], "beta1": [0.9]})
        cands = search.grid_candidates()
        assert len(cands) == 2
        assert {"beta1", "eta0"} == set(cands[0])

    def test_random_candidates(self):
        search = HyperparameterSearch(MICRO, {"eta0": [1e-3, 2e-3, 4e-3]})
        cands = search.random_candidates(5, rng=np.random.default_rng(0))
        assert len(cands) == 5
        assert all(c["eta0"] in (1e-3, 2e-3, 4e-3) for c in cands)

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            HyperparameterSearch(MICRO, {"learning_rate": [1e-3]})

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            HyperparameterSearch(MICRO, {})

    def test_run_ranks_by_val_loss(self):
        search = HyperparameterSearch(
            MICRO, {"eta0": [1e-4, 5e-3]}, epochs=3, seed=0
        )
        results = search.run(make_data(8), make_data(4, seed=5))
        assert len(results) == 2
        assert results[0].best_val_loss <= results[1].best_val_loss
        assert search.best is results[0]

    def test_parallel_matches_serial(self):
        grid = {"eta0": [1e-3, 3e-3]}
        serial = HyperparameterSearch(MICRO, grid, epochs=2, seed=0)
        parallel = HyperparameterSearch(MICRO, grid, epochs=2, seed=0)
        train, val = make_data(6), make_data(3, seed=7)
        rs = serial.run(train, val, n_workers=1)
        rp = parallel.run(train, val, n_workers=2)
        for a, b in zip(rs, rp):
            assert a.params == b.params
            assert a.best_val_loss == pytest.approx(b.best_val_loss, rel=1e-5)

    def test_best_before_run_raises(self):
        search = HyperparameterSearch(MICRO, {"eta0": [1e-3]})
        with pytest.raises(RuntimeError):
            _ = search.best

    def test_bad_workers(self):
        search = HyperparameterSearch(MICRO, {"eta0": [1e-3]})
        with pytest.raises(ValueError):
            search.run(make_data(4), make_data(2), n_workers=0)
