"""Cross-backend determinism gate: real processes vs threads vs stepped.

The contract under test is the strongest one the engine makes: with the
same seed, the ``process`` backend — ranks as real OS processes, real
SIGKILLs, shared-memory collectives — produces **bitwise** identical
History curves and final parameters to the in-process backends, both
fault-free and under a replayed crash/recovery schedule.  Any drift
here means the process backend computed something, not just scheduled
something, differently.
"""

from __future__ import annotations

import multiprocessing

import numpy as np

from repro.core.distributed import DistributedConfig, DistributedTrainer
from repro.core.elastic import ElasticConfig, ElasticTrainer
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData
from repro.faults import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

OPT = OptimizerConfig(eta0=5e-3, decay_steps=50)


def make_dataset(n=8, seed=0, size=16):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, size, size, size)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


def assert_bitwise_equal(h1, h2, p1, p2):
    assert h1.train_loss == h2.train_loss
    assert np.array_equal(h1.val_loss, h2.val_loss, equal_nan=True)
    assert h1.lr == h2.lr
    assert h1.effective_batch == h2.effective_batch
    assert np.array_equal(p1, p2)


def run_distributed(mode, n_ranks=2, epochs=2):
    trainer = DistributedTrainer(
        tiny_16(), make_dataset(8),
        config=DistributedConfig(
            n_ranks=n_ranks, epochs=epochs, mode=mode, validate=True
        ),
        optimizer_config=OPT,
    )
    history = trainer.run()
    return history, trainer.final_model.get_flat_parameters(), trainer.group_stats


def run_elastic(backend, plan, elastic, epochs=3, n_ranks=4):
    trainer = ElasticTrainer(
        tiny_16(), make_dataset(8),
        config=DistributedConfig(
            n_ranks=n_ranks, epochs=epochs, mode="elastic", validate=False
        ),
        optimizer_config=OPT,
        elastic=elastic,
        injector=FaultInjector(plan),
        backend=backend,
    )
    history = trainer.run()
    return history, trainer.final_model.get_flat_parameters(), trainer.group_stats


class TestDeterminismGate:
    def test_process_matches_threaded_and_stepped_fault_free(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path))
        h_thr, p_thr, _ = run_distributed("threaded")
        h_step, p_step, _ = run_distributed("stepped")
        h_proc, p_proc, stats = run_distributed("process")
        assert_bitwise_equal(h_thr, h_proc, p_thr, p_proc)
        assert_bitwise_equal(h_step, h_proc, p_step, p_proc)
        assert stats["backend"] == "process"
        assert stats["max_param_divergence"] == 0.0
        assert stats["reductions"] > 0
        assert stats["restarts"] == 0
        # Every worker ran to completion and exited cleanly.
        assert set(stats["exit_codes"]) == {"0.0", "1.0"}
        assert set(stats["exit_codes"].values()) == {0}

    def test_process_matches_threaded_under_sigkill_and_rejoin(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path))
        plan = FaultPlan(seed=7, events=(
            FaultEvent(kind=FaultKind.PROC_KILL, rank=1, step=2),
            FaultEvent(kind=FaultKind.RANK_RECOVER, rank=1, step=4),
        ))
        elastic = ElasticConfig(timeout_s=15.0, quorum=2, auto_respawn=False)
        h_thr, p_thr, s_thr = run_elastic("threaded", plan, elastic)
        h_proc, p_proc, s_proc = run_elastic("process", plan, elastic)
        assert_bitwise_equal(h_thr, h_proc, p_thr, p_proc)
        # The shrink is visible in the curve, identically on both sides.
        assert h_proc.effective_batch == [4.0, 3.0, 4.0]
        for key in ("survivors", "failed_ranks", "rejoins", "resyncs"):
            assert s_thr[key] == s_proc[key], key
        # The process run fired a *real* SIGKILL, not a simulated one.
        assert s_proc["signal_kills"] == {"SIGKILL": 1}
        assert s_proc["faults_injected"]["proc_kill"] == 1
        assert s_proc["faults_injected"]["rank_recover"] == 1
        # Rank 1's first incarnation died by signal; its second exited 0.
        assert s_proc["exit_codes"]["1.1"] == 0
        assert s_proc["exit_codes"]["1.0"] < 0

    def test_process_quorum_loss_restart_matches_threaded(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path / "registry"))
        plan = FaultPlan(seed=7, events=tuple(
            FaultEvent(kind=FaultKind.PROC_KILL, rank=r, step=3) for r in (1, 2, 3)
        ))

        def elastic(ckpt):
            return ElasticConfig(
                timeout_s=15.0, quorum=2, auto_respawn=False,
                checkpoint_dir=str(ckpt), max_restarts=1,
            )

        h_thr, p_thr, s_thr = run_elastic(
            "threaded", plan, elastic(tmp_path / "ckpt-thr")
        )
        h_proc, p_proc, s_proc = run_elastic(
            "process", plan, elastic(tmp_path / "ckpt-proc")
        )
        assert s_thr["restarts"] == 1
        assert s_proc["restarts"] == 1
        assert_bitwise_equal(h_thr, h_proc, p_thr, p_proc)


class TestNoLeaks:
    def test_chaos_run_leaves_no_orphans_or_segments(self, tmp_path, monkeypatch):
        """After a run with a real mid-epoch SIGKILL: every worker
        process reaped, every shared-memory segment unlinked and
        unregistered — the registry's startup sweep finds nothing."""
        from repro.comm.process import sweep_stale_segments

        registry = tmp_path / "registry"
        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(registry))
        plans = [
            FaultPlan(seed=7, events=(
                FaultEvent(kind=FaultKind.PROC_KILL, rank=1, step=2),
            )),
            FaultPlan(seed=8, events=(
                FaultEvent(kind=FaultKind.PROC_KILL, rank=2, step=1),
                FaultEvent(kind=FaultKind.PROC_KILL, rank=3, step=2),
            )),
        ]
        for plan in plans:
            run_elastic(
                "process", plan,
                ElasticConfig(timeout_s=15.0, quorum=2, auto_respawn=False),
                epochs=2,
            )
            assert multiprocessing.active_children() == []
            assert sweep_stale_segments() == []
        assert not list(registry.glob("*.json"))
