"""Mixed-precision training: loss scaler, fp16 optimizer path,
checkpoint/resync transport of scaler+master state."""

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.distributed import DistributedConfig, DistributedTrainer
from repro.core.model import CosmoFlowModel
from repro.core.optimizer import CosmoFlowOptimizer, OptimizerConfig
from repro.core.precision import (
    DEFAULT_LOSS_SCALE,
    LossScaler,
    any_nonfinite,
    fp16_loss_and_gradients,
    fp16_round,
)
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData


def make_dataset(n=8, seed=0, size=16):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, size, size, size)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


class TestFp16Round:
    def test_idempotent(self):
        a = np.random.default_rng(0).standard_normal(100).astype(np.float32)
        r = fp16_round(a)
        assert np.array_equal(fp16_round(r), r)

    def test_exact_fp16_values_unchanged(self):
        a = np.asarray([1.0, 0.5, -2.0, 65504.0, 2.0**-24], dtype=np.float32)
        assert np.array_equal(fp16_round(a), a)

    def test_overflow_becomes_inf(self):
        a = np.asarray([1e5, -1e5], dtype=np.float32)
        r = fp16_round(a)
        assert np.isinf(r).all()
        assert r[0] > 0 and r[1] < 0

    def test_tiny_values_flush(self):
        # Below the fp16 subnormal floor the value is lost entirely.
        assert fp16_round(np.asarray([1e-9], dtype=np.float32))[0] == 0.0

    def test_any_nonfinite(self):
        ok = [np.ones(3, np.float32)]
        assert not any_nonfinite(ok)
        assert any_nonfinite(ok + [np.asarray([np.inf], np.float32)])
        assert any_nonfinite([np.asarray([np.nan], np.float32)])


class TestLossScaler:
    def test_defaults(self):
        s = LossScaler()
        assert s.scale == DEFAULT_LOSS_SCALE == 2.0**16

    def test_overflow_detection(self):
        s = LossScaler()
        assert s.check_overflow([np.asarray([np.inf], np.float32)])
        assert s.check_overflow([np.zeros(2, np.float32), np.asarray([np.nan], np.float32)])
        assert not s.check_overflow([np.zeros(2, np.float32)])

    def test_unscale_is_exact(self):
        # Powers of two: multiplying by 1/scale is exact in IEEE-754.
        s = LossScaler(init_scale=2.0**10)
        g = np.random.default_rng(1).standard_normal(50).astype(np.float32)
        scaled = g * np.float32(s.scale)
        assert np.array_equal(s.unscale([scaled])[0], g)

    def test_overflow_halves_and_counts(self):
        s = LossScaler(init_scale=1024.0)
        s.update(True)
        assert s.scale == 512.0
        assert s.skipped_steps == 1 and s.overflows == 1
        assert s.good_steps == 0

    def test_overflow_resets_growth_progress(self):
        s = LossScaler(init_scale=1024.0, growth_interval=4)
        for _ in range(3):
            s.update(False)
        assert s.good_steps == 3
        s.update(True)
        assert s.good_steps == 0 and s.scale == 512.0

    def test_growth_after_interval(self):
        s = LossScaler(init_scale=1024.0, growth_interval=3)
        for _ in range(3):
            s.update(False)
        assert s.scale == 2048.0
        assert s.good_steps == 0  # counter restarts after a doubling

    def test_halve_then_regrow_schedule(self):
        s = LossScaler(init_scale=1024.0, growth_interval=2)
        s.update(True)  # 512
        s.update(False)
        s.update(False)  # regrow: 1024
        assert s.scale == 1024.0
        assert s.skipped_steps == 1

    def test_min_scale_clamp(self):
        s = LossScaler(init_scale=2.0, min_scale=1.0)
        for _ in range(5):
            s.update(True)
        assert s.scale == 1.0

    def test_max_scale_clamp(self):
        s = LossScaler(init_scale=2.0**23, growth_interval=1, max_scale=2.0**24)
        s.update(False)
        s.update(False)
        assert s.scale == 2.0**24

    def test_state_round_trip(self):
        s = LossScaler(init_scale=1024.0, growth_interval=5)
        s.update(True)
        s.update(False)
        fresh = LossScaler(init_scale=1024.0, growth_interval=5)
        fresh.load_state_array(s.state_array())
        assert fresh.scale == s.scale
        assert fresh.good_steps == s.good_steps
        assert fresh.skipped_steps == s.skipped_steps
        assert fresh.overflows == s.overflows

    def test_state_size_checked(self):
        with pytest.raises(ValueError):
            LossScaler().load_state_array(np.zeros(3))

    def test_bad_args(self):
        with pytest.raises(ValueError):
            LossScaler(init_scale=0.0)
        with pytest.raises(ValueError):
            LossScaler(growth_factor=1.0)
        with pytest.raises(ValueError):
            LossScaler(backoff_factor=1.0)
        with pytest.raises(ValueError):
            LossScaler(growth_interval=0)

    def test_stats_keys_numeric(self):
        stats = LossScaler().stats()
        assert set(stats) == {
            "loss_scale",
            "loss_scale_skipped_steps",
            "loss_scale_overflows",
        }
        assert all(isinstance(v, (int, float)) for v in stats.values())


class TestOptimizerFp16:
    def _opt(self, model, **kw):
        cfg = OptimizerConfig(decay_steps=100, precision="fp16", **kw)
        return CosmoFlowOptimizer(model.parameter_arrays(), cfg)

    def test_bad_precision_rejected(self):
        with pytest.raises(ValueError):
            OptimizerConfig(precision="bf16")

    def test_fp32_mode_has_no_scaler(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        opt = CosmoFlowOptimizer(model.parameter_arrays(), OptimizerConfig())
        assert opt.scaler is None and opt.master is None
        assert opt.master_flat() is None

    def test_params_rounded_to_fp16_values(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        opt = self._opt(model)
        for p, mp in zip(opt.params, opt.master):
            assert np.array_equal(p, fp16_round(mp))
        # And they stay rounded after a step.
        grads = [np.full_like(p, 1e-3) for p in opt.params]
        s = np.float32(opt.scaler.scale)
        opt.step([g * s for g in grads])
        for p, mp in zip(opt.params, opt.master):
            assert np.array_equal(p, fp16_round(mp))

    def test_masters_stay_fp32(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        opt = self._opt(model)
        assert all(m.dtype == np.float32 for m in opt.master)
        # Masters diverge from the rounded params after updates.
        assert opt.master[0] is not opt.params[0]

    def test_overflow_skips_adam_but_advances_schedule(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        opt = self._opt(model)
        params_before = [p.copy() for p in opt.params]
        inf_grads = [np.full_like(p, np.inf) for p in opt.params]
        opt.step(inf_grads)
        assert opt.adam.t == 0  # Adam untouched
        assert opt.step_count == 1  # schedule clock advanced
        assert opt.scaler.skipped_steps == 1
        assert opt.scaler.scale == DEFAULT_LOSS_SCALE / 2
        for p, before in zip(opt.params, params_before):
            assert np.array_equal(p, before)

    def test_good_step_updates_masters(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        opt = self._opt(model)
        masters_before = [m.copy() for m in opt.master]
        s = np.float32(opt.scaler.scale)
        opt.step([np.full_like(p, 1e-3) * s for p in opt.params])
        assert opt.adam.t == 1
        assert any(
            not np.array_equal(m, b) for m, b in zip(opt.master, masters_before)
        )

    def test_state_arrays_include_precision_state(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        opt32 = CosmoFlowOptimizer(
            CosmoFlowModel(tiny_16(), seed=0).parameter_arrays(), OptimizerConfig()
        )
        opt16 = self._opt(model)
        n_params = len(opt16.params)
        assert len(opt16.state_arrays()) == len(opt32.state_arrays()) + n_params + 1

    def test_master_flat_round_trip(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        opt = self._opt(model)
        flat = opt.master_flat()
        other = self._opt(CosmoFlowModel(tiny_16(), seed=1))
        other.set_master_flat(flat)
        assert np.array_equal(other.master_flat(), flat)
        for p, mp in zip(other.params, other.master):
            assert np.array_equal(p, fp16_round(mp))

    def test_set_master_flat_rejected_in_fp32(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        opt = CosmoFlowOptimizer(model.parameter_arrays(), OptimizerConfig())
        with pytest.raises(ValueError):
            opt.set_master_flat(np.zeros(model.num_parameters, np.float32))


class TestFp16LossAndGradients:
    def test_scaled_grads_are_fp16_values(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        data = make_dataset(2)
        x, y = next(data.batches(2, shuffle=False))
        loss, grads = fp16_loss_and_gradients(model, x, y, 1024.0)
        assert np.isfinite(loss)
        for g in grads:
            assert np.array_equal(g, fp16_round(g))

    def test_loss_is_unscaled(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        data = make_dataset(2)
        x, y = next(data.batches(2, shuffle=False))
        loss_small, _ = fp16_loss_and_gradients(model, x, y, 1.0)
        loss_big, _ = fp16_loss_and_gradients(model, x, y, 2.0**20)
        assert loss_small == loss_big

    def test_huge_scale_produces_overflow_signal(self):
        model = CosmoFlowModel(tiny_16(), seed=0)
        data = make_dataset(2)
        x, y = next(data.batches(2, shuffle=False))
        _, grads = fp16_loss_and_gradients(model, x, y, 2.0**30)
        assert any_nonfinite(grads)


class TestTrainingSmoke:
    def test_fp16_training_runs_and_converges(self):
        cfg = DistributedConfig(n_ranks=2, epochs=2, mode="stepped", seed=0)
        oc = OptimizerConfig(decay_steps=100, precision="fp16", loss_scale_init=256.0)
        tr = DistributedTrainer(tiny_16(), make_dataset(12, seed=3), config=cfg, optimizer_config=oc)
        hist = tr.run()
        assert all(np.isfinite(hist.train_loss))
        assert hist.train_loss[-1] < hist.train_loss[0]
        assert "loss_scale" in tr.group_stats

    def test_injected_overflow_skipped_and_recovered(self):
        # An absurd initial scale guarantees overflow on the first
        # step(s); dynamic backoff halves until training proceeds.
        cfg = DistributedConfig(n_ranks=2, epochs=2, mode="stepped", seed=0)
        oc = OptimizerConfig(
            decay_steps=100, precision="fp16", loss_scale_init=float(2**24)
        )
        tr = DistributedTrainer(tiny_16(), make_dataset(12, seed=3), config=cfg, optimizer_config=oc)
        hist = tr.run()
        assert tr.group_stats["loss_scale_skipped_steps"] >= 1
        assert tr.group_stats["loss_scale"] < 2**24  # backed off
        assert np.isfinite(hist.train_loss[-1])

    def test_fp32_path_bitwise_unchanged_by_precision_machinery(self):
        # Two identical fp32 runs through the new code paths.
        results = []
        for _ in range(2):
            cfg = DistributedConfig(n_ranks=2, epochs=1, mode="stepped", seed=0)
            tr = DistributedTrainer(
                tiny_16(),
                make_dataset(8, seed=1),
                config=cfg,
                optimizer_config=OptimizerConfig(decay_steps=50),
            )
            tr.run()
            results.append(tr.final_model.get_flat_parameters())
        assert np.array_equal(results[0], results[1])


class TestCheckpointPrecisionState:
    def _trained_fp16(self, seed=0, steps=3):
        model = CosmoFlowModel(tiny_16(), seed=seed)
        opt = CosmoFlowOptimizer(
            model.parameter_arrays(),
            OptimizerConfig(decay_steps=100, precision="fp16", loss_scale_init=256.0),
        )
        data = make_dataset(steps * 2, seed=seed)
        it = data.batches(2, shuffle=False)
        for _ in range(steps):
            x, y = next(it)
            loss, grads = fp16_loss_and_gradients(model, x, y, opt.scaler.scale)
            opt.step(grads)
        return model, opt

    def test_round_trip_carries_masters_and_scaler(self, tmp_path):
        model, opt = self._trained_fp16()
        opt.scaler.update(True)  # make the scaler state distinctive
        path = save_checkpoint(tmp_path / "ckpt", model, opt)

        model2 = CosmoFlowModel(tiny_16(), seed=9)
        opt2 = CosmoFlowOptimizer(
            model2.parameter_arrays(),
            OptimizerConfig(decay_steps=100, precision="fp16", loss_scale_init=256.0),
        )
        load_checkpoint(path, model2, opt2)
        assert np.array_equal(opt2.master_flat(), opt.master_flat())
        assert np.array_equal(opt2.scaler.state_array(), opt.scaler.state_array())
        assert np.array_equal(
            model2.get_flat_parameters(), model.get_flat_parameters()
        )

    def test_fp32_checkpoint_loads_into_fp32_unchanged(self, tmp_path):
        model = CosmoFlowModel(tiny_16(), seed=0)
        opt = CosmoFlowOptimizer(model.parameter_arrays(), OptimizerConfig())
        path = save_checkpoint(tmp_path / "ckpt", model, opt)
        data = np.load(path, allow_pickle=False)
        with data:
            assert "master_parameters" not in data.files
            assert "scaler_state" not in data.files
        model2 = CosmoFlowModel(tiny_16(), seed=1)
        opt2 = CosmoFlowOptimizer(model2.parameter_arrays(), OptimizerConfig())
        load_checkpoint(path, model2, opt2)
        assert np.array_equal(
            model2.get_flat_parameters(), model.get_flat_parameters()
        )

    def test_resumed_fp16_run_replays_bitwise(self, tmp_path):
        # Train 3 steps, checkpoint, train 3 more; vs load + 3 more.
        model, opt = self._trained_fp16(steps=3)
        path = save_checkpoint(tmp_path / "ckpt", model, opt)

        data = make_dataset(12, seed=7)

        def three_more(m, o):
            it = m_data.batches(2, shuffle=False)
            for _ in range(3):
                x, y = next(it)
                _, grads = fp16_loss_and_gradients(m, x, y, o.scaler.scale)
                o.step(grads)
            return m.get_flat_parameters()

        m_data = data
        ref = three_more(model, opt)

        model2 = CosmoFlowModel(tiny_16(), seed=5)
        opt2 = CosmoFlowOptimizer(
            model2.parameter_arrays(),
            OptimizerConfig(decay_steps=100, precision="fp16", loss_scale_init=256.0),
        )
        load_checkpoint(path, model2, opt2)
        resumed = three_more(model2, opt2)
        assert np.array_equal(ref, resumed)
