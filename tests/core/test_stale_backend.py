"""End-to-end tests for the bounded-staleness training backends
(``mode="ssgd"`` / ``"sagn"``): bitwise equivalence to the synchronous
baselines at bound 0, seeded straggler replay, monitor lifecycle, and
composition with gradient compression."""

import numpy as np

from repro.comm.stale import StalenessConfig
from repro.core.distributed import DistributedConfig, DistributedTrainer
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan


def make_dataset(n=16, seed=0, size=16):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, size, size, size)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


OPT = OptimizerConfig(eta0=5e-3, decay_steps=50)


def run_trainer(mode, *, staleness=None, injector=None, epochs=2, n=16,
                ranks=4, compression="none", validate=False):
    trainer = DistributedTrainer(
        tiny_16(),
        make_dataset(n),
        val_data=make_dataset(4, seed=9) if validate else None,
        config=DistributedConfig(
            n_ranks=ranks, epochs=epochs, mode=mode, validate=validate,
            staleness=staleness, compression=compression,
        ),
        optimizer_config=OPT,
        injector=injector,
    )
    hist = trainer.run()
    return trainer, hist


SYNC_STALENESS = StalenessConfig(staleness_bound=0, quarantine_factor=None)


class TestSyncEquivalence:
    """``ssgd`` with bound 0 and no faults is the synchronous run,
    bitwise."""

    def test_bitwise_equal_to_stepped_and_threaded(self):
        t_ssgd, h_ssgd = run_trainer("ssgd", staleness=SYNC_STALENESS, validate=True)
        t_step, h_step = run_trainer("stepped", validate=True)
        t_thr, h_thr = run_trainer("threaded", validate=True)
        assert h_ssgd.train_loss == h_step.train_loss == h_thr.train_loss
        assert h_ssgd.val_loss == h_step.val_loss == h_thr.val_loss
        p_ssgd = t_ssgd.final_model.parameter_arrays()
        for other in (t_step, t_thr):
            for a, b in zip(p_ssgd, other.final_model.parameter_arrays()):
                assert np.array_equal(a, b)

    def test_sagn_window_one_also_bitwise(self):
        cfg = StalenessConfig(staleness_bound=0, window=1, quarantine_factor=None)
        t_sagn, h_sagn = run_trainer("sagn", staleness=cfg)
        t_step, h_step = run_trainer("stepped")
        assert h_sagn.train_loss == h_step.train_loss
        for a, b in zip(
            t_sagn.final_model.parameter_arrays(),
            t_step.final_model.parameter_arrays(),
        ):
            assert np.array_equal(a, b)

    def test_default_staleness_config_attached(self):
        cfg = DistributedConfig(n_ranks=2, mode="ssgd")
        assert isinstance(cfg.staleness, StalenessConfig)
        assert DistributedConfig(n_ranks=2, mode="stepped").staleness is None

    def test_group_stats_published(self):
        t, _ = run_trainer("ssgd", staleness=SYNC_STALENESS)
        gs = t.group_stats
        assert gs["mode"] == "ssgd"
        assert gs["max_staleness"] == 0
        assert gs["late_folds"] == 0
        assert gs["contributions"] == [8, 8, 8, 8]  # 4 steps/epoch × 2 epochs
        assert gs["hangs_injected"] == 0
        assert gs["virtual_time_s"] > 0


class TestStragglerRuns:
    def straggler_injector(self, delay=0.09, steps=6, seed=7):
        return FaultInjector(FaultPlan(seed=seed).with_slow_rank(1, delay, n_steps=steps))

    def test_bound_respected_and_late_folds_recorded(self):
        cfg = StalenessConfig(staleness_bound=4, quorum_fraction=0.5,
                              quarantine_factor=None)
        t, hist = run_trainer("ssgd", staleness=cfg, epochs=3,
                              injector=self.straggler_injector())
        gs = t.group_stats
        assert 0 < gs["max_staleness"] <= 4
        assert gs["late_folds"] > 0
        assert gs["hangs_injected"] > 0
        assert len(hist.train_loss) == 3
        assert np.isfinite(hist.train_loss[-1])

    def test_seeded_stale_run_replays_bitwise(self):
        def once():
            cfg = StalenessConfig(staleness_bound=4, quorum_fraction=0.5)
            t, hist = run_trainer("ssgd", staleness=cfg, epochs=2,
                                  injector=self.straggler_injector())
            return hist, t.final_model.parameter_arrays(), t.group_stats

        h1, p1, s1 = once()
        h2, p2, s2 = once()
        assert h1.train_loss == h2.train_loss
        for a, b in zip(p1, p2):
            assert np.array_equal(a, b)
        assert s1 == s2

    def test_quarantine_and_rehabilitation_lifecycle(self):
        # Rank 1 is ~10x slow for the first 10 global steps, then
        # recovers: the monitor must quarantine it and readmit it.
        cfg = StalenessConfig(staleness_bound=4, quorum_fraction=0.5)
        t, _ = run_trainer("ssgd", staleness=cfg, epochs=10,
                           injector=self.straggler_injector(steps=10))
        gs = t.group_stats
        assert gs["quarantined_ranks"] == [1]
        assert gs["rehabilitated_ranks"] == [1]
        assert gs["quarantines"] >= 1
        assert gs["rehabs"] >= 1
        assert gs["evicted_ranks"] == []

    def test_eviction_shrinks_group(self):
        cfg = StalenessConfig(staleness_bound=4, quorum_fraction=0.5,
                              evict_after=4)
        # Slow for the whole run: quarantine escalates to eviction.
        t, hist = run_trainer("ssgd", staleness=cfg, epochs=10,
                              injector=self.straggler_injector(steps=100))
        gs = t.group_stats
        assert gs["evicted_ranks"] == [1]
        assert gs["evictions"] == 1
        assert np.isfinite(hist.train_loss[-1])

    def test_sagn_straggler_run(self):
        cfg = StalenessConfig(staleness_bound=4, quorum_fraction=0.5,
                              window=2, quarantine_factor=None)
        t, hist = run_trainer("sagn", staleness=cfg, epochs=3,
                              injector=self.straggler_injector())
        gs = t.group_stats
        assert gs["mode"] == "sagn"
        assert gs["max_staleness"] <= 4
        assert np.isfinite(hist.train_loss[-1])


class TestCompression:
    def test_topk_ssgd_bound0_matches_stepped_topk(self):
        t_ssgd, h_ssgd = run_trainer("ssgd", staleness=SYNC_STALENESS,
                                     compression="topk")
        t_step, h_step = run_trainer("stepped", compression="topk")
        assert h_ssgd.train_loss == h_step.train_loss
        for a, b in zip(
            t_ssgd.final_model.parameter_arrays(),
            t_step.final_model.parameter_arrays(),
        ):
            assert np.array_equal(a, b)

    def test_compression_stats_reported(self):
        t, _ = run_trainer("ssgd", staleness=SYNC_STALENESS, compression="fp16")
        assert t.group_stats.get("compression") == "fp16"
