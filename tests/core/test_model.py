"""Tests for CosmoFlowModel."""

import numpy as np
import pytest

from repro.core.metrics import relative_errors
from repro.core.model import CosmoFlowModel
from repro.core.parameters import ParameterSpace
from repro.core.topology import tiny_16


@pytest.fixture
def model():
    return CosmoFlowModel(tiny_16(), seed=0)


def sample_volume(rng, n=1, size=16):
    return rng.standard_normal((n, 1, size, size, size)).astype(np.float32)


class TestConstruction:
    def test_seeded_models_identical(self):
        a = CosmoFlowModel(tiny_16(), seed=3)
        b = CosmoFlowModel(tiny_16(), seed=3)
        np.testing.assert_array_equal(a.get_flat_parameters(), b.get_flat_parameters())

    def test_space_output_mismatch_raises(self):
        space = ParameterSpace().subset(["omega_m"])
        with pytest.raises(ValueError):
            CosmoFlowModel(tiny_16(), seed=0, space=space)

    def test_summary(self, model):
        text = model.summary()
        assert "parameters" in text and "Gflop" in text


class TestForwardAndPredict:
    def test_forward_shape(self, model):
        rng = np.random.default_rng(0)
        out = model.forward(sample_volume(rng, n=2))
        assert out.shape == (2, 3)

    def test_accepts_unbatched_and_channel_less(self, model):
        rng = np.random.default_rng(1)
        v3 = rng.standard_normal((16, 16, 16)).astype(np.float32)
        v4 = rng.standard_normal((2, 16, 16, 16)).astype(np.float32)
        assert model.forward(v3).shape == (1, 3)
        assert model.forward(v4).shape == (2, 3)

    def test_wrong_shape_raises(self, model):
        with pytest.raises(ValueError):
            model.forward(np.zeros((1, 1, 8, 8, 8), dtype=np.float32))

    def test_predict_physical_units(self, model):
        rng = np.random.default_rng(2)
        theta = model.predict(sample_volume(rng))
        assert theta.shape == (1, 3)
        # denormalized values: ΩM scale vs ns scale differ
        span = model.space.highs - model.space.lows
        assert span[0] == pytest.approx(0.10)

    def test_predict_normalized_untaped(self, model):
        rng = np.random.default_rng(3)
        out = model.predict_normalized(sample_volume(rng))
        assert isinstance(out, np.ndarray)


class TestFlatParameters:
    def test_round_trip(self, model):
        flat = model.get_flat_parameters()
        assert flat.size == model.num_parameters
        model.set_flat_parameters(np.zeros_like(flat))
        assert np.all(model.get_flat_parameters() == 0.0)
        model.set_flat_parameters(flat)
        np.testing.assert_array_equal(model.get_flat_parameters(), flat)

    def test_wrong_size_raises(self, model):
        with pytest.raises(ValueError):
            model.set_flat_parameters(np.zeros(3))

    def test_parameter_nbytes(self, model):
        assert model.parameter_nbytes == model.num_parameters * 4


class TestLossAndGradients:
    def test_loss_positive(self, model):
        rng = np.random.default_rng(4)
        x = sample_volume(rng)
        y = np.array([[0.5, 0.5, 0.5]], dtype=np.float32)
        assert model.loss(x, y).item() > 0.0

    def test_gradients_cover_all_params(self, model):
        rng = np.random.default_rng(5)
        loss, grads = model.loss_and_gradients(
            sample_volume(rng), np.array([0.5, 0.5, 0.5], dtype=np.float32)
        )
        assert loss > 0.0
        assert len(grads) == len(model.parameters())
        for g, p in zip(grads, model.parameters()):
            assert g.shape == p.shape
            assert np.all(np.isfinite(g))

    def test_gradients_nonzero(self, model):
        rng = np.random.default_rng(6)
        _, grads = model.loss_and_gradients(
            sample_volume(rng), np.array([0.9, 0.1, 0.5], dtype=np.float32)
        )
        assert any(np.abs(g).max() > 0 for g in grads)

    def test_repeated_calls_fresh_grads(self, model):
        """zero_grad between calls: gradients must not accumulate."""
        rng = np.random.default_rng(7)
        x = sample_volume(rng)
        y = np.array([0.5, 0.5, 0.5], dtype=np.float32)
        _, g1 = model.loss_and_gradients(x, y)
        _, g2 = model.loss_and_gradients(x, y)
        for a, b in zip(g1, g2):
            np.testing.assert_allclose(a, b, rtol=1e-6)

    def test_validation_loss_matches_training_loss(self, model):
        rng = np.random.default_rng(8)
        x = sample_volume(rng, n=2)
        y = np.full((2, 3), 0.5, dtype=np.float32)
        train_loss = model.loss(x, y).item()
        val_loss = model.validation_loss(x, y)
        assert val_loss == pytest.approx(train_loss, rel=1e-5)

    def test_sgd_steps_reduce_loss(self, model):
        """A few steps of plain SGD on one batch reduce the loss."""
        rng = np.random.default_rng(9)
        x = sample_volume(rng, n=2)
        y = np.full((2, 3), 0.5, dtype=np.float32)
        first = None
        for _ in range(5):
            loss, grads = model.loss_and_gradients(x, y)
            if first is None:
                first = loss
            for p, g in zip(model.parameter_arrays(), grads):
                p -= 1e-3 * g
        final, _ = model.loss_and_gradients(x, y)
        assert final < first

    def test_flop_costs_exposed(self, model):
        assert model.flops_per_sample() > 0
        assert len(model.flop_costs()) > 5


class TestEndToEndPrediction:
    def test_overfit_two_volumes_and_recover_parameters(self):
        """Train on two fixed volumes until predictions approach targets —
        the smallest possible version of the paper's Figure 6."""
        model = CosmoFlowModel(tiny_16(), seed=1)
        rng = np.random.default_rng(10)
        x = rng.standard_normal((2, 1, 16, 16, 16)).astype(np.float32)
        theta = model.space.sample(2, rng=rng)
        y = model.space.normalize(theta).astype(np.float32)
        from repro.core.optimizer import CosmoFlowOptimizer, OptimizerConfig

        opt = CosmoFlowOptimizer(
            model.parameter_arrays(),
            OptimizerConfig(eta0=5e-3, eta_min=1e-4, decay_steps=200),
        )
        for _ in range(200):
            _, grads = model.loss_and_gradients(x, y)
            opt.step(grads)
        pred = model.predict(x)
        summary = relative_errors(pred, theta, names=model.space.names)
        assert max(summary.errors) < 0.05
