"""Tests for the cosmological parameter space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import (
    PLANCK_BEST_FIT,
    PLANCK_RANGES,
    PLANCK_UNCERTAINTY,
    ParameterSpace,
)


class TestRanges:
    def test_paper_ranges(self):
        assert PLANCK_RANGES["omega_m"] == (0.25, 0.35)
        assert PLANCK_RANGES["sigma_8"] == (0.78, 0.95)
        assert PLANCK_RANGES["n_s"] == (0.9, 1.0)

    def test_best_fit_inside_ranges(self):
        space = ParameterSpace()
        theta = np.array([PLANCK_BEST_FIT[n] for n in space.names])
        assert space.contains(theta)

    def test_uncertainties_present(self):
        assert set(PLANCK_UNCERTAINTY) == set(PLANCK_RANGES)


class TestParameterSpace:
    def test_names_ordered(self):
        assert ParameterSpace().names == ("omega_m", "sigma_8", "n_s")

    def test_sample_shape_and_bounds(self):
        space = ParameterSpace()
        theta = space.sample(100, rng=np.random.default_rng(0))
        assert theta.shape == (100, 3)
        assert np.all(space.contains(theta))

    def test_sample_deterministic(self):
        space = ParameterSpace()
        a = space.sample(5, rng=np.random.default_rng(1))
        b = space.sample(5, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_sample_zero(self):
        assert ParameterSpace().sample(0, rng=np.random.default_rng(0)).shape == (0, 3)

    def test_sample_negative_raises(self):
        with pytest.raises(ValueError):
            ParameterSpace().sample(-1)

    def test_normalize_bounds(self):
        space = ParameterSpace()
        np.testing.assert_allclose(space.normalize(space.lows), 0.0)
        np.testing.assert_allclose(space.normalize(space.highs), 1.0)

    def test_normalize_round_trip(self):
        space = ParameterSpace()
        theta = space.sample(20, rng=np.random.default_rng(2))
        np.testing.assert_allclose(space.denormalize(space.normalize(theta)), theta)

    def test_clip(self):
        space = ParameterSpace()
        theta = np.array([0.0, 2.0, 0.95])
        clipped = space.clip(theta)
        assert space.contains(clipped)
        assert clipped[0] == 0.25 and clipped[1] == 0.95 and clipped[2] == 0.95

    def test_contains_batch(self):
        space = ParameterSpace()
        batch = np.array([[0.3, 0.8, 0.95], [0.1, 0.8, 0.95]])
        np.testing.assert_array_equal(space.contains(batch), [True, False])

    def test_subset(self):
        sub = ParameterSpace().subset(["omega_m", "sigma_8"])
        assert sub.n_params == 2
        assert sub.names == ("omega_m", "sigma_8")

    def test_subset_unknown_raises(self):
        with pytest.raises(KeyError):
            ParameterSpace().subset(["h0"])

    def test_wrong_axis_raises(self):
        with pytest.raises(ValueError):
            ParameterSpace().normalize(np.zeros(2))

    def test_empty_range_raises(self):
        with pytest.raises(ValueError):
            ParameterSpace({"x": (1.0, 1.0)})

    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=99))
    @settings(max_examples=20, deadline=None)
    def test_property_normalize_in_unit_box(self, n, seed):
        space = ParameterSpace()
        theta = space.sample(n, rng=np.random.default_rng(seed))
        unit = space.normalize(theta)
        assert np.all(unit >= 0.0) and np.all(unit <= 1.0)
