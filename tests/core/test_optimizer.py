"""Tests for Adam + LARC + polynomial decay (paper Section III-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import (
    Adam,
    CosmoFlowOptimizer,
    OptimizerConfig,
    PolynomialDecay,
    larc_scale,
)


class TestPolynomialDecay:
    def test_paper_endpoints(self):
        sched = PolynomialDecay(decay_steps=100)
        assert sched(0) == pytest.approx(2e-3)
        assert sched(100) == pytest.approx(1e-4)

    def test_linear_midpoint(self):
        sched = PolynomialDecay(eta0=1.0, eta_min=0.0, decay_steps=10, power=1.0)
        assert sched(5) == pytest.approx(0.5)

    def test_clamps_past_decay(self):
        sched = PolynomialDecay(decay_steps=10)
        assert sched(50) == pytest.approx(1e-4)

    def test_negative_step_clamped(self):
        sched = PolynomialDecay(decay_steps=10)
        assert sched(-3) == pytest.approx(2e-3)

    def test_power_two(self):
        sched = PolynomialDecay(eta0=1.0, eta_min=0.0, decay_steps=10, power=2.0)
        assert sched(5) == pytest.approx(0.25)

    def test_monotone_nonincreasing(self):
        sched = PolynomialDecay(decay_steps=50)
        vals = [sched(t) for t in range(60)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            PolynomialDecay(decay_steps=0)
        with pytest.raises(ValueError):
            PolynomialDecay(eta0=1e-5, eta_min=1e-4)


class TestLarcScale:
    def test_formula(self):
        p = np.full(4, 2.0)  # ||p|| = 4
        g = np.full(4, 0.5)  # ||g|| = 1
        assert larc_scale(p, g) == pytest.approx(0.002 * 4.0 / 1.0)

    def test_clip_at_one(self):
        p = np.full(4, 1e6)
        g = np.full(4, 1e-6)
        assert larc_scale(p, g) == 1.0

    def test_zero_param_fallback(self):
        assert larc_scale(np.zeros(3), np.ones(3)) == pytest.approx(6.25e-5)

    def test_zero_grad_fallback(self):
        assert larc_scale(np.ones(3), np.zeros(3)) == pytest.approx(6.25e-5)

    def test_custom_trust(self):
        p, g = np.ones(4), np.ones(4)
        assert larc_scale(p, g, trust=0.01) == pytest.approx(0.01)

    @given(
        scale_p=st.floats(min_value=1e-3, max_value=1e3),
        scale_g=st.floats(min_value=1e-3, max_value=1e3),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_never_exceeds_one(self, scale_p, scale_g):
        rng = np.random.default_rng(0)
        p = rng.standard_normal(8) * scale_p
        g = rng.standard_normal(8) * scale_g
        assert 0.0 < larc_scale(p, g) <= 1.0


class TestAdam:
    def test_quadratic_convergence(self):
        """Adam minimizes x^2 from x=5."""
        x = np.array([5.0], dtype=np.float32)
        adam = Adam([(1,)])
        for _ in range(500):
            adam.step([x], [2.0 * x], lr=0.05)
        assert abs(x[0]) < 0.1

    def test_first_step_magnitude(self):
        """With bias correction, the first update is ~lr in magnitude."""
        x = np.array([1.0], dtype=np.float32)
        Adam([(1,)]).step([x], [np.array([10.0], dtype=np.float32)], lr=0.01)
        assert x[0] == pytest.approx(1.0 - 0.01, abs=1e-4)

    def test_in_place_update(self):
        x = np.ones(3, dtype=np.float32)
        ref = x
        Adam([(3,)]).step([x], [np.ones(3, dtype=np.float32)], lr=0.1)
        assert ref is x
        assert not np.allclose(x, 1.0)

    def test_multiple_params(self):
        a = np.ones(2, dtype=np.float32)
        b = np.ones((2, 2), dtype=np.float32)
        adam = Adam([(2,), (2, 2)])
        adam.step([a, b], [np.ones(2), np.ones((2, 2))], lr=0.1)
        assert adam.t == 1
        assert len(adam.state_arrays()) == 4

    def test_count_mismatch_raises(self):
        adam = Adam([(2,)])
        with pytest.raises(ValueError):
            adam.step([np.ones(2), np.ones(2)], [np.ones(2)], lr=0.1)

    def test_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([(1,)], beta1=1.0)

    def test_zero_grad_is_noop_direction(self):
        x = np.array([3.0], dtype=np.float32)
        Adam([(1,)]).step([x], [np.zeros(1, dtype=np.float32)], lr=0.1)
        assert x[0] == pytest.approx(3.0)


class TestCosmoFlowOptimizer:
    def _quadratic_params(self):
        return [np.array([4.0, -2.0], dtype=np.float32)]

    def test_defaults_match_paper(self):
        cfg = OptimizerConfig()
        assert cfg.eta0 == 2e-3 and cfg.eta_min == 1e-4
        assert cfg.beta1 == 0.9 and cfg.beta2 == 0.999 and cfg.eps == 1e-8
        assert cfg.larc_trust == 0.002 and cfg.larc_fallback == 6.25e-5

    def test_lr_schedule_progression(self):
        params = self._quadratic_params()
        opt = CosmoFlowOptimizer(params, OptimizerConfig(decay_steps=10))
        lrs = []
        for _ in range(10):
            lrs.append(opt.current_lr())
            opt.step([2.0 * params[0]])
        assert lrs[0] == pytest.approx(2e-3)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_decay_disabled(self):
        params = self._quadratic_params()
        opt = CosmoFlowOptimizer(params, OptimizerConfig(use_decay=False, decay_steps=5))
        for _ in range(10):
            assert opt.current_lr() == pytest.approx(2e-3)
            opt.step([2.0 * params[0]])

    def test_converges_on_quadratic(self):
        params = [np.array([3.0], dtype=np.float32)]
        opt = CosmoFlowOptimizer(params, OptimizerConfig(eta0=0.1, eta_min=0.01, decay_steps=400))
        for _ in range(400):
            opt.step([2.0 * params[0]])
        assert abs(params[0][0]) < 0.2

    def test_larc_scales_gradients_fed_to_adam(self):
        """With LARC on, Adam receives eta+ * g per layer (Section III-B:
        g* = eta+ g, v_{t+1} = Adam(v_t, g*, eta_t)).  Note Adam itself is
        nearly invariant to uniform gradient scaling, so we verify the
        scaling at the Adam input, which is what the paper specifies."""
        params = [np.full(4, 2.0, dtype=np.float32), np.full(4, 50.0, dtype=np.float32)]
        grads = [np.full(4, 0.5, dtype=np.float32), np.full(4, 0.5, dtype=np.float32)]
        opt = CosmoFlowOptimizer([p.copy() for p in params], OptimizerConfig(use_larc=True))
        captured = {}
        original = opt.adam.step

        def capture(ps, gs, lr):
            captured["grads"] = [g.copy() for g in gs]
            return original(ps, gs, lr)

        opt.adam.step = capture
        opt.step(grads)
        expect0 = larc_scale(params[0], grads[0])
        expect1 = larc_scale(params[1], grads[1])
        assert expect0 != expect1  # different weight norms -> different trust
        np.testing.assert_allclose(captured["grads"][0], grads[0] * expect0, rtol=1e-6)
        np.testing.assert_allclose(captured["grads"][1], grads[1] * expect1, rtol=1e-6)

    def test_grad_count_mismatch(self):
        opt = CosmoFlowOptimizer(self._quadratic_params())
        with pytest.raises(ValueError):
            opt.step([np.ones(2), np.ones(2)])

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            CosmoFlowOptimizer([])

    def test_step_returns_lr(self):
        params = self._quadratic_params()
        opt = CosmoFlowOptimizer(params, OptimizerConfig(decay_steps=100))
        assert opt.step([np.ones(2, dtype=np.float32)]) == pytest.approx(2e-3)
        assert opt.step_count == 1
