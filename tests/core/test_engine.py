"""The TrainingEngine: callback hooks, backend protocol, config knobs.

Cross-mode numerics are covered by ``test_engine_equivalence.py``; this
file tests the engine's *mechanics* — hooks fire in order with the
right context, aggregation backends are swappable, the divergence
threshold is a config field, and the loop body is mode-free.
"""

import inspect

import numpy as np
import pytest

import repro.core.engine as engine_mod
from repro.comm.horovod import HorovodLike
from repro.core.elastic import ElasticConfig
from repro.core.engine import (
    Callback,
    CheckpointCallback,
    EngineConfig,
    LocalBackend,
    SteppedBackend,
    ThreadedBackend,
    TrainingEngine,
)
from repro.core.model import CosmoFlowModel
from repro.core.optimizer import CosmoFlowOptimizer, OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan

OPT = OptimizerConfig(eta0=5e-3, decay_steps=50)


def make_dataset(n=6, seed=0, size=16):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, size, size, size)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


def local_engine(epochs=2, n=4, callbacks=(), val=True, **cfg_kwargs):
    model = CosmoFlowModel(tiny_16(), seed=0)
    optimizer = CosmoFlowOptimizer(model.parameter_arrays(), OPT)
    backend = LocalBackend(
        model,
        optimizer,
        make_dataset(n),
        val_data=make_dataset(3, seed=7) if val else None,
    )
    return TrainingEngine(
        backend,
        config=EngineConfig(epochs=epochs, **cfg_kwargs),
        callbacks=callbacks,
    )


class Recorder(Callback):
    """Records every hook invocation as (hook, interesting-arg)."""

    def __init__(self):
        self.events = []

    def on_run_start(self, rc):
        self.events.append(("run_start", rc.rank))

    def on_epoch_start(self, rc):
        self.events.append(("epoch_start", rc.epoch))

    def on_step_end(self, rc):
        self.events.append(("step_end", rc.step))

    def on_validation(self, rc):
        self.events.append(("validation", rc.last_val_loss))

    def on_epoch_end(self, rc):
        self.events.append(("epoch_end", rc.epoch))

    def on_rank_end(self, rc):
        self.events.append(("rank_end", rc.rank))

    def on_restart(self, engine, restarts, exc):
        self.events.append(("restart", restarts))

    def on_run_end(self, engine, result):
        self.events.append(("run_end", len(result.history.train_loss)))


class TestCallbackHooks:
    def test_hooks_fire_in_canonical_order(self):
        rec = Recorder()
        local_engine(epochs=2, n=3, callbacks=[rec]).run()
        names = [name for name, _ in rec.events]
        per_epoch = ["epoch_start", "step_end", "step_end", "step_end",
                     "validation", "epoch_end"]
        assert names == ["run_start"] + per_epoch + per_epoch + ["rank_end", "run_end"]

    def test_step_and_epoch_indices(self):
        rec = Recorder()
        local_engine(epochs=2, n=3, callbacks=[rec]).run()
        assert [e for name, e in rec.events if name == "epoch_start"] == [0, 1]
        assert [s for name, s in rec.events if name == "step_end"] == [0, 1, 2] * 2
        val_losses = [v for name, v in rec.events if name == "validation"]
        assert all(np.isfinite(v) for v in val_losses)

    def test_no_validation_hook_without_val_data(self):
        rec = Recorder()
        local_engine(epochs=1, n=3, callbacks=[rec], val=False).run()
        assert "validation" not in [name for name, _ in rec.events]

    def test_hooks_fire_on_every_threaded_rank(self):
        rec = Recorder()
        backend = ThreadedBackend(
            tiny_16(), make_dataset(6), optimizer_config=OPT, n_ranks=2
        )
        TrainingEngine(
            backend, config=EngineConfig(epochs=1), callbacks=[rec]
        ).run()
        assert sorted(r for name, r in rec.events if name == "rank_end") == [0, 1]
        # run_end is a driver hook: once, not per rank.
        assert [name for name, _ in rec.events].count("run_end") == 1

    def test_on_restart_fires_on_quorum_loss(self, tmp_path):
        from repro.core.engine import ElasticBackend

        rec = Recorder()
        plan = FaultPlan(
            seed=1, events=[FaultEvent(FaultKind.RANK_CRASH, rank=1, step=4)]
        )
        backend = ElasticBackend(
            tiny_16(),
            make_dataset(6),
            optimizer_config=OPT,
            n_ranks=2,
            elastic=ElasticConfig(
                timeout_s=10.0,
                quorum=2,  # == n_ranks: any crash loses quorum
                checkpoint_dir=str(tmp_path),
                max_restarts=2,
            ),
            injector=FaultInjector(plan),
        )
        engine = TrainingEngine(
            backend, config=EngineConfig(epochs=4), callbacks=[rec]
        )
        hist = engine.run()
        assert ("restart", 1) in rec.events
        assert engine.group_stats["restarts"] == 1
        assert len(hist.train_loss) == 4  # full span despite the restart


class TestAggregatorSwap:
    def test_horovod_backend_is_bitwise_equal_to_plugin(self):
        def run(factory=None):
            backend = ThreadedBackend(
                tiny_16(),
                make_dataset(6),
                optimizer_config=OPT,
                n_ranks=2,
                aggregator_factory=factory,
            )
            eng = TrainingEngine(backend, config=EngineConfig(epochs=2))
            hist = eng.run()
            return eng.final_model.get_flat_parameters(), hist.train_loss

        plugin_params, plugin_losses = run()
        hvd_params, hvd_losses = run(lambda comm: HorovodLike(comm).init())
        # Chunked (plugin) and fused (Horovod) reductions both sum in
        # rank order elementwise, so the swap changes no bits.
        np.testing.assert_array_equal(plugin_params, hvd_params)
        assert plugin_losses == hvd_losses


class TestDivergenceThreshold:
    class Perturb(Callback):
        """Knock rank 1's replica off after the last epoch's updates."""

        def __init__(self, magnitude):
            self.magnitude = magnitude

        def on_epoch_end(self, rc):
            if rc.rank == 1 and rc.epoch == rc.engine.config.epochs - 1:
                params = rc.model.parameter_arrays()
                params[0][...] += self.magnitude

    def _run(self, magnitude, threshold):
        backend = ThreadedBackend(
            tiny_16(), make_dataset(6), optimizer_config=OPT, n_ranks=2
        )
        engine = TrainingEngine(
            backend,
            config=EngineConfig(epochs=1, divergence_threshold=threshold),
            callbacks=[self.Perturb(magnitude)],
        )
        return engine.run()

    def test_divergence_beyond_threshold_raises(self):
        with pytest.raises(RuntimeError, match="divergence"):
            self._run(magnitude=1e-2, threshold=1e-5)

    def test_threshold_is_configurable(self):
        hist = self._run(magnitude=1e-2, threshold=1.0)
        assert len(hist.train_loss) == 1

    def test_threshold_reaches_engine_from_distributed_config(self):
        from repro.core.distributed import DistributedConfig, DistributedTrainer

        trainer = DistributedTrainer(
            tiny_16(),
            make_dataset(6),
            config=DistributedConfig(n_ranks=2, divergence_threshold=0.25),
        )
        assert trainer.engine_config().divergence_threshold == 0.25
        with pytest.raises(ValueError):
            DistributedConfig(n_ranks=2, divergence_threshold=-1.0)


class TestEngineMechanics:
    def test_step_loop_has_no_mode_branches(self):
        """Acceptance criterion: zero ``if mode ==`` dispatch in the engine."""
        source = inspect.getsource(engine_mod)
        assert "mode ==" not in source
        assert 'mode="' not in source

    def test_run_epochs_override(self):
        eng = local_engine(epochs=5, n=3)
        hist = eng.run(epochs=1)
        assert len(hist.train_loss) == 1

    def test_final_model_before_run_raises(self):
        eng = local_engine()
        with pytest.raises(RuntimeError, match="has not completed"):
            eng.final_model

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(epochs=-1)
        with pytest.raises(ValueError):
            EngineConfig(batch_size=0)
        with pytest.raises(ValueError):
            EngineConfig(divergence_threshold=-0.5)

    def test_group_stats_published_on_engine(self):
        backend = SteppedBackend(
            tiny_16(), make_dataset(4), optimizer_config=OPT, n_ranks=2
        )
        eng = TrainingEngine(backend, config=EngineConfig(epochs=1))
        eng.run()
        assert eng.group_stats["reductions"] > 0
        assert eng.group_stats["bytes_reduced"] > 0

    def test_checkpoint_callback_on_local_backend(self, tmp_path):
        from repro.core.checkpoint import latest_checkpoint

        eng = local_engine(
            epochs=2, n=3, callbacks=[CheckpointCallback(tmp_path)]
        )
        eng.run()
        ckpt = latest_checkpoint(tmp_path)
        # Local backend names checkpoints by optimizer step count.
        assert ckpt is not None and ckpt.name == "ckpt-00000006.npz"

    def test_validation_io_attributed_to_io_stage(self):
        """Satellite: val batch fetches land in ``io``, not ``other``."""
        model = CosmoFlowModel(tiny_16(), seed=0)
        optimizer = CosmoFlowOptimizer(model.parameter_arrays(), OPT)
        backend = LocalBackend(
            model, optimizer, make_dataset(3), val_data=make_dataset(3, seed=7)
        )
        eng = TrainingEngine(backend, config=EngineConfig(epochs=1))
        eng.run()
        rc = backend.context(eng, eng.build_callbacks())
        train_io_calls = 3 + 1  # 3 batches + exhausted-stream probe
        val_io_calls = 3 + 1
        assert rc.timer.stages["io"].count == train_io_calls + val_io_calls
