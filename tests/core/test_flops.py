"""Tests for analytical flop/parameter accounting — including the
checks against the paper's published constants."""

import numpy as np
import pytest

from repro.core.flops import (
    PAPER_PARAM_BYTES,
    compressed_message_bytes,
    PAPER_TOTAL_FLOPS,
    network_costs,
    parameter_bytes,
    parameter_count,
    report,
    table1_rows,
    total_flops,
)
from repro.core.model import CosmoFlowModel
from repro.core.topology import paper_128, tiny_16

#: Table I implied per-layer forward flops (time x rate), Gflop.
TABLE1_IMPLIED_FWD = {
    "conv1": 1.14e-3 * 1.52e12,
    "conv2": 4.04e-3 * 3.51e12,
    "conv3": 2.32e-3 * 2.22e12,
}


class TestPaperConstants:
    def test_conv123_match_table1_exactly(self):
        """Our reconstruction reproduces Table I's implied flops for the
        three big conv layers to within timing-precision noise."""
        rows = {r["layer"]: r for r in table1_rows(paper_128())}
        for name, implied in TABLE1_IMPLIED_FWD.items():
            assert rows[name]["fwd_flops"] == pytest.approx(implied, rel=0.02)

    def test_parameter_count_vs_paper(self):
        """'slightly more than seven million parameters' / 28.15 MB."""
        n = parameter_count(paper_128())
        assert 7_000_000 < n < 7_200_000
        assert parameter_bytes(paper_128()) == pytest.approx(PAPER_PARAM_BYTES, rel=0.01)

    def test_total_flops_vs_paper(self):
        """69.33 Gflop total; our reconstruction lands within 10%."""
        total = total_flops(paper_128())["total"]
        assert total == pytest.approx(PAPER_TOTAL_FLOPS, rel=0.10)

    def test_conv1_has_no_backward_data(self):
        """Table I's empty conv1 Bwd cell."""
        conv1 = next(c for c in network_costs(paper_128()) if c.name == "conv1")
        assert conv1.bwd_data_flops == 0.0
        assert conv1.bwd_weight_flops > 0.0

    def test_conv_dominates(self):
        """'The majority of the floating-point operations occur in the
        forward and backward convolution layers.'"""
        totals = total_flops(paper_128())
        assert totals["conv_total"] / totals["total"] > 0.95

    def test_last_layers_small(self):
        """'The last four convolution layers have relatively little
        computation due to the smaller input sizes.'"""
        rows = table1_rows(paper_128())
        tail = sum(r["fwd_flops"] for r in rows[3:])
        head = sum(r["fwd_flops"] for r in rows[:3])
        assert tail < 0.05 * head


class TestAccountingConsistency:
    def test_params_match_built_network(self):
        for preset in (paper_128, tiny_16):
            cfg = preset()
            model = CosmoFlowModel(cfg, seed=0) if cfg.input_size <= 16 else None
            if model is not None:
                assert model.num_parameters == parameter_count(cfg)

    def test_tiny_params_match_network(self):
        cfg = tiny_16()
        model = CosmoFlowModel(cfg, seed=0)
        assert model.num_parameters == parameter_count(cfg)
        assert model.parameter_nbytes == parameter_bytes(cfg)

    def test_total_is_sum_of_parts(self):
        totals = total_flops(tiny_16())
        assert totals["total"] == pytest.approx(
            totals["fwd"] + totals["bwd_data"] + totals["bwd_weights"]
        )

    def test_costs_all_nonnegative(self):
        for c in network_costs(paper_128()):
            assert c.params >= 0
            assert c.fwd_flops >= 0 and c.bwd_data_flops >= 0 and c.bwd_weight_flops >= 0

    def test_conv_flops_formula(self):
        """Spot-check conv2: 2 * 60^3 * 32 * 16 * 4^3."""
        conv2 = next(c for c in network_costs(paper_128()) if c.name == "conv2")
        assert conv2.fwd_flops == 2 * 60**3 * 32 * 16 * 64

    def test_fc_flops_formula(self):
        fc1 = next(c for c in network_costs(paper_128()) if c.name == "fc1")
        assert fc1.fwd_flops == 2 * 8000 * 784
        assert fc1.params == 8001 * 784

    def test_pool_layers_counted(self):
        kinds = [c.kind for c in network_costs(paper_128())]
        assert kinds.count("pool") == 3
        assert kinds.count("conv") == 7
        assert kinds.count("dense") == 3

    def test_report_strings(self):
        text = report(paper_128())
        assert "7,081,523" in text
        assert "paper constants" in text
        text2 = report(tiny_16())
        assert "paper constants" not in text2  # only for the full network

    def test_table1_rows_structure(self):
        rows = table1_rows(paper_128())
        assert [r["layer"] for r in rows] == [f"conv{i}" for i in range(1, 8)]
        assert rows[0]["bwd_flops"] == 0.0


class TestCompressedMessageBytes:
    def test_none_is_dense(self):
        assert compressed_message_bytes(paper_128()) == parameter_bytes(paper_128())

    def test_fp16_halves(self):
        cfg = paper_128()
        assert compressed_message_bytes(cfg, "fp16") == parameter_bytes(cfg) / 2

    def test_topk_is_2f(self):
        cfg = paper_128()
        assert compressed_message_bytes(cfg, "topk", topk_fraction=0.1) == pytest.approx(
            0.2 * parameter_bytes(cfg)
        )
