"""Engine-level tests for elastic grow-back (rank rejoin + warm spares).

The contract:

* a crashed rank scheduled to recover is readmitted at a step boundary
  with a full state resync and the active set (and effective global
  batch) grows back to full strength;
* a warm-spare pool auto-replaces evicted ranks without any scheduled
  recovery event;
* the whole fault + recovery schedule is seeded: replaying it gives a
  bitwise-identical run;
* a rejoin-enabled run with no faults is bitwise identical to the
  plain threaded trainer (zero-cost when unused).
"""

import numpy as np

from repro.core.distributed import DistributedConfig, DistributedTrainer
from repro.core.elastic import ElasticConfig, ElasticTrainer
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.obs.metrics import MetricsRegistry


def make_dataset(n=16, seed=0, size=16):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, size, size, size)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


OPT = OptimizerConfig(eta0=5e-3, decay_steps=50)


def run_elastic(plan=None, spares=0, n_ranks=4, epochs=4, n=16, metrics=None):
    trainer = ElasticTrainer(
        tiny_16(),
        make_dataset(n),
        config=DistributedConfig(
            n_ranks=n_ranks, epochs=epochs, mode="elastic", validate=False
        ),
        optimizer_config=OPT,
        elastic=ElasticConfig(timeout_s=10.0, spares=spares),
        injector=FaultInjector(plan or FaultPlan()),
        metrics=metrics,
    )
    hist = trainer.run()
    return trainer, hist


class TestGrowBack:
    def test_crash_then_recover_restores_full_group(self):
        # 4 steps/epoch: crash in epoch 1, recover in epoch 2.
        plan = FaultPlan(
            events=[FaultEvent(FaultKind.RANK_CRASH, rank=1, step=5)]
        ).with_recovery(4)
        metrics = MetricsRegistry()
        trainer, hist = run_elastic(plan, metrics=metrics)
        stats = trainer.group_stats
        assert stats["failed_ranks"] == [1]
        assert stats["rejoins"] == [1]
        assert stats["survivors"] == [0, 1, 2, 3]
        assert stats["resyncs"] == 1
        assert stats["resync_bytes"] > 0
        assert stats["faults_injected"] == {"rank_crash": 1, "rank_recover": 1}
        # The effective global batch dips while shrunk, then recovers
        # to exactly its pre-crash value once the rank is readmitted.
        assert hist.effective_batch == [4.0, 3.0, 4.0, 4.0]
        assert len(hist.train_loss) == 4
        # The on_rejoin observability hook fired once.
        assert metrics.value("engine.rejoins") == 1

    def test_warm_spare_auto_replaces_crashed_rank(self):
        plan = FaultPlan(events=[FaultEvent(FaultKind.RANK_CRASH, rank=2, step=5)])
        trainer, hist = run_elastic(plan, spares=1)
        stats = trainer.group_stats
        assert stats["rejoins"] == [2]
        assert stats["spares_used"] == 1
        assert stats["survivors"] == [0, 1, 2, 3]
        # The spare lands at the next step boundary, inside the same
        # epoch — by each epoch's end the group is at full strength.
        assert hist.effective_batch == [4.0, 4.0, 4.0, 4.0]

    def test_spare_join_event_revives_lowest_dead_rank(self):
        plan = FaultPlan(
            events=[
                FaultEvent(FaultKind.RANK_CRASH, rank=3, step=2),
                FaultEvent(FaultKind.RANK_CRASH, rank=0, step=3),
                FaultEvent(FaultKind.SPARE_JOIN, rank=None, step=6),
            ]
        )
        trainer, hist = run_elastic(plan, spares=1, epochs=3)
        stats = trainer.group_stats
        # auto_respawn reserved the one spare for rank 3 (first death);
        # the SPARE_JOIN event then found the pool empty, so exactly one
        # rank grew back.
        assert stats["rejoins"] == [3]
        assert stats["spares_used"] == 1
        assert stats["survivors"] == [1, 2, 3]
        assert hist.effective_batch[-1] == 3.0

    def test_evicted_straggler_is_replaced_by_spare(self):
        plan = FaultPlan(
            events=[FaultEvent(FaultKind.RANK_HANG, rank=1, step=3, delay_s=2.0)]
        )
        trainer = ElasticTrainer(
            tiny_16(),
            make_dataset(),
            config=DistributedConfig(
                n_ranks=4, epochs=3, mode="elastic", validate=False
            ),
            optimizer_config=OPT,
            elastic=ElasticConfig(timeout_s=0.3, spares=1),
            injector=FaultInjector(plan),
        )
        hist = trainer.run()
        stats = trainer.group_stats
        assert stats["evicted_ranks"] == [1]
        assert stats["rejoins"] == [1]
        assert stats["survivors"] == [0, 1, 2, 3]
        assert hist.effective_batch[-1] == 4.0


class TestRejoinDeterminism:
    def test_seeded_fault_and_recovery_schedule_replays_identically(self):
        plan = FaultPlan(
            events=[
                FaultEvent(FaultKind.RANK_CRASH, rank=1, step=5),
                FaultEvent(FaultKind.RANK_CRASH, rank=3, step=6),
            ]
        ).with_recovery(3)
        t1, h1 = run_elastic(plan)
        t2, h2 = run_elastic(plan)
        assert h1.train_loss == h2.train_loss  # bitwise, not approx
        assert h1.effective_batch == h2.effective_batch
        np.testing.assert_array_equal(
            t1.final_model.get_flat_parameters(),
            t2.final_model.get_flat_parameters(),
        )
        assert t1.group_stats["rejoins"] == t2.group_stats["rejoins"] == [1, 3]

    def test_no_fault_run_with_growback_enabled_is_bitwise_baseline(self):
        """Spares configured but never used: the run must be bitwise
        identical to the plain threaded trainer."""
        ref = DistributedTrainer(
            tiny_16(),
            make_dataset(),
            config=DistributedConfig(
                n_ranks=4, epochs=3, mode="threaded", validate=False
            ),
            optimizer_config=OPT,
        )
        ref_hist = ref.run()
        trainer, hist = run_elastic(plan=None, spares=2, epochs=3)
        assert hist.train_loss == ref_hist.train_loss
        assert hist.lr == ref_hist.lr
        np.testing.assert_array_equal(
            trainer.final_model.get_flat_parameters(),
            ref.final_model.get_flat_parameters(),
        )
        assert trainer.group_stats["rejoins"] == []
        assert trainer.group_stats["spares_used"] == 0
