"""Tests for the CosmoFlow topology and presets."""

import numpy as np
import pytest

from repro.core.topology import (
    ConvSpec,
    CosmoFlowConfig,
    PRESETS,
    build_network,
    default_parameter_space,
    paper_128,
    ravanbakhsh_64,
    scaled_32,
    tiny_16,
)


class TestPaper128:
    def test_paper_constraints(self):
        """Everything Section III-A specifies about the topology."""
        cfg = paper_128()
        assert cfg.input_size == 128
        assert cfg.n_conv == 7  # "7 convolution layers"
        assert cfg.n_fc == 3  # "3 fully-connected layers"
        assert cfg.n_pool == 3  # "three average pooling layers"
        assert cfg.n_outputs == 3  # three cosmological parameters
        # channels are multiples of 16 for SIMD vectorization
        assert all(s.out_channels % 16 == 0 for s in cfg.conv_layers)
        # channels double at each pooled stage: 16 -> 32 -> 64
        pooled = [s.out_channels for s in cfg.conv_layers if s.pool]
        assert pooled == [16, 32, 64]

    def test_spatial_progression(self):
        """The Table-I-derived spatial sizes."""
        assert paper_128().spatial_sizes() == [63, 30, 13, 11, 9, 7, 5]

    def test_flattened_size(self):
        assert paper_128().flattened_size == 5**3 * 64  # 8000

    def test_describe(self):
        text = paper_128().describe()
        assert "conv1" in text and "fc3" in text and "128^3" in text


class TestOtherPresets:
    def test_ravanbakhsh_is_smaller(self):
        cfg = ravanbakhsh_64()
        assert cfg.input_size == 64
        assert cfg.n_conv == 6  # one fewer conv
        assert cfg.n_pool == 2  # one fewer pool
        assert cfg.n_outputs == 2  # two predicted parameters

    def test_all_presets_valid(self):
        for name, factory in PRESETS.items():
            cfg = factory()
            assert cfg.name == name
            assert cfg.flattened_size > 0

    def test_scaled_presets_structure(self):
        for factory in (scaled_32, tiny_16):
            cfg = factory()
            assert cfg.n_outputs == 3
            assert all(s.out_channels % 16 == 0 for s in cfg.conv_layers)

    def test_with_outputs(self):
        cfg = tiny_16().with_outputs(2)
        assert cfg.n_outputs == 2
        assert "out2" in cfg.name


class TestValidation:
    def test_collapsing_extent_raises(self):
        # either message is fine: the conv shape check or the collapse check
        with pytest.raises(ValueError, match="collapsed|larger than"):
            CosmoFlowConfig(
                name="bad",
                input_size=8,
                conv_layers=(ConvSpec(16, 3, pool=True), ConvSpec(16, 4)),
                fc_sizes=(8,),
            )

    def test_empty_convs_raise(self):
        with pytest.raises(ValueError):
            CosmoFlowConfig(name="bad", input_size=16, conv_layers=(), fc_sizes=(8,))

    def test_bad_outputs_raise(self):
        with pytest.raises(ValueError):
            CosmoFlowConfig(
                name="bad",
                input_size=16,
                conv_layers=(ConvSpec(16, 3),),
                fc_sizes=(8,),
                n_outputs=0,
            )

    def test_tiny_input_raises(self):
        with pytest.raises(ValueError):
            CosmoFlowConfig(
                name="bad", input_size=2, conv_layers=(ConvSpec(16, 3),), fc_sizes=(8,)
            )


class TestBuildNetwork:
    def test_forward_shape(self):
        cfg = tiny_16()
        net = build_network(cfg, seed=0)
        out = net(np.zeros((2, 1, 16, 16, 16), dtype=np.float32))
        assert out.shape == (2, 3)

    def test_output_shape_matches_config(self):
        cfg = scaled_32()
        net = build_network(cfg, seed=0)
        assert net.output_shape((1, 32, 32, 32)) == (3,)

    def test_same_seed_identical_weights(self):
        a = build_network(tiny_16(), seed=42)
        b = build_network(tiny_16(), seed=42)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seed_differs(self):
        a = build_network(tiny_16(), seed=1)
        b = build_network(tiny_16(), seed=2)
        assert any(
            not np.array_equal(pa.data, pb.data)
            for pa, pb in zip(a.parameters(), b.parameters())
        )

    def test_layer_counts(self):
        cfg = paper_128()
        net = build_network(cfg, seed=0)
        kinds = [type(l).__name__ for l in net]
        assert kinds.count("Conv3D") == 7
        assert kinds.count("AvgPool3D") == 3
        assert kinds.count("Dense") == 3
        assert kinds.count("Flatten") == 1
        # leaky ReLU after every conv and hidden FC, linear head
        assert kinds.count("LeakyReLU") == 7 + 2

    def test_output_activation_flag(self):
        from dataclasses import replace

        cfg = replace(tiny_16(), output_activation=True)
        net = build_network(cfg, seed=0)
        assert type(net.layers[-1]).__name__ == "LeakyReLU"

    def test_default_parameter_space(self):
        assert default_parameter_space(paper_128()).n_params == 3
        assert default_parameter_space(ravanbakhsh_64()).names == ("omega_m", "sigma_8")
