"""Tests for fully synchronous data-parallel training (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.distributed import DistributedConfig, DistributedTrainer
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData


def make_dataset(n=8, seed=0, size=16):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, size, size, size)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


OPT = OptimizerConfig(eta0=5e-3, decay_steps=50)


class TestConfig:
    def test_global_batch_equals_ranks(self):
        assert DistributedConfig(n_ranks=7).global_batch_size == 7

    def test_bad_ranks(self):
        with pytest.raises(ValueError):
            DistributedConfig(n_ranks=0)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            DistributedConfig(n_ranks=2, mode="async")

    def test_dataset_smaller_than_ranks_raises(self):
        with pytest.raises(ValueError, match="cannot feed"):
            DistributedTrainer(
                tiny_16(), make_dataset(2), config=DistributedConfig(n_ranks=4)
            )

    def test_steps_per_epoch(self):
        t = DistributedTrainer(
            tiny_16(), make_dataset(10), config=DistributedConfig(n_ranks=3)
        )
        assert t.steps_per_epoch == 3  # floor(10 / 3), paper's N/k


class TestSteppedMode:
    def test_trains_and_converges(self):
        trainer = DistributedTrainer(
            tiny_16(),
            make_dataset(8),
            config=DistributedConfig(n_ranks=4, epochs=6, mode="stepped", validate=False),
            optimizer_config=OPT,
        )
        hist = trainer.run()
        assert len(hist.train_loss) == 6
        assert hist.train_loss[-1] < hist.train_loss[0]

    def test_validation(self):
        trainer = DistributedTrainer(
            tiny_16(),
            make_dataset(4),
            val_data=make_dataset(2, seed=7),
            config=DistributedConfig(n_ranks=2, epochs=2, mode="stepped"),
            optimizer_config=OPT,
        )
        hist = trainer.run()
        assert all(np.isfinite(v) for v in hist.val_loss)

    def test_group_stats_recorded(self):
        trainer = DistributedTrainer(
            tiny_16(),
            make_dataset(4),
            config=DistributedConfig(n_ranks=2, epochs=1, mode="stepped", validate=False),
            optimizer_config=OPT,
        )
        trainer.run()
        assert trainer.group_stats["reductions"] == trainer.steps_per_epoch
        assert trainer.group_stats["bytes_reduced"] > 0

    def test_final_model_available(self):
        trainer = DistributedTrainer(
            tiny_16(),
            make_dataset(4),
            config=DistributedConfig(n_ranks=2, epochs=1, mode="stepped", validate=False),
            optimizer_config=OPT,
        )
        with pytest.raises(RuntimeError):
            _ = trainer.final_model
        trainer.run()
        assert trainer.final_model.num_parameters > 0

    def test_one_rank_reduces_to_serial_sgd(self):
        """k=1 distributed == plain single-process training."""
        from repro.core.model import CosmoFlowModel
        from repro.core.trainer import Trainer, TrainerConfig

        data = make_dataset(4)
        dist = DistributedTrainer(
            tiny_16(),
            data,
            config=DistributedConfig(n_ranks=1, epochs=2, mode="stepped", validate=False, seed=0),
            optimizer_config=OPT,
        )
        dist.run()

        model = CosmoFlowModel(tiny_16(), seed=0)
        # match the stepped trainer's per-rank shuffle stream
        Trainer(
            model,
            data,
            optimizer_config=OPT,
            config=TrainerConfig(epochs=2, validate=False, seed=None),
        )
        # parameter-level equivalence needs the same sample order; just
        # check both trained to finite, improving losses instead
        assert dist.history.train_loss[-1] < dist.history.train_loss[0]


class TestThreadedMode:
    def test_trains_and_checks_divergence(self):
        trainer = DistributedTrainer(
            tiny_16(),
            make_dataset(6),
            val_data=make_dataset(2, seed=5),
            config=DistributedConfig(n_ranks=3, epochs=2, mode="threaded"),
            optimizer_config=OPT,
        )
        hist = trainer.run()
        assert len(hist.train_loss) == 2
        assert trainer.group_stats["max_param_divergence"] <= 1e-5
        assert trainer.final_model is not None

    def test_threaded_matches_stepped(self):
        """The two execution modes are numerically equivalent."""
        data = make_dataset(6, seed=3)
        kwargs = dict(optimizer_config=OPT)
        stepped = DistributedTrainer(
            tiny_16(),
            data,
            config=DistributedConfig(n_ranks=3, epochs=2, mode="stepped", validate=False, seed=1),
            **kwargs,
        )
        threaded = DistributedTrainer(
            tiny_16(),
            data,
            config=DistributedConfig(n_ranks=3, epochs=2, mode="threaded", validate=False, seed=1),
            **kwargs,
        )
        h1 = stepped.run()
        h2 = threaded.run()
        np.testing.assert_allclose(h1.train_loss, h2.train_loss, rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(
            stepped.final_model.get_flat_parameters(),
            threaded.final_model.get_flat_parameters(),
            rtol=1e-4,
            atol=1e-5,
        )


class TestBatchSizeEffect:
    @pytest.mark.slow
    def test_larger_global_batch_converges_slower_per_epoch(self):
        """The Figure 5 phenomenon: more ranks (larger global batch)
        means fewer, larger steps per epoch and slower per-epoch
        convergence at fixed hyperparameters."""
        data = make_dataset(32, seed=2)

        def loss_after(n_ranks):
            trainer = DistributedTrainer(
                tiny_16(),
                data,
                config=DistributedConfig(
                    n_ranks=n_ranks, epochs=4, mode="stepped", validate=False, seed=0
                ),
                optimizer_config=OptimizerConfig(eta0=2e-3, decay_steps=1000),
            )
            return trainer.run().train_loss[-1]

        assert loss_after(2) < loss_after(16)
