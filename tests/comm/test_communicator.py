"""Tests for the communicator API, serial and stepped backends."""

import numpy as np
import pytest

from repro.comm.communicator import ReduceOp, reduce_arrays
from repro.comm.serial import SerialCommunicator, SteppedGroup


class TestReduceArrays:
    def test_sum(self):
        out = reduce_arrays([np.ones(3), np.full(3, 2.0)], ReduceOp.SUM)
        np.testing.assert_allclose(out, 3.0)

    def test_mean(self):
        out = reduce_arrays([np.ones(3), np.full(3, 3.0)], ReduceOp.MEAN)
        np.testing.assert_allclose(out, 2.0)

    def test_max_min(self):
        a = np.array([1.0, 5.0])
        b = np.array([3.0, 2.0])
        np.testing.assert_allclose(reduce_arrays([a, b], ReduceOp.MAX), [3.0, 5.0])
        np.testing.assert_allclose(reduce_arrays([a, b], ReduceOp.MIN), [1.0, 2.0])

    def test_does_not_mutate_inputs(self):
        a = np.ones(3)
        reduce_arrays([a, np.ones(3)], ReduceOp.SUM)
        np.testing.assert_allclose(a, 1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            reduce_arrays([], ReduceOp.SUM)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            reduce_arrays([np.ones(2), np.ones(3)], ReduceOp.SUM)

    def test_deterministic_rank_order(self):
        # Association must be ((a0+a1)+a2), not a pairwise tree.
        rng = np.random.default_rng(0)
        arrays = [rng.standard_normal(100).astype(np.float32) for _ in range(5)]
        expect = arrays[0].copy()
        for a in arrays[1:]:
            expect = expect + a
        np.testing.assert_array_equal(reduce_arrays(arrays, ReduceOp.SUM), expect)


class TestSerialCommunicator:
    def test_identity_collectives(self):
        comm = SerialCommunicator()
        assert comm.rank == 0 and comm.size == 1
        x = np.array([1.0, 2.0])
        np.testing.assert_allclose(comm.allreduce(x, ReduceOp.MEAN), x)
        np.testing.assert_allclose(comm.bcast(x), x)
        gathered = comm.gather(x)
        assert len(gathered) == 1
        comm.barrier()

    def test_bcast_copies(self):
        comm = SerialCommunicator()
        x = np.array([1.0])
        y = comm.bcast(x)
        y[0] = 99.0
        assert x[0] == 1.0

    def test_bcast_requires_array(self):
        with pytest.raises(ValueError):
            SerialCommunicator().bcast(None)

    def test_bad_root(self):
        with pytest.raises(ValueError):
            SerialCommunicator().bcast(np.ones(1), root=1)

    def test_allgather(self):
        comm = SerialCommunicator()
        out = comm.allgather(np.array([7.0]))
        assert len(out) == 1
        np.testing.assert_allclose(out[0], [7.0])


class TestSteppedGroup:
    def test_allreduce_mean(self):
        g = SteppedGroup(4)
        arrays = [np.full(3, float(r)) for r in range(4)]
        out = g.allreduce(arrays, ReduceOp.MEAN)
        assert len(out) == 4
        for o in out:
            np.testing.assert_allclose(o, 1.5)

    def test_results_independent(self):
        g = SteppedGroup(2)
        out = g.allreduce([np.ones(2), np.ones(2)], ReduceOp.SUM)
        out[0][0] = 99.0
        assert out[1][0] == 2.0

    def test_stats(self):
        g = SteppedGroup(2)
        g.allreduce([np.ones(4, dtype=np.float32)] * 2)
        assert g.reductions == 1
        assert g.bytes_reduced == 4 * 4 * 2

    def test_bcast(self):
        g = SteppedGroup(3)
        out = g.bcast(np.array([5.0]))
        assert len(out) == 3
        for o in out:
            np.testing.assert_allclose(o, [5.0])

    def test_gather(self):
        g = SteppedGroup(2)
        out = g.gather([np.array([0.0]), np.array([1.0])])
        np.testing.assert_allclose(out[1], [1.0])

    def test_wrong_count_raises(self):
        g = SteppedGroup(3)
        with pytest.raises(ValueError):
            g.allreduce([np.ones(2)] * 2)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            SteppedGroup(0)
