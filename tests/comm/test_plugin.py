"""Tests for MLPlugin and the parameter-server baseline."""

import numpy as np
import pytest

from repro.comm.grpc_baseline import ParameterServer
from repro.comm.plugin import MLPlugin, PluginConfig
from repro.comm.serial import SerialCommunicator
from repro.comm.threaded import ThreadedGroup


class TestPluginConfig:
    def test_chunks(self):
        assert PluginConfig(teams=2, threads_per_team=4).n_chunks == 8

    def test_defaults_match_cori(self):
        cfg = PluginConfig()
        assert cfg.teams == 1 and cfg.threads_per_team == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            PluginConfig(teams=0)


class TestMLPluginSerial:
    def test_requires_init(self):
        plugin = MLPlugin(SerialCommunicator())
        with pytest.raises(RuntimeError):
            plugin.gradients([np.ones(4)])

    def test_finalize_disables(self):
        plugin = MLPlugin(SerialCommunicator()).init()
        plugin.finalize()
        with pytest.raises(RuntimeError):
            plugin.average_scalar(1.0)

    def test_single_rank_identity(self):
        plugin = MLPlugin(SerialCommunicator()).init()
        grads = [np.arange(6, dtype=np.float32).reshape(2, 3), np.ones(2, dtype=np.float32)]
        out = plugin.gradients(grads)
        assert [o.shape for o in out] == [(2, 3), (2,)]
        np.testing.assert_allclose(out[0], grads[0])
        np.testing.assert_allclose(out[1], grads[1])

    def test_stats(self):
        plugin = MLPlugin(SerialCommunicator(), PluginConfig(teams=1, threads_per_team=2)).init()
        plugin.gradients([np.ones(8, dtype=np.float32)])
        assert plugin.stats.calls == 1
        assert plugin.stats.bytes_reduced == 32
        assert plugin.stats.chunks_reduced == 2
        assert len(plugin.stats.per_call_seconds) == 1

    def test_more_chunks_than_elements(self):
        plugin = MLPlugin(SerialCommunicator(), PluginConfig(teams=1, threads_per_team=16)).init()
        out = plugin.gradients([np.ones(3, dtype=np.float32)])
        np.testing.assert_allclose(out[0], 1.0)

    def test_average_scalar(self):
        plugin = MLPlugin(SerialCommunicator()).init()
        assert plugin.average_scalar(2.5) == pytest.approx(2.5)


class TestMLPluginMultiRank:
    def test_gradients_globally_averaged(self):
        group = ThreadedGroup(4)

        def body(comm):
            plugin = MLPlugin(comm).init()
            grads = [
                np.full((3, 2), float(comm.rank), dtype=np.float32),
                np.full(5, float(comm.rank * 2), dtype=np.float32),
            ]
            return plugin.gradients(grads)

        results = group.run(body)
        for out in results:
            np.testing.assert_allclose(out[0], 1.5)  # mean(0,1,2,3)
            np.testing.assert_allclose(out[1], 3.0)  # mean(0,2,4,6)

    def test_all_ranks_identical_result(self):
        rng = np.random.default_rng(0)
        payloads = [rng.standard_normal(97).astype(np.float32) for _ in range(3)]
        group = ThreadedGroup(3)

        def body(comm):
            return MLPlugin(comm).init().gradients([payloads[comm.rank]])[0]

        results = group.run(body)
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[1], results[2])

    def test_broadcast_parameters(self):
        group = ThreadedGroup(3)

        def body(comm):
            params = [np.full(4, float(comm.rank), dtype=np.float32)]
            MLPlugin(comm).init().broadcast_parameters(params)
            return params[0]

        for p in group.run(body):
            np.testing.assert_allclose(p, 0.0)  # everyone got rank 0's values

    def test_average_scalar_multirank(self):
        group = ThreadedGroup(4)

        def body(comm):
            return MLPlugin(comm).init().average_scalar(float(comm.rank))

        for v in group.run(body):
            assert v == pytest.approx(1.5)

    def test_chunked_equals_unchunked(self):
        rng = np.random.default_rng(1)
        payloads = [rng.standard_normal(101).astype(np.float32) for _ in range(2)]

        def run_with(chunks):
            group = ThreadedGroup(2)

            def body(comm):
                cfg = PluginConfig(teams=1, threads_per_team=chunks)
                return MLPlugin(comm, cfg).init().gradients([payloads[comm.rank]])[0]

            return group.run(body)[0]

        np.testing.assert_allclose(run_with(1), run_with(7), rtol=1e-6, atol=1e-7)


class TestParameterServer:
    def test_aggregate_all(self):
        ps = ParameterServer(3)
        grads = [np.full(4, float(w)) for w in range(3)]
        outs = ps.aggregate_all(grads)
        for o in outs:
            np.testing.assert_allclose(o, 1.0)
        assert ps.steps_completed == 1

    def test_pull_before_complete_raises(self):
        ps = ParameterServer(2)
        ps.push(0, np.ones(2))
        with pytest.raises(RuntimeError, match="waiting on 1"):
            ps.pull(0)

    def test_double_push_raises(self):
        ps = ParameterServer(2)
        ps.push(0, np.ones(2))
        with pytest.raises(RuntimeError, match="twice"):
            ps.push(0, np.ones(2))

    def test_push_after_aggregation_raises(self):
        ps = ParameterServer(2)
        ps.push(0, np.ones(2))
        ps.push(1, np.ones(2))
        with pytest.raises(RuntimeError):
            ps.push(0, np.ones(2))

    def test_multiple_steps(self):
        ps = ParameterServer(2)
        for step in range(3):
            outs = ps.aggregate_all([np.full(2, float(step)), np.full(2, float(step))])
            np.testing.assert_allclose(outs[0], step)
        assert ps.steps_completed == 3

    def test_root_link_accounting(self):
        ps = ParameterServer(4)
        ps.aggregate_all([np.ones(10, dtype=np.float32)] * 4)
        # ingress: 4 pushes; egress: 4 pulls, 40 bytes each
        assert ps.bytes_ingress == 160
        assert ps.bytes_egress == 160
        assert ps.root_link_bytes == 320

    def test_bad_worker_index(self):
        ps = ParameterServer(2)
        with pytest.raises(ValueError):
            ps.push(5, np.ones(2))
        with pytest.raises(ValueError):
            ps.pull(-1)

    def test_wrong_gradient_count(self):
        ps = ParameterServer(2)
        with pytest.raises(ValueError):
            ps.aggregate_all([np.ones(2)])

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ParameterServer(0)
