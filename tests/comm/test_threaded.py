"""Tests for the threaded SPMD backend."""

import time

import numpy as np
import pytest

from repro.comm.communicator import ReduceOp, reduce_arrays
from repro.comm.errors import CommTimeoutError
from repro.comm.serial import SteppedGroup
from repro.comm.threaded import ThreadedGroup


class TestThreadedGroup:
    def test_allreduce_sum(self):
        g = ThreadedGroup(4)

        def body(comm):
            x = np.full(5, float(comm.rank), dtype=np.float32)
            return comm.allreduce(x, ReduceOp.SUM)

        results = g.run(body)
        for r in results:
            np.testing.assert_allclose(r, 0 + 1 + 2 + 3)

    def test_allreduce_mean_matches_reference(self):
        rng = np.random.default_rng(0)
        arrays = [rng.standard_normal(64).astype(np.float32) for _ in range(3)]
        g = ThreadedGroup(3)
        results = g.run(lambda comm: comm.allreduce(arrays[comm.rank], ReduceOp.MEAN))
        want = reduce_arrays(arrays, ReduceOp.MEAN)
        for r in results:
            np.testing.assert_array_equal(r, want)

    def test_matches_stepped_bitwise(self):
        """Threaded and stepped backends share reduction numerics."""
        rng = np.random.default_rng(1)
        arrays = [rng.standard_normal(33).astype(np.float32) for _ in range(5)]
        threaded = ThreadedGroup(5).run(
            lambda comm: comm.allreduce(arrays[comm.rank], ReduceOp.MEAN)
        )
        stepped = SteppedGroup(5).allreduce(arrays, ReduceOp.MEAN)
        for a, b in zip(threaded, stepped):
            np.testing.assert_array_equal(a, b)

    def test_sequential_collectives(self):
        """Multiple collectives in sequence do not cross-contaminate."""
        g = ThreadedGroup(3)

        def body(comm):
            a = comm.allreduce(np.array([float(comm.rank)]), ReduceOp.SUM)
            b = comm.allreduce(np.array([float(comm.rank * 10)]), ReduceOp.SUM)
            return a[0], b[0]

        for a, b in g.run(body):
            assert a == 3.0
            assert b == 30.0

    def test_bcast(self):
        g = ThreadedGroup(4)

        def body(comm):
            payload = np.array([42.0]) if comm.rank == 2 else None
            return comm.bcast(payload, root=2)

        for r in g.run(body):
            np.testing.assert_allclose(r, [42.0])

    def test_gather(self):
        g = ThreadedGroup(3)

        def body(comm):
            return comm.gather(np.array([float(comm.rank)]), root=1)

        results = g.run(body)
        assert results[0] is None and results[2] is None
        np.testing.assert_allclose(np.concatenate(results[1]), [0.0, 1.0, 2.0])

    def test_allgather(self):
        g = ThreadedGroup(3)

        def body(comm):
            return comm.allgather(np.array([float(comm.rank)]))

        for r in g.run(body):
            np.testing.assert_allclose(np.concatenate(r), [0.0, 1.0, 2.0])

    def test_barrier_runs(self):
        g = ThreadedGroup(4)

        def body(comm):
            comm.barrier()
            return comm.rank

        assert sorted(g.run(body)) == [0, 1, 2, 3]

    def test_args_per_rank(self):
        g = ThreadedGroup(2)
        results = g.run(lambda comm, x: x * 2, args_per_rank=[(1,), (10,)])
        assert results == [2, 20]

    def test_args_per_rank_length_check(self):
        g = ThreadedGroup(2)
        with pytest.raises(ValueError):
            g.run(lambda comm, x: x, args_per_rank=[(1,)])

    def test_exception_propagates_without_hang(self):
        g = ThreadedGroup(3)

        def body(comm):
            if comm.rank == 1:
                raise RuntimeError("rank 1 exploded")
            comm.allreduce(np.ones(2))  # would deadlock without abort
            return comm.rank

        with pytest.raises(RuntimeError, match="rank 1 exploded"):
            g.run(body)

    def test_reusable_after_error(self):
        g = ThreadedGroup(2)

        def bad(comm):
            raise ValueError("nope")

        with pytest.raises(ValueError):
            g.run(bad)
        results = g.run(lambda comm: comm.allreduce(np.array([1.0]))[0])
        assert results == [2.0, 2.0]

    def test_stats(self):
        g = ThreadedGroup(2)
        g.run(lambda comm: comm.allreduce(np.ones(4, dtype=np.float32)))
        assert g.reductions == 1
        assert g.bytes_reduced == 4 * 4 * 2

    def test_size_one(self):
        g = ThreadedGroup(1)
        out = g.run(lambda comm: comm.allreduce(np.array([3.0]), ReduceOp.MEAN))
        np.testing.assert_allclose(out[0], [3.0])

    def test_bad_size(self):
        with pytest.raises(ValueError):
            ThreadedGroup(0)

    def test_healthy_run_longer_than_timeout_succeeds(self):
        """timeout_s bounds each collective wait, never the whole run:
        a healthy multi-step body outliving timeout_s must complete."""
        g = ThreadedGroup(2, timeout_s=0.2)

        def body(comm):
            total = 0.0
            for _ in range(8):  # ~0.4 s total, each gap well under 0.2 s
                time.sleep(0.05)
                total += comm.allreduce(np.array([1.0]))[0]
            return total

        assert g.run(body) == [16.0, 16.0]

    def test_rank_hung_outside_collectives_detected(self):
        """A rank stalled where no barrier can see it must not hang the
        caller: once its peers finish, it gets timeout_s to unwind."""
        g = ThreadedGroup(2, timeout_s=0.3)

        def body(comm):
            comm.barrier()
            if comm.rank == 1:
                time.sleep(5.0)  # far past any timeout, no collective in sight
            return comm.rank

        t0 = time.monotonic()
        with pytest.raises(CommTimeoutError, match=r"rank\(s\) \[1\]"):
            g.run(body)
        assert time.monotonic() - t0 < 3.0  # did not wait out the sleep

    def test_join_timeout_validation(self):
        with pytest.raises(ValueError):
            ThreadedGroup(2, join_timeout_s=0.0)
