"""Tests for allreduce schedules and the alpha-beta time model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.algorithms import (
    ALLREDUCE_ALGORITHMS,
    allreduce_time_model,
    halving_doubling_schedule,
    reduce_broadcast_schedule,
    ring_allreduce_schedule,
)
from repro.comm.communicator import ReduceOp, reduce_arrays

ALGOS = sorted(ALLREDUCE_ALGORITHMS)


def make_arrays(p, n, seed=0, dtype=np.float32):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(n).astype(dtype) for _ in range(p)]


class TestCorrectness:
    @pytest.mark.parametrize("algo", ALGOS)
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 7, 8, 9, 16])
    def test_sum_matches_reference(self, algo, p):
        arrays = make_arrays(p, 50, seed=p)
        result = ALLREDUCE_ALGORITHMS[algo](arrays, ReduceOp.SUM)
        want = reduce_arrays([a.astype(np.float64) for a in arrays], ReduceOp.SUM)
        assert len(result.results) == p
        for r in result.results:
            assert r.dtype == arrays[0].dtype
            np.testing.assert_allclose(r, want, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_mean(self, algo):
        arrays = make_arrays(4, 20, seed=1)
        result = ALLREDUCE_ALGORITHMS[algo](arrays, ReduceOp.MEAN)
        want = reduce_arrays([a.astype(np.float64) for a in arrays], ReduceOp.MEAN)
        for r in result.results:
            np.testing.assert_allclose(r, want, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_preserves_shape(self, algo):
        arrays = [np.ones((3, 4), dtype=np.float32)] * 4
        result = ALLREDUCE_ALGORITHMS[algo](arrays)
        assert result.results[0].shape == (3, 4)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_small_vector_more_ranks_than_elements(self, algo):
        arrays = make_arrays(8, 3, seed=2)
        result = ALLREDUCE_ALGORITHMS[algo](arrays)
        want = reduce_arrays([a.astype(np.float64) for a in arrays], ReduceOp.SUM)
        for r in result.results:
            np.testing.assert_allclose(r, want, rtol=1e-5, atol=1e-5)

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            ring_allreduce_schedule([np.ones(2), np.ones(3)])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ring_allreduce_schedule([])

    def test_unsupported_op(self):
        with pytest.raises(ValueError):
            ring_allreduce_schedule([np.ones(4)] * 2, ReduceOp.MAX)

    @given(
        p=st.integers(min_value=1, max_value=12),
        n=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_all_algorithms_agree(self, p, n, seed):
        arrays = make_arrays(p, n, seed=seed)
        want = reduce_arrays([a.astype(np.float64) for a in arrays], ReduceOp.SUM)
        for algo in ALGOS:
            result = ALLREDUCE_ALGORITHMS[algo](arrays)
            for r in result.results:
                np.testing.assert_allclose(r, want, rtol=1e-4, atol=1e-4)


class TestMessageAccounting:
    def test_ring_bytes_per_rank(self):
        """Each ring rank sends ~2 M (p-1)/p bytes."""
        p, n = 4, 1000
        arrays = make_arrays(p, n)
        result = ring_allreduce_schedule(arrays)
        m = n * 4  # float32
        expect = 2 * m * (p - 1) / p
        for r in range(p):
            assert result.bytes_sent_by(r) == pytest.approx(expect, rel=0.01)

    def test_ring_steps(self):
        result = ring_allreduce_schedule(make_arrays(5, 100))
        assert result.steps == 2 * (5 - 1)

    def test_halving_doubling_steps_power_of_two(self):
        result = halving_doubling_schedule(make_arrays(8, 128))
        assert result.steps == 2 * 3  # 2 log2(8)

    def test_halving_doubling_bytes(self):
        p, n = 8, 1024
        result = halving_doubling_schedule(make_arrays(p, n))
        m = n * 4
        expect = 2 * m * (p - 1) / p
        for r in range(p):
            assert result.bytes_sent_by(r) == pytest.approx(expect, rel=0.05)

    def test_reduce_broadcast_root_bottleneck(self):
        p, n = 8, 100
        result = reduce_broadcast_schedule(make_arrays(p, n))
        m = n * 4
        # root sends and receives (p-1) full messages each
        assert result.max_bytes_through_any_rank() == 2 * (p - 1) * m
        # non-root ranks touch only 2 messages
        assert result.bytes_sent_by(1) == m

    def test_single_rank_no_messages(self):
        for algo in ALGOS:
            result = ALLREDUCE_ALGORITHMS[algo](make_arrays(1, 10))
            assert result.messages == []
            assert result.steps == 0

    def test_total_bytes_positive(self):
        for algo in ALGOS:
            assert ALLREDUCE_ALGORITHMS[algo](make_arrays(3, 10)).total_bytes > 0


class TestTimeModel:
    COMMON = dict(message_bytes=28.15e6, latency_s=1e-6, bandwidth_Bps=10e9)

    def test_single_rank_free(self):
        assert allreduce_time_model("ring", 1, **self.COMMON) == 0.0

    def test_ring_vs_centralized_at_scale(self):
        ring = allreduce_time_model("ring", 1024, **self.COMMON)
        central = allreduce_time_model("reduce_broadcast", 1024, **self.COMMON)
        assert central > 100 * ring  # centralized collapses at scale

    def test_halving_doubling_beats_ring_latency(self):
        # tiny message: latency dominated, ring's 2(p-1) alpha loses
        hd = allreduce_time_model("halving_doubling", 1024, 1024, 1e-6, 10e9)
        ring = allreduce_time_model("ring", 1024, 1024, 1e-6, 10e9)
        assert hd < ring

    def test_bandwidth_term_saturates(self):
        """Ring time approaches 2M/B as p grows (paper's 2x message)."""
        t = allreduce_time_model("ring", 8192, 28.15e6, 0.0, 10e9)
        assert t == pytest.approx(2 * 28.15e6 / 10e9, rel=0.01)

    def test_helper_threads_speed_up(self):
        slow = allreduce_time_model("ring", 64, **self.COMMON, helper_thread_speedup=1.0)
        fast = allreduce_time_model("ring", 64, **self.COMMON, helper_thread_speedup=2.0)
        assert fast < slow

    def test_monotone_in_message_size(self):
        small = allreduce_time_model("ring", 16, 1e6, 1e-6, 10e9)
        big = allreduce_time_model("ring", 16, 1e8, 1e-6, 10e9)
        assert big > small

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            allreduce_time_model("hypercube", 4, **self.COMMON)

    def test_bad_ranks(self):
        with pytest.raises(ValueError):
            allreduce_time_model("ring", 0, **self.COMMON)
