"""Unit tests for the bounded-staleness partial collective
(:mod:`repro.comm.stale`): config validation, sync degeneracy, quorum
closes, the hard staleness bound, SAGN windowing, monitor decisions,
and deterministic replay."""

import numpy as np
import pytest

from repro.comm.communicator import ReduceOp, reduce_arrays
from repro.comm.stale import StaleGroup, StalenessConfig, StragglerMonitor
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

BASE = 0.01


def run_group(group, n_steps, grad=None):
    """Drive a group for ``n_steps``; returns per-step (loss, avg)."""
    out = []
    for step in range(n_steps):
        starters = group.begin_step(step)
        contribs = {
            r: (float(r + step), np.full(8, float(r), dtype=np.float64) if grad is None else grad(r, step))
            for r in starters
        }
        out.append(group.complete_step(step, contribs))
    return out


def slow_rank_group(config, delay_s=0.09, slow_steps=10, size=4, rank=1, **kw):
    plan = FaultPlan(seed=1).with_slow_rank(rank, delay_s, n_steps=slow_steps)
    return StaleGroup(size, config, injector=FaultInjector(plan), **kw)


class TestStalenessConfig:
    def test_defaults_valid(self):
        cfg = StalenessConfig()
        assert cfg.monitor_enabled

    @pytest.mark.parametrize(
        "kw",
        [
            {"staleness_bound": -1},
            {"quorum_fraction": 0.0},
            {"quorum_fraction": 1.5},
            {"window": 0},
            {"base_step_time_s": 0.0},
            {"ewma_alpha": 0.0},
            {"quarantine_factor": 1.0},
            {"quarantine_after": 0},
            {"rehab_factor": 0.5},
            {"rehab_after": 0},
            {"evict_after": 0},
        ],
    )
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ValueError):
            StalenessConfig(**kw)

    def test_quorum_resolution(self):
        cfg = StalenessConfig(quorum_fraction=0.5)
        assert cfg.resolve_quorum(4) == 2
        assert cfg.resolve_quorum(1) == 1
        assert StalenessConfig(quorum_fraction=1.0).resolve_quorum(5) == 5

    def test_monitor_disable(self):
        assert not StalenessConfig(quarantine_factor=None).monitor_enabled

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            StaleGroup(2, mode="async")


class TestSyncDegeneracy:
    """``staleness_bound=0`` must behave exactly like a synchronous
    rank-order mean reduction."""

    def test_matches_reduce_arrays(self):
        g = StaleGroup(4, StalenessConfig(staleness_bound=0))
        results = run_group(g, 3)
        expected = reduce_arrays(
            [np.full(8, float(r)) for r in range(4)], ReduceOp.MEAN
        )
        for step, (loss, avg) in enumerate(results):
            assert np.array_equal(avg, expected)
            assert loss == float(np.mean([r + step for r in range(4)]))

    def test_all_ranks_start_every_step(self):
        g = StaleGroup(3, StalenessConfig(staleness_bound=0))
        for step in range(3):
            assert g.begin_step(step) == [0, 1, 2]
            g.complete_step(step, {r: (0.0, np.ones(4)) for r in range(3)})
        assert g.contributions == [3, 3, 3]
        assert g.max_staleness == 0
        assert g.reductions == 3

    def test_virtual_clock_advances_by_base_step(self):
        g = StaleGroup(2, StalenessConfig(staleness_bound=0, base_step_time_s=0.5))
        run_group(g, 4)
        assert g.virtual_time_s == pytest.approx(2.0)


class TestStragglerFolding:
    def test_straggler_skips_steps_and_folds_late(self):
        cfg = StalenessConfig(staleness_bound=4, quorum_fraction=0.5,
                              quarantine_factor=None, base_step_time_s=BASE)
        g = slow_rank_group(cfg, delay_s=9 * BASE, slow_steps=10)
        run_group(g, 20)
        assert g.late_folds > 0
        assert 0 < g.max_staleness <= 4
        assert g.contributions[1] < g.contributions[0]
        # A quorum-closed run beats the sync run in virtual time: sync
        # pays the full straggler delay every step it is slow.
        sync_vt = 10 * (10 * BASE) + 10 * BASE
        assert g.virtual_time_s < sync_vt / 2

    def test_bound_never_exceeded(self):
        for bound in (1, 2, 4):
            cfg = StalenessConfig(staleness_bound=bound, quorum_fraction=0.5,
                                  quarantine_factor=None, base_step_time_s=BASE)
            g = slow_rank_group(cfg, delay_s=20 * BASE, slow_steps=30)
            run_group(g, 30)
            assert g.max_staleness <= bound
            assert g.bound_waits > 0

    def test_busy_rank_not_a_starter(self):
        cfg = StalenessConfig(staleness_bound=4, quorum_fraction=0.5,
                              quarantine_factor=None, base_step_time_s=BASE)
        g = slow_rank_group(cfg, delay_s=9 * BASE, slow_steps=4)
        g.complete_step(0, {r: (0.0, np.ones(4)) for r in g.begin_step(0)})
        # Rank 1's gradient is still in flight at step 1.
        assert g.begin_step(1) == [0, 2, 3]

    def test_stats_payload(self):
        g = StaleGroup(2, StalenessConfig(staleness_bound=0))
        run_group(g, 2)
        s = g.stats()
        assert s["mode"] == "ssgd"
        assert s["reductions"] == 2
        assert s["bytes_reduced"] > 0
        assert s["contributions"] == [2, 2]
        assert s["quarantined_ranks"] == []


class TestSAGNWindow:
    def test_window_one_matches_ssgd(self):
        cfg = StalenessConfig(staleness_bound=3, quorum_fraction=0.5,
                              quarantine_factor=None, window=1, base_step_time_s=BASE)
        a = slow_rank_group(cfg, delay_s=5 * BASE, slow_steps=8)
        b = slow_rank_group(cfg, delay_s=5 * BASE, slow_steps=8)
        b.mode = "sagn"
        ra = run_group(a, 16)
        rb = run_group(b, 16)
        for (la, ga), (lb, gb) in zip(ra, rb):
            assert la == lb
            assert np.array_equal(ga, gb)

    def test_window_defers_late_folds(self):
        cfg = StalenessConfig(staleness_bound=4, quorum_fraction=0.5,
                              quarantine_factor=None, window=3, base_step_time_s=BASE)
        g = slow_rank_group(cfg, delay_s=3 * BASE, slow_steps=12, size=4)
        g2 = StaleGroup(4, cfg, mode="sagn",
                        injector=FaultInjector(FaultPlan(seed=1).with_slow_rank(1, 3 * BASE, n_steps=12)))
        run_group(g, 12)
        run_group(g2, 12)
        # Same arrivals, but the windowed group folds them in batches —
        # never past the bound.
        assert g2.max_staleness <= 4
        assert g2.late_folds > 0
        assert g2.max_staleness >= g.max_staleness


class TestMonitor:
    def make(self, size=4, **cfg_kw):
        cfg = StalenessConfig(staleness_bound=4, quorum_fraction=0.5,
                              base_step_time_s=BASE, **cfg_kw)
        mon = StragglerMonitor(size, cfg)
        return cfg, mon

    def test_quarantine_and_rehab_cycle(self):
        cfg, mon = self.make()
        g = slow_rank_group(cfg, delay_s=9 * BASE, slow_steps=10, monitor=mon)
        run_group(g, 40)
        assert g.quarantines == 1
        assert g.rehabs == 1
        assert g.stats()["quarantined_ranks"] == [1]
        assert g.stats()["rehabilitated_ranks"] == [1]
        assert 1 in g.sync_ranks  # readmitted by the end
        assert mon.quarantine_log and mon.quarantine_log[0][0] == 1
        assert mon.rehab_log and mon.rehab_log[0][0] == 1
        assert mon.rehab_log[0][1] > mon.quarantine_log[0][1]

    def test_quarantined_rank_does_not_gate_quorum(self):
        cfg, mon = self.make()
        g = slow_rank_group(cfg, delay_s=9 * BASE, slow_steps=40, monitor=mon)
        run_group(g, 40)
        assert g.quarantines == 1
        assert g.rehabs == 0  # never recovers: stays quarantined
        assert g.dropped_stale > 0  # async arrivals past the bound discarded
        # After quarantine the fast ranks close steps at base pace.
        assert g.virtual_time_s < 40 * 2 * BASE

    def test_median_excludes_self_so_two_rank_groups_work(self):
        cfg, mon = self.make(size=2)
        g = slow_rank_group(cfg, delay_s=9 * BASE, slow_steps=12, size=2, monitor=mon)
        run_group(g, 12)
        assert g.quarantines == 1

    def test_eviction_after_quarantine(self):
        cfg = StalenessConfig(staleness_bound=4, quorum_fraction=0.5,
                              base_step_time_s=BASE, evict_after=5)
        mon = StragglerMonitor(4, cfg)
        g = slow_rank_group(cfg, delay_s=9 * BASE, slow_steps=60, monitor=mon)
        run_group(g, 40)
        assert g.evictions == 1
        assert g.stats()["evicted_ranks"] == [1]
        assert g.active_count == 3
        # Evicted ranks never start again.
        assert 1 not in g.begin_step(40)

    def test_no_quarantine_without_faults(self):
        cfg, mon = self.make()
        g = StaleGroup(4, cfg, monitor=mon)
        run_group(g, 20)
        assert g.quarantines == 0
        assert all(v == pytest.approx(BASE) for v in mon.ewma.values())

    def test_ewma_published_on_registry(self):
        cfg = StalenessConfig(staleness_bound=4, base_step_time_s=BASE)
        metrics = MetricsRegistry()
        mon = StragglerMonitor(2, cfg, metrics=metrics)
        g = StaleGroup(2, cfg, monitor=mon, metrics=metrics)
        run_group(g, 3)
        assert metrics.value("stale.rank0.latency_ewma_s") == pytest.approx(BASE)
        assert metrics.value("stale.contributions") == 6
        assert metrics.value("stale.staleness") is not None


class TestObservability:
    def test_metrics_and_instants(self):
        cfg = StalenessConfig(staleness_bound=4, quorum_fraction=0.5,
                              base_step_time_s=BASE)
        metrics = MetricsRegistry()
        tracer = Tracer()
        mon = StragglerMonitor(4, cfg, metrics=metrics, tracer=tracer)
        plan = FaultPlan(seed=1).with_slow_rank(1, 9 * BASE, n_steps=10)
        g = StaleGroup(4, cfg, injector=FaultInjector(plan), monitor=mon,
                       metrics=metrics, tracer=tracer)
        run_group(g, 40)
        assert metrics.value("stale.quarantines") == 1
        assert metrics.value("stale.rehabs") == 1
        assert metrics.value("stale.late_folds") == g.late_folds
        names = [name for _, name, _ in tracer.sequence()]
        assert "quarantine" in names
        assert "rehabilitate" in names
        assert "fold_in" in names


class TestReplay:
    def test_identical_schedules_replay_bitwise(self):
        def one_run():
            cfg = StalenessConfig(staleness_bound=3, quorum_fraction=0.5,
                                  base_step_time_s=BASE)
            mon = StragglerMonitor(4, cfg)
            g = slow_rank_group(cfg, delay_s=7 * BASE, slow_steps=15, monitor=mon)
            rng = np.random.default_rng(5)
            out = []
            for step in range(30):
                starters = g.begin_step(step)
                draws = {r: rng.standard_normal(16) for r in range(4)}
                contribs = {r: (float(step + r), draws[r]) for r in starters}
                out.append(g.complete_step(step, contribs))
            return out, g.stats()

        ra, sa = one_run()
        rb, sb = one_run()
        for (la, ga), (lb, gb) in zip(ra, rb):
            assert la == lb
            assert np.array_equal(ga, gb)
        assert sa == sb
