"""Tests for the grow-back (rank rejoin / warm spare) protocol.

These exercise the admission machinery directly — including the races
the protocol must survive: admission racing eviction in the same
generation, quorum loss while a resync is in flight, a spare joining
while peers already wait inside a pending collective, and stale threads
of a readmitted rank being fenced by incarnation numbers.
"""

import threading
import time

import numpy as np
import pytest

from repro.comm.communicator import ReduceOp
from repro.comm.elastic import ElasticComm, ElasticThreadedGroup, _ElasticState
from repro.comm.errors import (
    MessageCorruptError,
    QuorumLostError,
    RankEvictedError,
)
from repro.faults import FaultEvent, FaultKind


def make_state(size=4, quorum=1, spares=0, with_spawner=True, **kw):
    st = _ElasticState(size, timeout_s=5.0, quorum=quorum, spares=spares, **kw)
    spawned = []
    if with_spawner:
        st.spawn_joiner = lambda rank, inc: spawned.append((rank, inc))
    return st, spawned


def payload_for(rank):
    return {"flat": np.arange(8, dtype=np.float64) + rank, "step": np.int64(rank)}


class TestAdmissionProtocol:
    def test_recovered_rank_rejoins_and_participates(self):
        """End-to-end: a crashed rank is readmitted by a survivor and
        contributes from the very step it was admitted at."""
        g = ElasticThreadedGroup(3, timeout_s=5.0)

        def body(comm):
            out = []
            for step in range(6):
                if comm.rank == 2 and step == 1:
                    raise RuntimeError("rank 2 down")
                if comm.rank == 0 and step == 3:
                    assert comm.admit(2, payload_for(2))
                out.append(comm.allreduce(np.array([1.0]), ReduceOp.SUM)[0])
            return out

        def joiner(comm):
            payload = comm.await_admission()
            np.testing.assert_array_equal(payload["flat"], payload_for(2)["flat"])
            return [comm.allreduce(np.array([1.0]), ReduceOp.SUM)[0] for _ in range(3)]

        results = g.run(body, joiner_fn=joiner)
        # Steps: 0 full (3), 1-2 shrunk (2), 3-5 grown back (3).
        assert results[0] == [3.0, 2.0, 2.0, 3.0, 3.0, 3.0]
        assert results[1] == results[0]
        # The joiner's result replaces the dead rank's None entry.
        assert results[2] == [3.0, 3.0, 3.0]
        assert g.active_ranks == [0, 1, 2]
        stats = g.stats()
        assert stats["rejoins"] == [2]
        assert stats["resyncs"] == 1
        assert stats["resync_bytes"] > 0

    def test_spare_joins_while_peers_wait_in_pending_collective(self):
        """Admission lands inside an already-pending collective: the
        group must wait for the joiner's first contribution."""
        g = ElasticThreadedGroup(3, timeout_s=5.0, spares=1, auto_respawn=False)
        admitted = threading.Event()

        def body(comm):
            out = []
            for step in range(3):
                if comm.rank == 2 and step == 0:
                    raise RuntimeError("down")
                if step == 1 and comm.rank == 0:
                    # Let rank 1 enter the collective and block first,
                    # then admit the spare before contributing.
                    time.sleep(0.15)
                    assert comm.admit(2, payload_for(2), spare=True)
                    admitted.set()
                out.append(comm.allreduce(np.array([1.0]), ReduceOp.SUM)[0])
            return out

        def joiner(comm):
            comm.await_admission()
            return [comm.allreduce(np.array([1.0]), ReduceOp.SUM)[0] for _ in range(2)]

        results = g.run(body, joiner_fn=joiner)
        assert admitted.is_set()
        # Step 1's sum is 3.0: the collective rank 1 was already waiting
        # in did not finish until the freshly admitted spare contributed.
        assert results[0] == [2.0, 3.0, 3.0]
        assert results[1] == [2.0, 3.0, 3.0]
        assert results[2] == [3.0, 3.0]

    def test_admission_refused_without_joiner_body(self):
        st, _ = make_state(with_spawner=False)
        st.active.discard(2)
        with st.cond:
            assert not st.admit_locked(2, payload_for(2), spare=False)
        assert 2 not in st.active

    def test_admission_refused_for_active_or_bogus_ranks(self):
        st, spawned = make_state()
        with st.cond:
            assert not st.admit_locked(1, payload_for(1), spare=False)  # active
            assert not st.admit_locked(7, payload_for(7), spare=False)  # range
            assert not st.admit_locked(-1, payload_for(0), spare=False)
        st.active.discard(2)
        with st.cond:
            assert st.admit_locked(2, payload_for(2), spare=False)
            assert not st.admit_locked(2, payload_for(2), spare=False)  # joining
        assert spawned == [(2, 1)]

    def test_resync_payload_is_deep_copied(self):
        st, _ = make_state()
        st.active.discard(2)
        payload = payload_for(2)
        with st.cond:
            assert st.admit_locked(2, payload, spare=False)
        payload["flat"][:] = -1.0  # donor mutates its buffers afterwards
        got = ElasticComm(2, st, incarnation=1).await_admission()
        np.testing.assert_array_equal(got["flat"], payload_for(2)["flat"])

    def test_corrupted_resync_fails_crc(self):
        st, _ = make_state()
        st.active.discard(2)
        with st.cond:
            assert st.admit_locked(2, payload_for(2), spare=False)
        st.joining[2].payload["flat"][0] += 1.0  # bit-rot in flight
        with pytest.raises(MessageCorruptError):
            ElasticComm(2, st, incarnation=1).await_admission()


class TestRejoinRaces:
    def test_admission_racing_eviction_same_generation(self):
        """A joiner evicted before claiming its resync must get a clean
        RankEvictedError, not a stale payload."""
        st, _ = make_state()
        st.active.discard(2)
        with st.cond:
            assert st.admit_locked(2, payload_for(2), spare=False)
            st.evict_locked(2, waited_s=0.0)  # same generation
        assert 2 not in st.joining
        with pytest.raises(RankEvictedError):
            ElasticComm(2, st, incarnation=1).await_admission()
        # A later re-admission bumps the incarnation past the loser's.
        with st.cond:
            assert st.admit_locked(2, payload_for(2), spare=False)
        assert st.incarnation[2] == 2
        with pytest.raises(RankEvictedError):
            ElasticComm(2, st, incarnation=1).await_admission()
        ElasticComm(2, st, incarnation=2).await_admission()

    def test_quorum_loss_while_resync_in_flight(self):
        st, _ = make_state(size=4, quorum=3)
        st.active.discard(3)
        with st.cond:
            assert st.admit_locked(3, payload_for(3), spare=False)
        # Two survivors die before the joiner claims its payload.
        st.mark_failed(0, RuntimeError("x"))
        st.mark_failed(1, RuntimeError("y"))
        assert st.quorum_lost
        with pytest.raises(QuorumLostError):
            ElasticComm(3, st, incarnation=1).await_admission()

    def test_no_admission_after_quorum_loss(self):
        st, _ = make_state(size=4, quorum=3)
        st.mark_failed(0, RuntimeError("x"))
        st.mark_failed(1, RuntimeError("y"))
        with st.cond:
            assert not st.admit_locked(0, payload_for(0), spare=False)

    def test_stale_thread_of_readmitted_rank_is_fenced(self):
        """A hung thread that out-sleeps its own eviction AND its rank's
        readmission must not contribute to (or fail) the successor."""
        g = ElasticThreadedGroup(3, timeout_s=0.15)

        def body(comm):
            out = []
            for step in range(8):
                if comm.rank == 1 and step == 1:
                    time.sleep(1.0)  # evicted at ~0.15s; wakes post-rejoin
                if comm.rank == 0 and step == 3:
                    assert comm.admit(1, payload_for(1))
                out.append(comm.allreduce(np.array([1.0]), ReduceOp.SUM)[0])
            return out

        def joiner(comm):
            comm.await_admission()
            return [comm.allreduce(np.array([1.0]), ReduceOp.SUM)[0] for _ in range(5)]

        results = g.run(body, joiner_fn=joiner)
        # Steps 0 full, 1-2 shrunk, 3-7 grown back; the stale incarnation
        # of rank 1 never lands a contribution.
        assert results[0] == [3.0, 2.0, 2.0, 3.0, 3.0, 3.0, 3.0, 3.0]
        assert results[1] == [3.0, 3.0, 3.0, 3.0, 3.0]
        stats = g.stats()
        assert stats["evicted_ranks"] == [1]
        assert stats["failed_ranks"] == []  # the stale thread's exit is benign
        assert stats["rejoins"] == [1]
        assert stats["survivors"] == [0, 1, 2]

    def test_stale_failure_does_not_kill_successor(self):
        """mark_failed from an old incarnation is ignored."""
        st, _ = make_state()
        st.active.discard(2)
        with st.cond:
            assert st.admit_locked(2, payload_for(2), spare=False)
        st.mark_failed(2, RuntimeError("stale ghost"), incarnation=0)
        assert 2 in st.active
        assert 2 not in st.failures


class TestSparePolicy:
    def test_joins_due_recover_refunds_queued_spare(self):
        """RANK_RECOVER (the original node came back) cancels a queued
        auto-respawn for the same rank and returns its spare."""
        st, _ = make_state(spares=1)
        comm = ElasticComm(0, st)
        st.mark_failed(2, RuntimeError("down"))  # reserves the spare
        assert st.respawn_queue == [2]
        assert st.spares_left == 0
        due = comm.joins_due([FaultEvent(FaultKind.RANK_RECOVER, rank=2, step=0)])
        assert due == [(2, False)]
        assert st.respawn_queue == []
        assert st.spares_left == 1

    def test_joins_due_spare_join_picks_lowest_dead_rank(self):
        st, _ = make_state(spares=2, with_spawner=True)
        st.auto_respawn = False
        comm = ElasticComm(0, st)
        st.mark_failed(3, RuntimeError("a"))
        st.mark_failed(1, RuntimeError("b"))
        due = comm.joins_due([FaultEvent(FaultKind.SPARE_JOIN, rank=None, step=0)])
        assert due == [(1, True)]
        assert st.spares_left == 1

    def test_spare_budget_is_respected(self):
        st, _ = make_state(spares=1)
        st.auto_respawn = False
        comm = ElasticComm(0, st)
        st.mark_failed(1, RuntimeError("a"))
        st.mark_failed(2, RuntimeError("b"))
        due = comm.joins_due(
            [
                FaultEvent(FaultKind.SPARE_JOIN, rank=1, step=0),
                FaultEvent(FaultKind.SPARE_JOIN, rank=2, step=0),
            ]
        )
        assert due == [(1, True)]  # one spare, one join
        assert st.spares_left == 0

    def test_auto_respawn_reserves_at_failure_time(self):
        st, _ = make_state(spares=2)
        comm = ElasticComm(0, st)
        st.mark_failed(1, RuntimeError("a"))
        st.mark_failed(3, RuntimeError("b"))
        assert st.respawn_queue == [1, 3]
        assert comm.has_pending_respawns
        assert comm.joins_due() == [(1, True), (3, True)]
        assert not comm.has_pending_respawns

    def test_warm_spares_auto_replace_evicted_ranks_end_to_end(self):
        g = ElasticThreadedGroup(4, timeout_s=5.0, spares=1)

        def body(comm):
            out = []
            for step in range(4):
                if comm.rank == 3 and step == 1:
                    raise RuntimeError("down")
                if comm.rank == 0 and step >= 2:
                    for r, spare in comm.joins_due():
                        assert comm.admit(r, payload_for(r), spare=spare)
                out.append(comm.allreduce(np.array([1.0]), ReduceOp.SUM)[0])
            return out

        def joiner(comm):
            comm.await_admission()
            return [comm.allreduce(np.array([1.0]), ReduceOp.SUM)[0] for _ in range(2)]

        results = g.run(body, joiner_fn=joiner)
        assert results[0] == [4.0, 3.0, 4.0, 4.0]
        assert results[3] == [4.0, 4.0]
        stats = g.stats()
        assert stats["spares_used"] == 1
        assert stats["rejoins"] == [3]
