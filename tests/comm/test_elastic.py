"""Tests for the elastic (shrink-and-continue) threaded backend."""

import time

import numpy as np
import pytest

from repro.comm.communicator import ReduceOp, reduce_arrays
from repro.comm.elastic import ElasticThreadedGroup
from repro.comm.errors import QuorumLostError, RankFailedError
from repro.comm.serial import SteppedGroup
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan


class TestFaultFree:
    """With no faults the elastic group is just another backend."""

    def test_allreduce_matches_stepped_bitwise(self):
        rng = np.random.default_rng(7)
        arrays = [rng.standard_normal(33).astype(np.float32) for _ in range(5)]
        elastic = ElasticThreadedGroup(5).run(
            lambda comm: comm.allreduce(arrays[comm.rank], ReduceOp.MEAN)
        )
        stepped = SteppedGroup(5).allreduce(arrays, ReduceOp.MEAN)
        for a, b in zip(elastic, stepped):
            np.testing.assert_array_equal(a, b)

    def test_full_collective_suite(self):
        g = ElasticThreadedGroup(3)

        def body(comm):
            s = comm.allreduce(np.array([float(comm.rank)]), ReduceOp.SUM)
            b = comm.bcast(np.array([9.0]) if comm.rank == 1 else None, root=1)
            comm.barrier()
            gathered = comm.gather(np.array([float(comm.rank)]), root=0)
            ag = comm.allgather(np.array([float(comm.rank * 2)]))
            return s[0], b[0], gathered, np.concatenate(ag)

        results = g.run(body)
        for rank, (s, b, gathered, ag) in enumerate(results):
            assert s == 3.0
            assert b == 9.0
            np.testing.assert_allclose(ag, [0.0, 2.0, 4.0])
            if rank == 0:
                np.testing.assert_allclose(np.concatenate(gathered), [0.0, 1.0, 2.0])
            else:
                assert gathered is None

    def test_many_sequential_collectives(self):
        g = ElasticThreadedGroup(4)

        def body(comm):
            total = 0.0
            for i in range(50):
                total += comm.allreduce(np.array([float(comm.rank + i)]))[0]
            return total

        want = sum(sum(r + i for r in range(4)) for i in range(50))
        for got in g.run(body):
            assert got == pytest.approx(want)
        assert g.reductions == 50
        assert g.active_ranks == [0, 1, 2, 3]
        assert g.failures == {}

    def test_size_one(self):
        g = ElasticThreadedGroup(1)
        out = g.run(lambda comm: comm.allreduce(np.array([3.0]), ReduceOp.MEAN))
        np.testing.assert_allclose(out[0], [3.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            ElasticThreadedGroup(0)
        with pytest.raises(ValueError):
            ElasticThreadedGroup(2, timeout_s=0.0)
        with pytest.raises(ValueError):
            ElasticThreadedGroup(2, quorum=3)
        with pytest.raises(ValueError):
            ElasticThreadedGroup(2, join_timeout_s=0.0)

    def test_healthy_run_longer_than_timeout_succeeds(self):
        """No join bound by default: timeout_s is the per-collective
        heartbeat, and a healthy run may take arbitrarily long."""
        g = ElasticThreadedGroup(2, timeout_s=0.2)
        assert g.join_timeout_s is None

        def body(comm):
            total = 0.0
            for _ in range(8):  # ~0.4 s total, each gap well under 0.2 s
                time.sleep(0.05)
                total += comm.allreduce(np.array([1.0]))[0]
            return total

        assert g.run(body) == [16.0, 16.0]
        assert g.active_ranks == [0, 1]


class TestShrinkAndContinue:
    def test_crash_mid_collective_shrinks_group(self):
        g = ElasticThreadedGroup(3, timeout_s=5.0)
        values = [1.0, 2.0, 3.0]

        def body(comm):
            out = []
            for step in range(3):
                if comm.rank == 2 and step == 1:
                    raise RuntimeError("rank 2 exploded")
                out.append(
                    comm.allreduce(np.array([values[comm.rank]]), ReduceOp.MEAN)[0]
                )
            return out

        results = g.run(body)
        # Step 0: all three ranks; steps 1-2: survivors {0, 1} only,
        # with MEAN renormalized by the survivor count.
        want = [(1.0 + 2.0 + 3.0) / 3, (1.0 + 2.0) / 2, (1.0 + 2.0) / 2]
        assert results[0] == pytest.approx(want)
        assert results[1] == pytest.approx(want)
        assert results[2] is None
        assert g.active_ranks == [0, 1]
        assert list(g.failures) == [2]
        assert "exploded" in str(g.failures[2])

    def test_post_crash_result_matches_survivor_reference(self):
        """After a shrink the reduction is bitwise the survivors' reduction."""
        rng = np.random.default_rng(3)
        arrays = [rng.standard_normal(17).astype(np.float32) for _ in range(4)]
        g = ElasticThreadedGroup(4, timeout_s=5.0)

        def body(comm):
            if comm.rank == 1:
                raise RuntimeError("down")
            return comm.allreduce(arrays[comm.rank], ReduceOp.MEAN)

        results = g.run(body)
        want = reduce_arrays([arrays[0], arrays[2], arrays[3]], ReduceOp.MEAN)
        for r in (0, 2, 3):
            np.testing.assert_array_equal(results[r], want)

    def test_straggler_is_evicted_on_timeout(self):
        g = ElasticThreadedGroup(3, timeout_s=0.2)

        def body(comm):
            out = []
            for step in range(2):
                if comm.rank == 1 and step == 1:
                    time.sleep(1.0)  # out-sleeps the heartbeat timeout
                out.append(
                    comm.allreduce(np.array([1.0]), ReduceOp.SUM)[0]
                )
            return out

        t0 = time.monotonic()
        results = g.run(body)
        elapsed = time.monotonic() - t0
        assert results[0] == [3.0, 2.0]  # step 1 completes over survivors
        assert results[2] == [3.0, 2.0]
        assert g.active_ranks == [0, 2]
        assert [r for _, r in g.evictions] == [1]
        # Survivors waited ~timeout_s, not the straggler's full sleep.
        assert elapsed < 5.0

    def test_bcast_root_death_raises_typed_error_on_survivors(self):
        g = ElasticThreadedGroup(3, timeout_s=5.0)

        def body(comm):
            if comm.rank == 0:
                raise RuntimeError("root died")
            try:
                comm.bcast(None, root=0)
            except RankFailedError as exc:
                return ("bcast-failed", exc.failed_ranks)
            return "unexpected-success"

        results = g.run(body)
        assert results[1] == ("bcast-failed", (0,))
        assert results[2] == ("bcast-failed", (0,))

    def test_stats_report(self):
        g = ElasticThreadedGroup(2, timeout_s=5.0)

        def body(comm):
            if comm.rank == 1:
                raise RuntimeError("x")
            return comm.allreduce(np.ones(2))

        g.run(body)
        stats = g.stats()
        assert stats["failed_ranks"] == [1]
        assert stats["survivors"] == [0]
        assert stats["reductions"] == 1


class TestCorruptionRecovery:
    def test_corrupt_contribution_is_retransmitted(self):
        inj = FaultInjector(
            FaultPlan(
                events=[FaultEvent(FaultKind.MESSAGE_CORRUPT, rank=1, step=0)]
            )
        )
        rng = np.random.default_rng(5)
        arrays = [rng.standard_normal(64).astype(np.float32) for _ in range(3)]
        g = ElasticThreadedGroup(3, injector=inj)
        results = g.run(
            lambda comm: comm.allreduce(arrays[comm.rank], ReduceOp.MEAN)
        )
        want = reduce_arrays(arrays, ReduceOp.MEAN)
        for r in results:
            np.testing.assert_array_equal(r, want)  # corruption fully recovered
        assert g.retransmits == 1
        assert inj.fired[FaultKind.MESSAGE_CORRUPT] == 1

    def test_no_checksums_without_corruption_events(self):
        inj = FaultInjector(FaultPlan())
        g = ElasticThreadedGroup(2, injector=inj)
        g.run(lambda comm: comm.allreduce(np.ones(4)))
        assert g.retransmits == 0


class TestQuorum:
    def test_quorum_loss_raises(self):
        g = ElasticThreadedGroup(4, timeout_s=5.0, quorum=3)

        def body(comm):
            for step in range(4):
                if comm.rank >= 2 and step == 1:
                    raise RuntimeError(f"rank {comm.rank} down")
                comm.allreduce(np.array([1.0]))
            return "done"

        with pytest.raises(QuorumLostError) as ei:
            g.run(body)
        assert ei.value.survivors == (0, 1)

    def test_all_ranks_failing_raises_with_cause(self):
        g = ElasticThreadedGroup(2, timeout_s=5.0)

        def body(comm):
            raise ValueError(f"rank {comm.rank} bad")

        with pytest.raises(QuorumLostError) as ei:
            g.run(body)
        assert isinstance(ei.value.__cause__, ValueError)
