"""Additional edge-case coverage for the allreduce schedules."""

import numpy as np
import pytest

from repro.comm.algorithms import (
    ALLREDUCE_ALGORITHMS,
    halving_doubling_schedule,
    reduce_broadcast_schedule,
    ring_allreduce_schedule,
)
from repro.comm.communicator import ReduceOp, reduce_arrays

ALGOS = sorted(ALLREDUCE_ALGORITHMS)


class TestDtypesAndShapes:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_float64_inputs_preserved(self, algo):
        rng = np.random.default_rng(0)
        arrays = [rng.standard_normal(17) for _ in range(4)]  # float64
        result = ALLREDUCE_ALGORITHMS[algo](arrays)
        assert result.results[0].dtype == np.float64
        want = reduce_arrays(arrays, ReduceOp.SUM)
        np.testing.assert_allclose(result.results[0], want, rtol=1e-12)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_3d_arrays(self, algo):
        rng = np.random.default_rng(1)
        arrays = [rng.standard_normal((2, 3, 4)).astype(np.float32) for _ in range(3)]
        result = ALLREDUCE_ALGORITHMS[algo](arrays)
        assert result.results[0].shape == (2, 3, 4)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_single_element_vector(self, algo):
        arrays = [np.array([float(i)]) for i in range(6)]
        result = ALLREDUCE_ALGORITHMS[algo](arrays, ReduceOp.MEAN)
        for r in result.results:
            np.testing.assert_allclose(r, [2.5])

    def test_two_ranks_ring(self):
        """Degenerate ring (p=2): one reduce-scatter + one allgather step."""
        result = ring_allreduce_schedule([np.ones(10), np.full(10, 2.0)])
        np.testing.assert_allclose(result.results[0], 3.0)
        assert result.steps == 2

    def test_halving_doubling_p3_fold(self):
        """Non-power-of-two: rank 2 folds into rank 0 and gets the
        result back — messages to/from the extra rank must appear."""
        result = halving_doubling_schedule([np.ones(8)] * 3)
        srcs = {m.src for m in result.messages}
        dsts = {m.dst for m in result.messages}
        assert 2 in srcs and 2 in dsts

    def test_reduce_broadcast_nonzero_root(self):
        arrays = [np.full(4, float(i)) for i in range(4)]
        result = reduce_broadcast_schedule(arrays, root=2)
        hot = max(
            range(4),
            key=lambda r: sum(m.nbytes for m in result.messages if r in (m.src, m.dst)),
        )
        assert hot == 2
        np.testing.assert_allclose(result.results[1], 6.0)


class TestMessageLogs:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_no_self_messages(self, algo):
        rng = np.random.default_rng(2)
        arrays = [rng.standard_normal(32).astype(np.float32) for _ in range(6)]
        result = ALLREDUCE_ALGORITHMS[algo](arrays)
        assert all(m.src != m.dst for m in result.messages)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_steps_monotone_fields(self, algo):
        rng = np.random.default_rng(3)
        arrays = [rng.standard_normal(32).astype(np.float32) for _ in range(5)]
        result = ALLREDUCE_ALGORITHMS[algo](arrays)
        steps = [m.step for m in result.messages]
        assert steps == sorted(steps)
        assert all(m.nbytes > 0 for m in result.messages)
