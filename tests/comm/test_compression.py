"""Compressed allreduce: compressor units, error-feedback identities,
and golden bitwise replay across execution backends."""

import numpy as np
import pytest

from repro.comm.compression import (
    COMPRESSION_MODES,
    Fp16Compressor,
    TopKCompressor,
    compression_ratio,
    make_compressor,
)
from repro.comm.plugin import PluginConfig
from repro.core.distributed import DistributedConfig, DistributedTrainer
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData


def make_dataset(n=12, seed=3, size=16):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, size, size, size)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


class TestFp16Compressor:
    def test_values_round_through_fp16(self):
        c = Fp16Compressor()
        g = np.random.default_rng(0).standard_normal(1000).astype(np.float32)
        out = c.compress(g)
        assert np.array_equal(out, g.astype(np.float16).astype(np.float32))

    def test_wire_bytes_halved(self):
        c = Fp16Compressor()
        c.compress(np.zeros(1000, np.float32))
        assert c.stats.bytes_in == 4000
        assert c.stats.bytes_wire == 2000
        assert c.stats.ratio == 0.5

    def test_deterministic(self):
        g = np.random.default_rng(1).standard_normal(257).astype(np.float32)
        assert np.array_equal(Fp16Compressor().compress(g), Fp16Compressor().compress(g))


class TestTopKCompressor:
    def test_keeps_largest_magnitudes(self):
        c = TopKCompressor(fraction=0.25, error_feedback=False)
        g = np.asarray([0.1, -5.0, 0.2, 3.0, -0.3, 0.05, 1.0, -0.01], np.float32)
        out = c.compress(g)
        # k = 2 of 8: keeps -5.0 and 3.0, zeroes the rest.
        expect = np.zeros(8, np.float32)
        expect[1], expect[3] = -5.0, 3.0
        assert np.array_equal(out, expect)

    def test_tie_break_is_by_index(self):
        c = TopKCompressor(fraction=0.5, error_feedback=False)
        g = np.asarray([1.0, -1.0, 1.0, -1.0], np.float32)
        out = c.compress(g)
        assert np.array_equal(out, np.asarray([1.0, -1.0, 0.0, 0.0], np.float32))

    def test_error_feedback_residual_identity(self):
        # Invariant: sent + residual == input + previous residual.
        c = TopKCompressor(fraction=0.1)
        rng = np.random.default_rng(2)
        prev_residual = np.zeros(100, np.float32)
        for _ in range(5):
            g = rng.standard_normal(100).astype(np.float32)
            sent = c.compress(g)
            assert np.allclose(sent + c.residual, g + prev_residual, atol=0)
            prev_residual = c.residual.copy()

    def test_residual_recovers_dropped_mass(self):
        # A small element dropped every step eventually accumulates
        # enough residual to be sent.
        c = TopKCompressor(fraction=0.25)
        g = np.asarray([10.0, 0.0, 0.0, 1.0], np.float32)
        first = c.compress(g)  # k=1: sends the 10
        assert first[3] == 0.0 and c.residual[3] == 1.0
        # Feed zeros: residual alone should eventually win the top-1 slot.
        for _ in range(12):
            out = c.compress(np.asarray([0.0, 0.0, 0.0, 1.0], np.float32))
        assert out[3] > 0.0

    def test_no_error_feedback_drops_mass(self):
        c = TopKCompressor(fraction=0.25, error_feedback=False)
        c.compress(np.asarray([10.0, 0.0, 0.0, 1.0], np.float32))
        assert c.residual is None

    def test_wire_bytes(self):
        c = TopKCompressor(fraction=0.1)
        c.compress(np.random.default_rng(0).standard_normal(1000).astype(np.float32))
        assert c.stats.bytes_in == 4000
        assert c.stats.bytes_wire == 100 * 8  # k=100 at 8 bytes each
        assert c.stats.bytes_in / c.stats.bytes_wire == 5.0  # the 5x claim

    def test_k_at_least_one(self):
        c = TopKCompressor(fraction=0.01)
        out = c.compress(np.asarray([3.0, 1.0], np.float32))
        assert np.count_nonzero(out) == 1

    def test_nonfinite_passthrough_protects_residual(self):
        # A mixed-precision overflow step must not poison the residual.
        c = TopKCompressor(fraction=0.5)
        c.compress(np.asarray([1.0, 2.0, 3.0, 4.0], np.float32))
        residual_before = c.residual.copy()
        bad = np.asarray([np.inf, 0.0, 0.0, 0.0], np.float32)
        out = c.compress(bad)
        assert np.array_equal(out, bad)  # signal passes through
        assert np.array_equal(c.residual, residual_before)
        assert np.all(np.isfinite(c.residual))

    def test_reset_drops_residual(self):
        c = TopKCompressor(fraction=0.5)
        c.compress(np.ones(4, np.float32))
        c.reset()
        assert c.residual is None

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            TopKCompressor(fraction=0.0)
        with pytest.raises(ValueError):
            TopKCompressor(fraction=1.5)


class TestFactoryAndRatio:
    def test_none_returns_none(self):
        assert make_compressor("none") is None

    def test_modes(self):
        assert isinstance(make_compressor("fp16"), Fp16Compressor)
        c = make_compressor("topk", 0.2, error_feedback=False)
        assert isinstance(c, TopKCompressor)
        assert c.fraction == 0.2 and not c.error_feedback

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            make_compressor("zstd")

    def test_analytical_ratios(self):
        assert compression_ratio("none") == 1.0
        assert compression_ratio("fp16") == 0.5
        assert compression_ratio("topk", 0.1) == pytest.approx(0.2)
        assert compression_ratio("topk", 0.9) == 1.0  # clamped

    def test_plugin_config_validation(self):
        with pytest.raises(ValueError):
            PluginConfig(compression="zstd")
        with pytest.raises(ValueError):
            PluginConfig(compression="topk", topk_fraction=0.0)
        assert PluginConfig().build_compressor() is None
        assert PluginConfig(compression="fp16").build_compressor() is not None

    def test_distributed_config_folds_compression_into_plugin(self):
        cfg = DistributedConfig(n_ranks=2, compression="topk", topk_fraction=0.05)
        assert cfg.plugin.compression == "topk"
        assert cfg.plugin.topk_fraction == 0.05
        with pytest.raises(ValueError):
            DistributedConfig(n_ranks=2, compression="zstd")


def _run(mode, compression, precision="fp32", n=2, epochs=2, seed=0):
    cfg = DistributedConfig(
        n_ranks=n, epochs=epochs, mode=mode, seed=seed, compression=compression
    )
    oc = OptimizerConfig(decay_steps=100, precision=precision)
    tr = DistributedTrainer(
        tiny_16(), make_dataset(), config=cfg, optimizer_config=oc
    )
    tr.run()
    return tr.final_model.get_flat_parameters(), tr.group_stats, tr.history


class TestGoldenCrossBackend:
    """Golden bitwise fixtures: compressed runs replay identically
    across the serial (stepped) and threaded backends, and mode "none"
    stays bitwise equal to the pre-compression fp32 path."""

    @pytest.mark.parametrize("compression", ["fp16", "topk"])
    def test_stepped_equals_threaded(self, compression):
        p_stepped, _, _ = _run("stepped", compression)
        p_threaded, _, _ = _run("threaded", compression)
        assert np.array_equal(p_stepped, p_threaded)

    @pytest.mark.parametrize("compression", ["fp16", "topk"])
    def test_replay_is_deterministic(self, compression):
        p1, s1, h1 = _run("stepped", compression)
        p2, s2, h2 = _run("stepped", compression)
        assert np.array_equal(p1, p2)
        assert h1.train_loss == h2.train_loss
        assert s1["compression_bytes_wire"] == s2["compression_bytes_wire"]

    def test_none_bitwise_equals_uncompressed_path(self):
        # compression="none" must not merely approximate the original
        # fp32 path — it must not touch it.  Run through a config with
        # the field defaulted vs explicitly "none".
        p_default, s_default, _ = _run("stepped", "none")
        cfg = DistributedConfig(n_ranks=2, epochs=2, mode="stepped", seed=0)
        tr = DistributedTrainer(
            tiny_16(),
            make_dataset(),
            config=cfg,
            optimizer_config=OptimizerConfig(decay_steps=100),
        )
        tr.run()
        assert np.array_equal(
            p_default, tr.final_model.get_flat_parameters()
        )
        assert "compression" not in s_default  # no counters for "none"

    def test_compressed_under_fp16_precision_cross_backend(self):
        p1, _, _ = _run("stepped", "topk", precision="fp16")
        p2, _, _ = _run("threaded", "topk", precision="fp16")
        assert np.array_equal(p1, p2)

    def test_stats_surface_byte_savings(self):
        _, stats, _ = _run("stepped", "topk")
        assert stats["compression"] == "topk"
        assert stats["compression_bytes_in"] > stats["compression_bytes_wire"]
        assert (
            stats["compression_bytes_saved"]
            == stats["compression_bytes_in"] - stats["compression_bytes_wire"]
        )
        assert stats["compression_bytes_in"] / stats["compression_bytes_wire"] >= 4.9

    def test_compression_changes_trajectory(self):
        # Sanity that the compressors are actually in the loop: a lossy
        # mode must not be bitwise identical to the exact path.
        p_none, _, _ = _run("stepped", "none")
        p_topk, _, _ = _run("stepped", "topk")
        assert not np.array_equal(p_none, p_topk)


class TestElasticAndProcessBackends:
    @pytest.mark.parametrize("compression", ["fp16", "topk"])
    def test_elastic_faultfree_matches_threaded(self, compression):
        cfg = DistributedConfig(
            n_ranks=2, epochs=2, mode="elastic", seed=0, compression=compression
        )
        oc = OptimizerConfig(decay_steps=100)
        tr = DistributedTrainer(
            tiny_16(), make_dataset(), config=cfg, optimizer_config=oc
        )
        tr.run()
        p_threaded, _, _ = _run("threaded", compression)
        assert np.array_equal(
            tr.final_model.get_flat_parameters(), p_threaded
        )

    def test_process_backend_matches_stepped_topk(self):
        cfg = DistributedConfig(
            n_ranks=2, epochs=1, mode="process", seed=0, compression="topk"
        )
        oc = OptimizerConfig(decay_steps=100)
        tr = DistributedTrainer(
            tiny_16(), make_dataset(), config=cfg, optimizer_config=oc
        )
        tr.run()
        p_stepped, _, _ = _run("stepped", "topk", epochs=1)
        assert np.array_equal(tr.final_model.get_flat_parameters(), p_stepped)
