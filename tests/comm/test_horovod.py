"""Tests for the Horovod-style aggregation backend."""

import numpy as np
import pytest

from repro.comm.horovod import HorovodLike
from repro.comm.plugin import MLPlugin
from repro.comm.serial import SerialCommunicator
from repro.comm.threaded import ThreadedGroup


class TestHorovodLike:
    def test_requires_init(self):
        hvd = HorovodLike(SerialCommunicator())
        with pytest.raises(RuntimeError):
            hvd.gradients([np.ones(3)])
        with pytest.raises(RuntimeError):
            hvd.average_scalar(1.0)

    def test_single_rank_identity(self):
        hvd = HorovodLike(SerialCommunicator()).init()
        grads = [np.arange(4, dtype=np.float32).reshape(2, 2)]
        out = hvd.gradients(grads)
        np.testing.assert_allclose(out[0], grads[0])
        assert hvd.stats.calls == 1
        assert hvd.stats.bytes_reduced == 16

    def test_multirank_average(self):
        group = ThreadedGroup(4)

        def body(comm):
            hvd = HorovodLike(comm).init()
            return hvd.gradients([np.full(5, float(comm.rank), dtype=np.float32)])[0]

        for out in group.run(body):
            np.testing.assert_allclose(out, 1.5)

    def test_broadcast_parameters(self):
        group = ThreadedGroup(3)

        def body(comm):
            params = [np.full(3, float(comm.rank), dtype=np.float32)]
            HorovodLike(comm).init().broadcast_parameters(params)
            return params[0]

        for p in group.run(body):
            np.testing.assert_allclose(p, 0.0)

    def test_matches_plugin_numerics(self):
        """Horovod-style fused allreduce and the chunked plugin produce
        identical averages — the backends are interchangeable."""
        rng = np.random.default_rng(0)
        payloads = [
            [rng.standard_normal((3, 2)).astype(np.float32), rng.standard_normal(7).astype(np.float32)]
            for _ in range(3)
        ]

        def run(backend_cls):
            group = ThreadedGroup(3)

            def body(comm):
                backend = backend_cls(comm).init()
                return backend.gradients([g.copy() for g in payloads[comm.rank]])

            return group.run(body)[0]

        hvd_out = run(HorovodLike)
        plugin_out = run(MLPlugin)
        for a, b in zip(hvd_out, plugin_out):
            np.testing.assert_allclose(a, b, rtol=1e-6, atol=1e-7)

    def test_average_scalar(self):
        group = ThreadedGroup(2)
        outs = group.run(lambda comm: HorovodLike(comm).init().average_scalar(float(comm.rank)))
        assert outs == [0.5, 0.5]

    def test_trainer_accepts_horovod_backend(self):
        """The Trainer's plugin slot is backend-agnostic."""
        from repro.core.model import CosmoFlowModel
        from repro.core.topology import ConvSpec, CosmoFlowConfig
        from repro.core.trainer import InMemoryData, Trainer, TrainerConfig

        cfg = CosmoFlowConfig(
            name="micro4h", input_size=4, conv_layers=(ConvSpec(16, 2),),
            fc_sizes=(8,), n_outputs=3,
        )
        rng = np.random.default_rng(1)
        data = InMemoryData(
            rng.standard_normal((4, 1, 4, 4, 4)).astype(np.float32),
            rng.uniform(0.2, 0.8, (4, 3)).astype(np.float32),
        )
        model = CosmoFlowModel(cfg, seed=0)
        trainer = Trainer(
            model, data,
            config=TrainerConfig(epochs=1, validate=False),
            plugin=HorovodLike(SerialCommunicator()),
        )
        hist = trainer.run()
        assert np.isfinite(hist.train_loss[0])
