"""The real-process communicator: layout, registry, collectives, supervision.

These tests exercise :mod:`repro.comm.process` below the engine — the
shared-memory slot codec, the crash-proof segment registry, real
cross-process collectives, and the supervisor's classification of a
SIGKILLed worker — so failures localize to the comm layer rather than
surfacing as a determinism-gate mismatch two layers up.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.comm import ReduceOp
from repro.comm.errors import ProcessCrashError
from repro.comm.process import (
    ProcessComm,
    RankSupervisor,
    ShmLayout,
    attach_segment,
    create_segment,
    destroy_segment,
    register_segment,
    sweep_stale_segments,
    unregister_segment,
)

_MP = multiprocessing.get_context("spawn")

PAYLOAD = 1024


# ---------------------------------------------------------------------------
# Slot codec
# ---------------------------------------------------------------------------


class TestShmLayout:
    def _buffers(self, world=2):
        layout = ShmLayout(world, payload_bytes=PAYLOAD)
        return layout, bytearray(layout.data_bytes)

    @pytest.mark.parametrize(
        "array",
        [
            np.arange(12, dtype=np.float64).reshape(3, 4),
            np.arange(6, dtype=np.float32) - 2.5,
            np.array([[1, -2], [3, 4]], dtype=np.int64),
            np.array([7], dtype=np.int32),
            np.frombuffer(b"payload!", dtype=np.uint8).copy(),
            np.array([True, False, True]),
        ],
        ids=["f8", "f4", "i8", "i4", "u1", "bool"],
    )
    def test_roundtrip_preserves_dtype_shape_values(self, array):
        layout, buf = self._buffers()
        layout.write_slot(buf, 1, array)
        out = layout.read_slot(buf, 1)
        assert out.dtype == array.dtype
        assert out.shape == array.shape
        assert np.array_equal(out, array)

    def test_none_roundtrip(self):
        layout, buf = self._buffers()
        layout.write_slot(buf, 0, np.ones(3))
        layout.write_slot(buf, 0, None)
        assert layout.read_slot(buf, 0) is None

    def test_read_returns_owned_copy(self):
        layout, buf = self._buffers()
        layout.write_slot(buf, 0, np.array([1.0, 2.0]))
        first = layout.read_slot(buf, 0)
        layout.write_slot(buf, 0, np.array([9.0, 9.0]))
        assert np.array_equal(first, [1.0, 2.0])

    def test_rejects_oversized_payload(self):
        layout, buf = self._buffers()
        with pytest.raises(ValueError):
            layout.write_slot(buf, 0, np.zeros(PAYLOAD, dtype=np.float64))

    def test_slots_are_independent(self):
        layout, buf = self._buffers(world=3)
        for r in range(3):
            layout.write_slot(buf, r, np.full(2, float(r)))
        for r in range(3):
            assert np.array_equal(layout.read_slot(buf, r), [r, r])


# ---------------------------------------------------------------------------
# Segment registry
# ---------------------------------------------------------------------------


def _noop():
    pass


class TestSegmentRegistry:
    def test_register_unregister_lifecycle(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path))
        path = register_segment("test-seg-a")
        assert json.loads(path.read_text()) == {"name": "test-seg-a", "pid": os.getpid()}
        unregister_segment("test-seg-a")
        assert not path.exists()
        unregister_segment("test-seg-a")  # idempotent

    def test_sweep_reclaims_dead_owner_segment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path))
        seg = shared_memory.SharedMemory(create=True, size=64)
        name = seg.name
        # A registry record owned by a pid that is certainly dead: a
        # child we spawned and already reaped.
        child = _MP.Process(target=_noop)
        child.start()
        child.join()
        (tmp_path / f"{name}.json").write_text(
            json.dumps({"name": name, "pid": child.pid})
        )
        seg.close()
        assert sweep_stale_segments() == [name]
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        assert not list(tmp_path.glob("*.json"))

    def test_sweep_spares_live_owner(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path))
        seg = create_segment(64)
        try:
            assert sweep_stale_segments() == []
            # Still attachable: the registry record names a live pid.
            other = attach_segment(seg.name)
            other.close()
        finally:
            destroy_segment(seg)
        assert not list(tmp_path.glob("*.json"))

    def test_sweep_ignores_unparseable_records(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path))
        (tmp_path / "junk.json").write_text("not json at all")
        assert sweep_stale_segments() == []
        assert (tmp_path / "junk.json").exists()


# ---------------------------------------------------------------------------
# Real cross-process collectives
# ---------------------------------------------------------------------------


def _make_group(world, quorum=None):
    layout = ShmLayout(world, payload_bytes=PAYLOAD)
    ctrl_seg = create_segment(layout.ctrl_bytes)
    data_seg = create_segment(layout.data_bytes)
    ctrl = layout.ctrl_view(ctrl_seg.buf)
    layout.init_ctrl(ctrl, quorum=quorum if quorum is not None else world, spares=0)
    return layout, ctrl_seg, data_seg, ctrl


def _collective_worker(rank, world, ctrl_name, data_name, run_dir):
    ctrl_seg = attach_segment(ctrl_name)
    data_seg = attach_segment(data_name)
    try:
        layout = ShmLayout(world, payload_bytes=PAYLOAD)
        comm = ProcessComm(
            rank, layout, layout.ctrl_view(ctrl_seg.buf), data_seg.buf,
            timeout_s=20.0, run_dir=run_dir,
        )
        total = comm.allreduce(np.full(3, float(rank + 1)), op=ReduceOp.SUM)
        assert np.array_equal(total, np.full(3, world * (world + 1) / 2.0))
        mean = comm.allreduce(np.arange(4.0) + rank, op=ReduceOp.MEAN)
        assert np.array_equal(mean, np.arange(4.0) + (world - 1) / 2.0)
        got = comm.bcast(np.array([7.5, -2.0]) if rank == 0 else None, root=0)
        assert np.array_equal(got, [7.5, -2.0])
        rows = comm.gather(np.array([float(rank)]), root=0)
        if rank == 0:
            assert [float(r[0]) for r in rows] == [float(r) for r in range(world)]
        else:
            assert rows is None
        comm.barrier()
        assert comm.last_members == frozenset(range(world))
        comm.mark_done()
    finally:
        ctrl_seg.close()
        data_seg.close()


def _crash_worker(rank, world, ctrl_name, data_name, run_dir):
    ctrl_seg = attach_segment(ctrl_name)
    data_seg = attach_segment(data_name)
    try:
        layout = ShmLayout(world, payload_bytes=PAYLOAD)
        comm = ProcessComm(
            rank, layout, layout.ctrl_view(ctrl_seg.buf), data_seg.buf,
            timeout_s=20.0, run_dir=run_dir,
        )
        if rank == 1:
            os.kill(os.getpid(), signal.SIGKILL)
        # Survivor: wait for the supervisor to notice the corpse.
        deadline = time.monotonic() + 30
        while 1 in comm.active_ranks and time.monotonic() < deadline:
            time.sleep(0.01)
        comm.mark_done()
        sys.exit(0 if 1 not in comm.active_ranks else 9)
    finally:
        ctrl_seg.close()
        data_seg.close()


class TestProcessCollectives:
    def test_collectives_across_real_processes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path / "registry"))
        world = 2
        layout, ctrl_seg, data_seg, ctrl = _make_group(world)
        procs = []
        try:
            for r in range(world):
                p = _MP.Process(
                    target=_collective_worker,
                    args=(r, world, ctrl_seg.name, data_seg.name, str(tmp_path)),
                )
                p.start()
                procs.append(p)
            for p in procs:
                p.join(timeout=120)
            assert [p.exitcode for p in procs] == [0, 0]
        finally:
            for p in procs:
                if p.exitcode is None:
                    p.kill()
            destroy_segment(ctrl_seg)
            destroy_segment(data_seg)
        # Both segments unlinked and unregistered: nothing to sweep.
        assert sweep_stale_segments() == []
        assert not list((tmp_path / "registry").glob("*.json"))


class TestRankSupervisor:
    def test_sigkill_classified_with_signal_name(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path / "registry"))
        world = 2
        layout, ctrl_seg, data_seg, ctrl = _make_group(world, quorum=1)

        def spawn(rank, incarnation):
            p = _MP.Process(
                target=_crash_worker,
                args=(rank, world, ctrl_seg.name, data_seg.name, str(tmp_path)),
            )
            p.start()
            return p

        sup = RankSupervisor(layout, ctrl, spawn, timeout_s=5.0, auto_respawn=False)
        try:
            sup.launch(range(world))
            deadline = time.monotonic() + 120
            while not sup.finished() and time.monotonic() < deadline:
                sup.poll()
                time.sleep(0.01)
            sup.poll()
            assert set(sup.failures) == {1}
            err = sup.failures[1]
            assert isinstance(err, ProcessCrashError)
            assert "SIGKILL" in str(err)
            assert sup.kill_counts == {"SIGKILL": 1}
            stats = sup.stats()
            assert stats["failed_ranks"] == [1]
            assert stats["survivors"] == [0]
            assert sup.exit_codes[(0, 0)] == 0
            assert not sup.quorum_lost
        finally:
            sup.shutdown(deadline_s=5.0)
            destroy_segment(ctrl_seg)
            destroy_segment(data_seg)
        assert sup.live_count() == 0
        assert sweep_stale_segments() == []

    def test_shutdown_reaps_stragglers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path / "registry"))
        world = 1
        layout, ctrl_seg, data_seg, ctrl = _make_group(world)

        def spawn(rank, incarnation):
            p = _MP.Process(target=time.sleep, args=(600,))
            p.start()
            return p

        sup = RankSupervisor(layout, ctrl, spawn, timeout_s=5.0, auto_respawn=False)
        try:
            sup.launch(range(world))
            assert sup.live_count() == 1
            sup.shutdown(deadline_s=5.0)
            assert sup.live_count() == 0
        finally:
            sup.shutdown(deadline_s=1.0)
            destroy_segment(ctrl_seg)
            destroy_segment(data_seg)
