"""Timeout and peer-failure behaviour of the fixed-membership backend.

Before the resilience work, a rank dying outside a collective while its
peers waited inside one hung the barrier forever.  These tests pin the
contract: bounded waits, typed errors, and the peer's original
exception re-raised on the survivors.
"""

import time

import numpy as np
import pytest

from repro.comm.errors import CommTimeoutError, RankFailedError
from repro.comm.threaded import ThreadedGroup


class TestThreadedTimeouts:
    def test_peer_death_reraises_peer_exception_on_survivors(self):
        g = ThreadedGroup(3, timeout_s=5.0)
        seen = {}

        def body(comm):
            if comm.rank == 1:
                raise RuntimeError("rank 1 heap corruption")
            try:
                comm.allreduce(np.ones(2))
            except RankFailedError as exc:
                seen[comm.rank] = exc
                raise
            return comm.rank

        with pytest.raises(RuntimeError, match="heap corruption"):
            g.run(body)
        # Survivors saw a typed error naming the dead rank, with the
        # peer's original exception chained as the cause.
        for rank in (0, 2):
            assert seen[rank].failed_ranks == (1,)
            assert isinstance(seen[rank].__cause__, RuntimeError)

    def test_hung_peer_times_out_instead_of_blocking_forever(self):
        g = ThreadedGroup(2, timeout_s=0.2)

        def body(comm):
            if comm.rank == 1:
                time.sleep(60.0)  # never reaches the collective
                return None
            comm.allreduce(np.ones(2))
            return comm.rank

        t0 = time.monotonic()
        with pytest.raises(CommTimeoutError) as ei:
            g.run(body)
        assert time.monotonic() - t0 < 10.0
        assert ei.value.timeout_s == pytest.approx(0.2)

    def test_timeout_none_disables_bound(self):
        g = ThreadedGroup(2, timeout_s=None)
        out = g.run(lambda comm: comm.allreduce(np.array([1.0]))[0])
        assert out == [2.0, 2.0]

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            ThreadedGroup(2, timeout_s=-1.0)

    def test_group_reusable_after_timeout(self):
        g = ThreadedGroup(2, timeout_s=0.2)

        def hang_one(comm):
            if comm.rank == 0:
                comm.allreduce(np.ones(1))
            else:
                time.sleep(1.0)

        with pytest.raises(CommTimeoutError):
            g.run(hang_one)
        time.sleep(1.0)  # let the straggler thread drain
        out = g.run(lambda comm: comm.allreduce(np.array([2.0]))[0])
        assert out == [4.0, 4.0]
