"""End-to-end reproducibility guarantees.

Determinism is load-bearing for this library: the stepped/threaded
trainer equivalence, checkpoint resumption, and the scientific results
all assume that a seed pins the entire pipeline.
"""

import numpy as np
import pytest

from repro.core.distributed import DistributedConfig, DistributedTrainer
from repro.core.model import CosmoFlowModel
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import ConvSpec, CosmoFlowConfig
from repro.core.trainer import InMemoryData, Trainer, TrainerConfig
from repro.cosmo import SimulationConfig, build_arrays

MICRO = CosmoFlowConfig(
    name="micro4r",
    input_size=4,
    conv_layers=(ConvSpec(16, 2),),
    fc_sizes=(8,),
    n_outputs=3,
)
SIM = SimulationConfig(particle_grid=16, histogram_grid=8, box_size=32.0)


def build_data(seed=0):
    x, y, _ = build_arrays(4, SIM, seed=seed)
    return x, y


class TestPipelineDeterminism:
    def test_simulation_bitwise_reproducible(self):
        a, ya = build_data(seed=3)
        b, yb = build_data(seed=3)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(ya, yb)

    def test_training_bitwise_reproducible(self):
        x, y = build_data()

        def train_once():
            model = CosmoFlowModel(MICRO, seed=5)
            Trainer(
                model,
                InMemoryData(x, y, augment=True),
                optimizer_config=OptimizerConfig(decay_steps=64),
                config=TrainerConfig(epochs=2, seed=9, validate=False),
            ).run()
            return model.get_flat_parameters()

        np.testing.assert_array_equal(train_once(), train_once())

    def test_augmentation_seed_controls_stream(self):
        """Different trainer seeds -> different augmented streams ->
        different final weights (the seed really threads through)."""
        x, y = build_data()

        def train_with(seed):
            model = CosmoFlowModel(MICRO, seed=5)
            Trainer(
                model,
                InMemoryData(x, y, augment=True),
                optimizer_config=OptimizerConfig(decay_steps=64),
                config=TrainerConfig(epochs=1, seed=seed, validate=False),
            ).run()
            return model.get_flat_parameters()

        assert not np.array_equal(train_with(1), train_with(2))

    def test_distributed_reproducible_across_modes_and_runs(self):
        x, y = build_data(seed=1)
        data = InMemoryData(x, y)

        def run(mode):
            trainer = DistributedTrainer(
                MICRO,
                data,
                config=DistributedConfig(
                    n_ranks=4, epochs=2, mode=mode, validate=False, seed=2
                ),
                optimizer_config=OptimizerConfig(decay_steps=64),
            )
            trainer.run()
            return trainer.final_model.get_flat_parameters()

        stepped1 = run("stepped")
        stepped2 = run("stepped")
        threaded = run("threaded")
        np.testing.assert_array_equal(stepped1, stepped2)
        np.testing.assert_allclose(stepped1, threaded, rtol=1e-5, atol=1e-6)

    def test_record_round_trip_preserves_training(self, tmp_path):
        """Training from record files == training from arrays."""
        from repro.io.dataset import RecordDataset, write_dataset

        x, y = build_data(seed=4)
        paths = write_dataset(tmp_path, x, y, samples_per_file=8)
        x2, y2 = RecordDataset(paths).to_arrays()

        def train_on(xa, ya):
            model = CosmoFlowModel(MICRO, seed=0)
            Trainer(
                model,
                InMemoryData(xa, ya),
                optimizer_config=OptimizerConfig(decay_steps=64),
                config=TrainerConfig(epochs=1, seed=3, validate=False),
            ).run()
            return model.get_flat_parameters()

        np.testing.assert_array_equal(train_on(x, y), train_on(x2, y2))
