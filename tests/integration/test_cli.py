"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("simulate", "train", "predict", "topology", "scaling"):
            args = {
                "simulate": ["simulate", "--out", "x"],
                "train": ["train", "--data", "x"],
                "predict": ["predict", "--data", "x", "--checkpoint", "y"],
                "topology": ["topology"],
                "scaling": ["scaling"],
            }[cmd]
            parsed = parser.parse_args(args)
            assert parsed.command == cmd


class TestCommands:
    def test_topology(self, capsys):
        assert main(["topology", "tiny_16"]) == 0
        out = capsys.readouterr().out
        assert "69,763 parameters" in out

    def test_topology_default_is_paper(self, capsys):
        assert main(["topology"]) == 0
        assert "7,081,523" in capsys.readouterr().out

    def test_topology_unknown_preset(self):
        with pytest.raises(SystemExit):
            main(["topology", "resnet50"])

    def test_scaling_table(self, capsys):
        assert main(["scaling", "--machine", "cori_bb", "--max-nodes", "256"]) == 0
        out = capsys.readouterr().out
        assert "256" in out and "efficiency" in out

    @pytest.mark.slow
    def test_full_workflow(self, tmp_path, capsys):
        """simulate -> train -> predict through the CLI."""
        ds = tmp_path / "ds"
        ckpt = tmp_path / "model"
        assert (
            main(
                [
                    "simulate", "--out", str(ds), "--sims", "8",
                    "--particle-grid", "32", "--histogram-grid", "32",
                    "--box-size", "64",
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "train", "--data", str(ds), "--epochs", "2",
                    "--checkpoint", str(ckpt),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "epoch 2" in out and "checkpoint" in out
        assert main(["predict", "--data", str(ds), "--checkpoint", str(ckpt) + ".npz"]) == 0
        out = capsys.readouterr().out
        assert "relative errors" in out

    @pytest.mark.slow
    def test_train_preset_mismatch(self, tmp_path):
        ds = tmp_path / "small"
        main(
            [
                "simulate", "--out", str(ds), "--sims", "4",
                "--particle-grid", "16", "--histogram-grid", "16",
                "--box-size", "32",
            ]
        )
        with pytest.raises(SystemExit, match="expects"):
            main(["train", "--data", str(ds), "--preset", "tiny_16", "--epochs", "1"])
