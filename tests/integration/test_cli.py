"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("simulate", "train", "predict", "topology", "scaling",
                    "faultsim", "stage", "serve", "tune"):
            args = {
                "simulate": ["simulate", "--out", "x"],
                "train": ["train", "--data", "x"],
                "predict": ["predict", "--data", "x", "--checkpoint", "y"],
                "topology": ["topology"],
                "scaling": ["scaling"],
                "faultsim": ["faultsim"],
                "stage": ["stage", "--data", "x", "--bb-dir", "y"],
                "serve": ["serve"],
                "tune": ["tune", "warm"],
            }[cmd]
            parsed = parser.parse_args(args)
            assert parsed.command == cmd

    def test_train_mode_flags(self):
        parser = build_parser()
        parsed = parser.parse_args(["train", "--data", "x"])
        assert parsed.mode == "local" and parsed.ranks == 2
        parsed = parser.parse_args(
            ["train", "--data", "x", "--mode", "stepped", "--ranks", "3"]
        )
        assert parsed.mode == "stepped" and parsed.ranks == 3
        with pytest.raises(SystemExit):
            parser.parse_args(["train", "--data", "x", "--mode", "horse"])

    def test_train_conv_impl_flag(self):
        parser = build_parser()
        assert parser.parse_args(["train", "--data", "x"]).conv_impl is None
        for impl in ("gemm", "im2col", "direct", "blocked", "auto"):
            parsed = parser.parse_args(["train", "--data", "x", "--conv-impl", impl])
            assert parsed.conv_impl == impl
        with pytest.raises(SystemExit):
            parser.parse_args(["train", "--data", "x", "--conv-impl", "cudnn"])

    def test_tune_subcommands(self):
        parser = build_parser()
        parsed = parser.parse_args(["tune", "warm", "--preset", "tiny_16",
                                    "--max-size", "8", "--cache", "c.json"])
        assert parsed.tune_command == "warm" and parsed.max_size == 8
        assert parser.parse_args(["tune", "show"]).tune_command == "show"
        assert parser.parse_args(["tune", "clear"]).tune_command == "clear"
        with pytest.raises(SystemExit):
            parser.parse_args(["tune"])  # subcommand required


class TestCommands:
    def test_topology(self, capsys):
        assert main(["topology", "tiny_16"]) == 0
        out = capsys.readouterr().out
        assert "69,763 parameters" in out

    def test_topology_default_is_paper(self, capsys):
        assert main(["topology"]) == 0
        assert "7,081,523" in capsys.readouterr().out

    def test_topology_unknown_preset(self):
        with pytest.raises(SystemExit):
            main(["topology", "resnet50"])

    def test_scaling_table(self, capsys):
        assert main(["scaling", "--machine", "cori_bb", "--max-nodes", "256"]) == 0
        out = capsys.readouterr().out
        assert "256" in out and "efficiency" in out

    @pytest.mark.slow
    def test_full_workflow(self, tmp_path, capsys):
        """simulate -> train -> predict through the CLI."""
        ds = tmp_path / "ds"
        ckpt = tmp_path / "model"
        assert (
            main(
                [
                    "simulate", "--out", str(ds), "--sims", "8",
                    "--particle-grid", "32", "--histogram-grid", "32",
                    "--box-size", "64",
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "train", "--data", str(ds), "--epochs", "2",
                    "--checkpoint", str(ckpt),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "epoch 2" in out and "checkpoint" in out
        assert main(["predict", "--data", str(ds), "--checkpoint", str(ckpt) + ".npz"]) == 0
        out = capsys.readouterr().out
        assert "relative errors" in out

class TestStageCommand:
    @pytest.fixture()
    def record_dir(self, tmp_path):
        from repro.io.dataset import write_dataset

        rng = np.random.default_rng(0)
        vols = rng.standard_normal((8, 1, 4, 4, 4)).astype(np.float32)
        tgts = rng.random((8, 3)).astype(np.float32)
        write_dataset(tmp_path / "data", vols, tgts, samples_per_file=4)
        return tmp_path

    def test_stage_clean(self, record_dir, capsys):
        rc = main([
            "stage", "--data", str(record_dir / "data"),
            "--bb-dir", str(record_dir / "bb"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "staged 2/2 shards" in out
        assert "8 records delivered, 0 skipped" in out

    def test_stage_under_faults_still_succeeds(self, record_dir, capsys):
        rc = main([
            "stage", "--data", str(record_dir / "data"),
            "--bb-dir", str(record_dir / "bb"),
            "--stage-fail-rate", "0.4", "--target-slow-rate", "0.4",
            "--bb-evict-rate", "0.2", "--hedge-budget-ms", "50",
            "--breaker-reset-s", "0.5", "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "8 records delivered" in out
        assert "faults fired" in out

    def test_stage_strict_corrupt_source_fails_cleanly(self, record_dir, capsys):
        # Bit-rot a source record: strict mode must print FAILED and
        # return 1 — never a traceback — so CI can assert on it.
        shard = sorted((record_dir / "data").glob("*.rec"))[0]
        data = bytearray(shard.read_bytes())
        data[30] ^= 0xFF
        shard.write_bytes(bytes(data))
        rc = main([
            "stage", "--data", str(record_dir / "data"),
            "--bb-dir", str(record_dir / "bb"), "--strict",
        ])
        assert rc == 1
        assert "FAILED" in capsys.readouterr().out

    def test_stage_empty_dir_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no record files"):
            main(["stage", "--data", str(tmp_path), "--bb-dir", str(tmp_path / "bb")])

    def test_stage_unknown_split_exits(self, tmp_path):
        from repro.cosmo.dataset_builder import SimulationConfig
        from repro.io.manifest import write_simulation_dataset

        write_simulation_dataset(
            tmp_path / "ds", n_sims=4,
            config=SimulationConfig(
                particle_grid=16, histogram_grid=16, box_size=32.0
            ),
            seed=0,
        )
        with pytest.raises(SystemExit, match="split"):
            main([
                "stage", "--data", str(tmp_path / "ds"), "--split", "bogus",
                "--bb-dir", str(tmp_path / "bb"),
            ])


class TestFaultsimExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        rc = main([
            "faultsim", "--ranks", "2", "--epochs", "1", "--samples", "4",
            "--crash-rate", "0",
        ])
        assert rc == 0
        assert "survivors" in capsys.readouterr().out

    def test_unrecovered_quorum_loss_exits_nonzero(self, capsys):
        # Every rank crashes at step 0 and there is no checkpoint dir:
        # CI must see a nonzero exit and a FAILED line, not a traceback.
        rc = main([
            "faultsim", "--ranks", "2", "--epochs", "1", "--samples", "4",
            "--crash-rate", "1.0", "--timeout", "2",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAILED: unrecovered quorum loss" in out
        assert "--checkpoint-dir" in out

    def test_infeasible_recovery_schedule_exits_two(self, capsys):
        # --recover-after pushing every rejoin past the run's last step
        # is a plan that can never do what was asked: refuse to run.
        rc = main([
            "faultsim", "--ranks", "2", "--epochs", "1", "--samples", "8",
            "--crash-rate", "0.3", "--seed", "3", "--recover-after", "50",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "infeasible fault plan" in err
        assert "never be admitted" in err

    def test_feasible_recovery_schedule_runs(self, capsys):
        rc = main([
            "faultsim", "--ranks", "4", "--epochs", "1", "--samples", "16",
            "--crash-rate", "0.15", "--seed", "1", "--recover-after", "1",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "rejoins: [2, 3]" in captured.out

    def test_negative_spares_rejected(self):
        with pytest.raises(SystemExit):
            main([
                "faultsim", "--ranks", "2", "--epochs", "1", "--samples", "4",
                "--spares", "-1",
            ])


class TestServeCommand:
    BASE = [
        "serve", "--replicas", "2", "--spares", "1", "--requests", "80",
        "--rate", "200", "--unique", "1000", "--seed", "7",
    ]

    def test_clean_serve_exits_zero(self, capsys):
        rc = main(self.BASE)
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving tier:" in out and "dropped 0" in out

    def test_crash_failover_zero_dropped(self, tmp_path, capsys):
        report = tmp_path / "serve.json"
        rc = main(self.BASE + [
            "--crash-at", "3", "--report", str(report),
            "--p99-budget-ms", "500",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "crashes: 1" in out
        import json

        doc = json.loads(report.read_text())
        assert doc["report"]["dropped"] == 0
        assert doc["report"]["crashes"] == 1
        assert doc["latency_histogram"]["p99"] > 0

    def test_p99_budget_violation_exits_nonzero(self, capsys):
        rc = main(self.BASE + ["--p99-budget-ms", "0.000001"])
        assert rc == 1
        assert "FAILED: served p99" in capsys.readouterr().out

    def test_trace_roundtrips_through_summarize(self, tmp_path, capsys):
        trace = tmp_path / "serve_trace.json"
        assert main(self.BASE + ["--trace", str(trace)]) == 0
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "admit" in out


class TestTuneCommand:
    def test_warm_show_clear_cycle(self, tmp_path, capsys):
        cache = str(tmp_path / "autotune.json")
        assert main(["tune", "warm", "--preset", "tiny_16", "--max-size", "6",
                     "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "warmed" in out and "forward|" in out
        assert main(["tune", "show", "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "ms" in out
        # Second warm replays from the persisted file: nothing re-timed.
        assert main(["tune", "warm", "--preset", "tiny_16", "--max-size", "6",
                     "--cache", cache]) == 0
        assert "(0 timed" in capsys.readouterr().out
        assert main(["tune", "clear", "--cache", cache]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["tune", "show", "--cache", cache]) == 0
        assert "empty" in capsys.readouterr().out

    def test_warm_unknown_preset_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["tune", "warm", "--preset", "resnet50",
                  "--cache", str(tmp_path / "c.json")])


class TestCommandsSlow:
    @pytest.mark.slow
    def test_train_preset_mismatch(self, tmp_path):
        ds = tmp_path / "small"
        main(
            [
                "simulate", "--out", str(ds), "--sims", "4",
                "--particle-grid", "16", "--histogram-grid", "16",
                "--box-size", "32",
            ]
        )
        with pytest.raises(SystemExit, match="expects"):
            main(["train", "--data", str(ds), "--preset", "tiny_16", "--epochs", "1"])

    @pytest.mark.slow
    def test_train_conv_impl_blocked_with_trace(self, tmp_path, capsys):
        """--conv-impl blocked + --trace surfaces the reorder counters."""
        ds = tmp_path / "ds"
        assert (
            main(
                [
                    "simulate", "--out", str(ds), "--sims", "6",
                    "--particle-grid", "16", "--histogram-grid", "32",
                    "--box-size", "32",
                ]
            )
            == 0
        )
        capsys.readouterr()
        trace = tmp_path / "trace.json"
        assert (
            main(
                [
                    "train", "--data", str(ds), "--preset", "tiny_16",
                    "--epochs", "1", "--conv-impl", "blocked",
                    "--trace", str(trace),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "primitives.reorder.calls" in out
        assert "primitives.reorder.cache.hits" in out
        assert "primitives.conv3d.forward.calls" in out
        # Global registry state restored after the run.
        from repro.primitives import registry

        assert registry.get_default_impl() == "gemm"
        assert registry.get_metrics() is None

    @pytest.mark.slow
    def test_train_distributed_modes(self, tmp_path, capsys):
        """The train command drives every engine backend via --mode."""
        ds = tmp_path / "ds"
        assert (
            main(
                [
                    "simulate", "--out", str(ds), "--sims", "8",
                    "--particle-grid", "16", "--histogram-grid", "32",
                    "--box-size", "32",
                ]
            )
            == 0
        )
        capsys.readouterr()
        for mode in ("stepped", "elastic"):
            assert (
                main(
                    [
                        "train", "--data", str(ds), "--preset", "tiny_16",
                        "--epochs", "1", "--mode", mode, "--ranks", "2",
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
            assert f"mode: {mode}  ranks: 2" in out
            assert "reductions:" in out
        with pytest.raises(SystemExit, match="cannot feed"):
            main(
                [
                    "train", "--data", str(ds), "--preset", "tiny_16",
                    "--epochs", "1", "--mode", "threaded", "--ranks", "500",
                ]
            )
