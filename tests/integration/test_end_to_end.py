"""Integration tests: the full system working end to end."""

import numpy as np
import pytest

from repro.core.distributed import DistributedConfig, DistributedTrainer
from repro.core.model import CosmoFlowModel
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import ConvSpec, CosmoFlowConfig, tiny_16
from repro.core.trainer import InMemoryData, Trainer, TrainerConfig
from repro.cosmo import SimulationConfig, build_arrays
from repro.io.dataset import RecordDataset, write_dataset
from repro.io.pipeline import PrefetchPipeline

TINY_SIM = SimulationConfig(particle_grid=16, histogram_grid=8, box_size=32.0)

MICRO_NET = CosmoFlowConfig(
    name="micro4",
    input_size=4,
    conv_layers=(ConvSpec(16, 2),),
    fc_sizes=(16,),
    n_outputs=3,
)


@pytest.mark.slow
class TestSimulateToTraining:
    def test_full_pipeline_through_record_files(self, tmp_path):
        """simulate -> records on disk -> prefetch pipeline -> train -> predict."""
        volumes, targets, theta = build_arrays(6, TINY_SIM, seed=0)
        assert volumes.shape == (48, 1, 4, 4, 4)

        paths = write_dataset(tmp_path, volumes, targets, samples_per_file=16, shuffle_rng=0)
        dataset = RecordDataset(paths)
        assert len(dataset) == 48
        pipe = PrefetchPipeline(dataset, n_io_threads=2, buffer_size=4)

        model = CosmoFlowModel(MICRO_NET, seed=0)
        trainer = Trainer(
            model,
            pipe,
            optimizer_config=OptimizerConfig(eta0=5e-3, decay_steps=200),
            config=TrainerConfig(epochs=4, batch_size=4, validate=False),
        )
        hist = trainer.run()
        assert hist.train_loss[-1] < hist.train_loss[0]

        pred = model.predict(volumes[:4])
        assert pred.shape == (4, 3)
        assert np.all(np.isfinite(pred))

    def test_distributed_training_on_simulated_data(self):
        """Algorithm 2 over threaded ranks, on real simulation output."""
        volumes, targets, _ = build_arrays(4, TINY_SIM, seed=1)
        trainer = DistributedTrainer(
            MICRO_NET,
            InMemoryData(volumes, targets),
            config=DistributedConfig(n_ranks=4, epochs=3, mode="threaded", validate=False),
            optimizer_config=OptimizerConfig(eta0=5e-3, decay_steps=100),
        )
        hist = trainer.run()
        assert hist.train_loss[-1] < hist.train_loss[0]
        assert trainer.group_stats["max_param_divergence"] <= 1e-5

    def test_checkpoint_round_trip_preserves_predictions(self):
        """Flat-parameter save/restore reproduces the model exactly."""
        volumes, targets, _ = build_arrays(2, TINY_SIM, seed=2)
        model = CosmoFlowModel(MICRO_NET, seed=3)
        Trainer(
            model,
            InMemoryData(volumes, targets),
            optimizer_config=OptimizerConfig(),
            config=TrainerConfig(epochs=1, validate=False),
        ).run()
        checkpoint = model.get_flat_parameters().copy()
        before = model.predict(volumes[:3])

        clone = CosmoFlowModel(MICRO_NET, seed=999)  # different init
        assert not np.allclose(clone.predict(volumes[:3]), before)
        clone.set_flat_parameters(checkpoint)
        np.testing.assert_array_equal(clone.predict(volumes[:3]), before)

    def test_stepped_large_rank_emulation(self):
        """Emulating many more ranks than samples per rank stays exact:
        48 samples over 24 ranks -> 2 steps/epoch, global batch 24."""
        volumes, targets, _ = build_arrays(6, TINY_SIM, seed=4)
        trainer = DistributedTrainer(
            MICRO_NET,
            InMemoryData(volumes, targets),
            config=DistributedConfig(n_ranks=24, epochs=2, mode="stepped", validate=False),
            optimizer_config=OptimizerConfig(),
        )
        assert trainer.steps_per_epoch == 2
        hist = trainer.run()
        assert len(hist.train_loss) == 2
        assert all(np.isfinite(v) for v in hist.train_loss)


@pytest.mark.slow
class TestScienceLoop:
    def test_tiny16_learns_sigma8_direction(self):
        """The headline science at miniature scale: after training with
        augmentation, predictions correlate positively with sigma_8 on
        held-out simulations.  Uses the paper-geometry default config
        (8 particles/voxel — shot noise buries the signal below that)."""
        sim = SimulationConfig()
        volumes, targets, theta = build_arrays(80, sim, seed=5)
        # split by simulation: first 66 sims train, last 14 test
        n_tr = 66 * 8
        model = CosmoFlowModel(tiny_16(), seed=0)
        trainer = Trainer(
            model,
            InMemoryData(volumes[:n_tr], targets[:n_tr], augment=True),
            optimizer_config=OptimizerConfig(eta0=2e-3, decay_steps=6 * n_tr),
            config=TrainerConfig(epochs=6, seed=1, validate=False),
        )
        trainer.run()
        pred = model.predict_normalized(volumes[n_tr:])
        corr = np.corrcoef(pred[:, 1], targets[n_tr:, 1])[0, 1]
        assert corr > 0.15, f"sigma_8 correlation {corr:.3f} shows no learning"
