"""Shared finite-difference gradient checking utilities for tests."""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_grad(f, x: np.ndarray, eps: float = 1e-4) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f()`` w.r.t. ``x``.

    ``f`` must read the *current* contents of ``x`` (mutated in place).
    """
    g = np.zeros(x.shape, dtype=np.float64)
    flat_x = x.reshape(-1)
    flat_g = g.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        fp = float(f())
        flat_x[i] = orig - eps
        fm = float(f())
        flat_x[i] = orig
        flat_g[i] = (fp - fm) / (2 * eps)
    return g


def check_grads(build, arrays: dict[str, np.ndarray], rtol=1e-4, atol=1e-5, eps=1e-4):
    """Check autograd gradients of a scalar expression against finite
    differences.

    Parameters
    ----------
    build
        Callable taking ``dict[str, Tensor]`` and returning a scalar
        :class:`Tensor`.
    arrays
        Named float64 input arrays; each is treated as requiring grad.
    """
    tensors = {k: Tensor(v.copy(), requires_grad=True) for k, v in arrays.items()}
    out = build(tensors)
    out.backward()
    for name, base in arrays.items():
        work = base.copy()

        def f(name=name, work=work):
            probe = {
                k: Tensor(work if k == name else arrays[k], requires_grad=False)
                for k in arrays
            }
            return build(probe).item()

        want = numerical_grad(f, work, eps)
        got = tensors[name].grad
        assert got is not None, f"no gradient for {name}"
        np.testing.assert_allclose(
            got, want, rtol=rtol, atol=atol, err_msg=f"gradient mismatch for {name}"
        )
