"""End-to-end tests for the inference server — the A9 acceptance
behaviors at test scale: throughput scaling, crash failover with zero
loss, fast shedding under overload, and bitwise replay."""

import numpy as np
import pytest

from repro.core.model import CosmoFlowModel
from repro.core.topology import tiny_16
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.obs.tracer import Tracer
from repro.perfmodel.node import NodeSpec
from repro.serve import (
    InferenceServer,
    Outcome,
    ServeConfig,
    WorkloadSpec,
    build_requests,
)


@pytest.fixture(scope="module")
def model():
    return CosmoFlowModel(tiny_16(), seed=0)


def node(jitter=0.02):
    # ~1 Gflop/s sustained -> tiny_16 forward in a few ms: fast tests
    # with realistically shaped latencies.
    return NodeSpec(name="test", sustained_flops=1e9, peak_flops=1e12, jitter_sigma=jitter)


def serve(model, config, spec, seed=0, plan=None, **kw):
    injector = FaultInjector(plan) if plan is not None else None
    server = InferenceServer(model, config, node=node(), seed=seed, injector=injector, **kw)
    report = server.run(build_requests(spec, seed=seed))
    return server, report


def crash_plan(*dispatches):
    return FaultPlan(
        events=[FaultEvent(FaultKind.REPLICA_CRASH, step=d) for d in dispatches]
    )


class TestAccounting:
    def test_every_request_accounted(self, model):
        cfg = ServeConfig(n_replicas=2, max_queue=8)
        spec = WorkloadSpec(n_requests=120, rate_qps=800.0, deadline_slack_s=0.05, n_unique=40)
        _, rep = serve(model, cfg, spec, seed=3)
        assert (
            rep.completed + rep.cache_hits + rep.shed + rep.dropped == rep.n_requests
        )

    def test_clean_run_serves_everything(self, model):
        cfg = ServeConfig(n_replicas=2)
        spec = WorkloadSpec(n_requests=60, rate_qps=150.0, deadline_slack_s=0.5, n_unique=20)
        _, rep = serve(model, cfg, spec, seed=1)
        assert rep.served == 60 and rep.shed == 0 and rep.dropped == 0
        assert rep.deadline_misses == 0
        assert rep.latency_p50_s <= rep.latency_p99_s <= rep.latency_max_s


class TestThroughputScaling:
    def test_more_replicas_more_sustained_qps(self, model):
        # Offered load sized ~3x one replica's capacity: a single
        # replica must shed, three replicas must not.
        spec = WorkloadSpec(
            n_requests=150, rate_qps=600.0, deadline_slack_s=0.06, n_unique=10_000
        )
        _, rep1 = serve(model, ServeConfig(n_replicas=1, max_queue=16), spec, seed=9)
        _, rep3 = serve(model, ServeConfig(n_replicas=3, max_queue=16), spec, seed=9)
        assert rep3.served > rep1.served
        assert rep3.shed < rep1.shed
        assert rep1.dropped == rep3.dropped == 0
        # What the 3-replica pool admits, it serves on time.
        assert rep3.deadline_misses == 0


class TestCrashFailover:
    def test_crash_loses_no_admitted_requests(self, model):
        cfg = ServeConfig(n_replicas=3, n_spares=1)
        spec = WorkloadSpec(
            n_requests=200, rate_qps=300.0, deadline_slack_s=0.4, n_unique=10_000
        )
        srv, rep = serve(model, cfg, spec, seed=7, plan=crash_plan(5))
        assert rep.crashes == 1 and rep.promotions == 1
        assert rep.redrained >= 1
        assert rep.dropped == 0
        assert rep.served + rep.shed == rep.n_requests
        assert any(e.startswith("redrain:") for e in srv.events)
        assert any(e.startswith("promote:") for e in srv.events)

    def test_redrained_requests_complete(self, model):
        cfg = ServeConfig(n_replicas=2, n_spares=1)
        spec = WorkloadSpec(n_requests=80, rate_qps=250.0, deadline_slack_s=0.6, n_unique=10_000)
        srv = InferenceServer(
            model, cfg, node=node(), seed=4, injector=FaultInjector(crash_plan(3))
        )
        requests = build_requests(spec, seed=4)
        srv.run(requests)
        redrained = [r for r in requests if r.redrains > 0]
        assert redrained, "crash should have redrained in-flight requests"
        assert all(r.outcome is Outcome.COMPLETED for r in redrained)

    def test_pool_death_without_spares_drops_loudly(self, model):
        cfg = ServeConfig(n_replicas=2, n_spares=0, cache_capacity=0)
        spec = WorkloadSpec(n_requests=40, rate_qps=500.0, deadline_slack_s=0.2, n_unique=100)
        _, rep = serve(model, cfg, spec, seed=1, plan=crash_plan(0, 1))
        assert rep.crashes == 2 and rep.promotions == 0
        assert rep.dropped > 0 or rep.shed_unavailable > 0
        assert rep.served + rep.shed + rep.dropped == rep.n_requests

    def test_cache_serves_after_total_pool_death(self, model):
        # Warm the cache, then kill both replicas: repeats of cached
        # volumes are still answered (degraded-mode floor).
        cfg = ServeConfig(n_replicas=2, n_spares=0, cache_capacity=64)
        spec = WorkloadSpec(n_requests=120, rate_qps=150.0, deadline_slack_s=0.4, n_unique=4)
        _, rep = serve(model, cfg, spec, seed=6, plan=crash_plan(2, 3))
        assert rep.crashes == 2
        assert rep.cache_hits > 0
        hits_after_death = rep.cache_hits
        assert hits_after_death + rep.completed + rep.shed + rep.dropped == rep.n_requests


class TestOverload:
    def test_overload_sheds_fast_admitted_meet_deadlines(self, model):
        # Offered ~2x what two replicas sustain, with tight deadlines.
        cfg = ServeConfig(n_replicas=2, max_queue=8)
        spec = WorkloadSpec(
            n_requests=300, rate_qps=1200.0, deadline_slack_s=0.03, n_unique=10_000
        )
        srv = InferenceServer(model, cfg, node=node(), seed=11)
        requests = build_requests(spec, seed=11)
        rep = srv.run(requests)
        assert rep.shed > 0
        assert rep.dropped == 0
        # Shed requests are rejected at arrival: no queue time burned.
        shed = [r for r in requests if r.outcome in (
            Outcome.SHED_DEADLINE, Outcome.SHED_QUEUE_FULL, Outcome.SHED_UNAVAILABLE
        )]
        assert all(r.finish_s is None for r in shed)
        # Nearly everything admitted meets its deadline (the estimate
        # is nominal, so jitter can cost a straggler or two).
        assert rep.deadline_misses <= max(2, rep.completed // 20)

    def test_feasibility_margin_sheds_earlier(self, model):
        spec = WorkloadSpec(
            n_requests=200, rate_qps=900.0, deadline_slack_s=0.04, n_unique=10_000
        )
        _, lax = serve(model, ServeConfig(n_replicas=2), spec, seed=2)
        _, strict = serve(
            model, ServeConfig(n_replicas=2, feasibility_margin=2.0), spec, seed=2
        )
        assert strict.shed_deadline >= lax.shed_deadline


class TestHedging:
    def test_straggler_hedge_wins(self, model):
        plan = FaultPlan(
            events=[FaultEvent(FaultKind.REPLICA_SLOW, step=0, delay_s=0.5)]
        )
        cfg = ServeConfig(
            n_replicas=2, max_batch=2, hedge_budget_s=0.05, straggler_threshold_s=0.2
        )
        spec = WorkloadSpec(n_requests=20, rate_qps=100.0, deadline_slack_s=1.0, n_unique=1000)
        srv, rep = serve(model, cfg, spec, seed=2, plan=plan)
        assert rep.hedges >= 1 and rep.hedge_wins >= 1
        assert rep.dropped == 0 and rep.deadline_misses == 0
        assert any(e.startswith("hedge:") for e in srv.events)
        assert any(e.startswith("hedge_loss:") for e in srv.events)
        assert any(e.startswith("straggle:") for e in srv.events)

    def test_no_hedge_without_budget(self, model):
        plan = FaultPlan(
            events=[FaultEvent(FaultKind.REPLICA_SLOW, step=0, delay_s=0.3)]
        )
        cfg = ServeConfig(n_replicas=2, hedge_budget_s=None)
        spec = WorkloadSpec(n_requests=20, rate_qps=100.0, deadline_slack_s=1.0, n_unique=1000)
        _, rep = serve(model, cfg, spec, seed=2, plan=plan)
        assert rep.hedges == 0


class TestDeterminism:
    CFG = dict(n_replicas=3, n_spares=1, hedge_budget_s=0.08)
    SPEC = WorkloadSpec(
        n_requests=150, rate_qps=400.0, deadline_slack_s=0.3, n_unique=64
    )

    def run_once(self, model, seed):
        plan = FaultPlan(events=[
            FaultEvent(FaultKind.REPLICA_CRASH, step=4),
            FaultEvent(FaultKind.REPLICA_SLOW, step=9, delay_s=0.2),
        ])
        return serve(model, ServeConfig(**self.CFG), self.SPEC, seed=seed, plan=plan)

    def test_same_seed_replays_bitwise(self, model):
        srv_a, rep_a = self.run_once(model, seed=13)
        srv_b, rep_b = self.run_once(model, seed=13)
        assert srv_a.events == srv_b.events
        assert rep_a.as_dict() == rep_b.as_dict()

    def test_different_seed_diverges(self, model):
        srv_a, _ = self.run_once(model, seed=13)
        srv_b, _ = self.run_once(model, seed=14)
        assert srv_a.events != srv_b.events


class TestObservability:
    def test_decisions_mirror_to_tracer_and_metrics(self, model, tmp_path):
        from repro.obs.summarize import load_trace, summarize_trace

        tracer = Tracer()
        cfg = ServeConfig(n_replicas=2, n_spares=1)
        spec = WorkloadSpec(n_requests=60, rate_qps=200.0, deadline_slack_s=0.4, n_unique=16)
        srv = InferenceServer(
            model, cfg, node=node(), seed=5,
            injector=FaultInjector(crash_plan(2)), tracer=tracer,
        )
        rep = srv.run(build_requests(spec, seed=5))
        # Every decision-log entry has a matching instant on "serve".
        summary = summarize_trace(load_trace(tracer.export(tmp_path / "t.json")))
        per = summary.per_track_instants["serve"]
        assert per.get("admit", 0) == srv.metrics.value("serve.admitted")
        assert per.get("crash", 0) == rep.crashes == 1
        assert len(srv.events) == sum(per.values())
        assert srv.metrics.value("serve.completed") == rep.completed
        assert srv.metrics.histogram("serve.latency_s").count == rep.served

    def test_real_inference_results_cached(self, model):
        from repro.serve.workload import payload_volume

        cfg = ServeConfig(n_replicas=1, run_inference=True, cache_capacity=8)
        spec = WorkloadSpec(n_requests=12, rate_qps=100.0, deadline_slack_s=1.0, n_unique=2)
        srv, rep = serve(model, cfg, spec, seed=8)
        assert rep.cache_hits > 0
        cached = srv.cache.get("vol-0000")
        if cached is not None:
            expected = model.predict(payload_volume("vol-0000", 16, seed=8))
            np.testing.assert_allclose(cached, expected)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(n_replicas=0)
        with pytest.raises(ValueError):
            ServeConfig(hedge_budget_s=-1.0)
        with pytest.raises(ValueError):
            ServeConfig(feasibility_margin=0.0)
