"""Tests for replica modeling and pool membership."""

import pytest

from repro.core.model import CosmoFlowModel
from repro.core.topology import tiny_16
from repro.perfmodel.node import NodeSpec
from repro.serve.pool import ReplicaPool
from repro.serve.replica import Replica, ReplicaState
from repro.utils.rng import new_rng


@pytest.fixture(scope="module")
def model():
    return CosmoFlowModel(tiny_16(), seed=0)


def flat_node():
    return NodeSpec(name="flat", sustained_flops=1e9, peak_flops=1e12, jitter_sigma=0.0)


def make_replica(rid, model, jitter=0.0):
    node = NodeSpec(
        name="n", sustained_flops=1e9, peak_flops=1e12, jitter_sigma=jitter
    )
    return Replica(rid, model, node, overhead_s=0.001)


class TestReplica:
    def test_service_time_is_flops_over_rate_plus_overhead(self, model):
        r = make_replica(0, model)
        nominal = r.nominal_service_s(4)
        expected = 0.001 + 4 * r.fwd_flops_per_sample / 1e9
        assert nominal == pytest.approx(expected)
        # Zero jitter: the sampled draw equals the nominal time.
        assert r.service_time(4, new_rng(0)) == pytest.approx(nominal)

    def test_jitter_is_seeded(self, model):
        r = make_replica(0, model, jitter=0.1)
        a = r.service_time(2, new_rng(7))
        b = r.service_time(2, new_rng(7))
        c = r.service_time(2, new_rng(8))
        assert a == b and a != c

    def test_boots_warming(self, model):
        assert make_replica(0, model).state is ReplicaState.WARMING


class TestPool:
    def make_pool(self, model, n=3, spares=0):
        reps = [make_replica(i, model) for i in range(n)]
        sps = [make_replica(n + i, model) for i in range(spares)]
        pool = ReplicaPool(reps, sps)
        for r in reps:
            pool.mark_ready(r)
        return pool

    def test_pick_prefers_least_loaded_then_lowest_id(self, model):
        pool = self.make_pool(model)
        assert pool.pick(0.0).rid == 0
        pool.replicas[0].batches_served = 2
        pool.replicas[1].batches_served = 1
        assert pool.pick(0.0).rid == 2  # 0 batches served
        pool.replicas[2].batches_served = 1
        assert pool.pick(0.0).rid == 1  # tie at 1 -> lowest id

    def test_busy_and_dead_excluded(self, model):
        pool = self.make_pool(model, n=2)
        pool.replicas[0].state = ReplicaState.BUSY
        assert pool.pick(0.0).rid == 1
        pool.crash(pool.replicas[1], now=0.0)
        assert pool.pick(0.0) is None
        assert pool.n_alive() == 1 and pool.n_serving() == 1

    def test_open_breaker_sidelines_until_cooldown(self, model):
        pool = self.make_pool(model, n=1)
        r = pool.replicas[0]
        for _ in range(r.breaker.threshold):
            r.breaker.record_failure(0.0)
        assert pool.pick(0.1) is None  # OPEN, inside cooldown
        probe = pool.pick(0.0 + r.breaker.reset_s + 1.0)
        assert probe is r  # HALF_OPEN probe admitted

    def test_crash_promotes_spare_in_order(self, model):
        pool = self.make_pool(model, n=2, spares=2)
        spare = pool.crash(pool.replicas[0], now=1.0)
        assert spare.rid == 2 and spare.state is ReplicaState.WARMING
        assert spare in pool.replicas and pool.n_spares_left() == 1
        assert pool.crashes == 1 and pool.promotions == 1

    def test_exhausted(self, model):
        pool = self.make_pool(model, n=1, spares=1)
        assert not pool.exhausted()
        s = pool.crash(pool.replicas[0], now=0.0)
        assert not pool.exhausted()
        pool.mark_ready(s)
        assert pool.crash(s, now=1.0) is None
        assert pool.exhausted()

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            ReplicaPool([])
