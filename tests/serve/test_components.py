"""Unit tests for the serving tier's building blocks."""

import pytest

from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.cache import ResultCache
from repro.serve.request import InferenceRequest, Outcome
from repro.serve.workload import WorkloadSpec, build_requests, payload_volume


def req(rid=0, arrival=0.0, deadline=1.0, payload="vol-0000"):
    return InferenceRequest(rid=rid, arrival_s=arrival, deadline_s=deadline, payload=payload)


class TestRequest:
    def test_validation(self):
        with pytest.raises(ValueError, match="deadline"):
            InferenceRequest(rid=0, arrival_s=1.0, deadline_s=0.5, payload="x")
        with pytest.raises(ValueError, match="n_samples"):
            InferenceRequest(rid=0, arrival_s=0.0, deadline_s=1.0, payload="x", n_samples=0)

    def test_resolve_is_first_wins(self):
        r = req()
        assert r.resolve(Outcome.COMPLETED, 0.5) is True
        # The hedge twin arriving later must not overwrite the result.
        assert r.resolve(Outcome.COMPLETED, 0.9) is False
        assert r.finish_s == 0.5 and r.latency_s == 0.5

    def test_deadline_accounting(self):
        r = req(deadline=1.0)
        r.resolve(Outcome.COMPLETED, 1.5)
        assert not r.met_deadline
        assert req(deadline=1.0).met_deadline is False  # pending -> not met

    def test_shed_request_has_no_latency(self):
        r = req()
        r.resolve(Outcome.SHED_DEADLINE)
        assert r.latency_s is None and r.resolved


class TestResultCache:
    def test_hit_miss_and_lru_eviction(self):
        c = ResultCache(capacity=2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1  # refreshes "a"
        c.put("c", 3)  # evicts "b", the LRU entry
        assert c.get("b") is None
        assert c.get("a") == 1 and c.get("c") == 3
        assert c.evictions == 1
        assert c.stats()["hits"] == 3 and c.stats()["misses"] == 1

    def test_zero_capacity_disables(self):
        c = ResultCache(capacity=0)
        c.put("a", 1)
        assert c.get("a") is None and len(c) == 0

    def test_refresh_does_not_duplicate(self):
        c = ResultCache(capacity=4)
        c.put("a", 1)
        c.put("a", 2)
        assert len(c) == 1 and c.get("a") == 2 and c.inserts == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)


class TestAdmission:
    def make(self, max_queue=4, max_batch=2, service=0.1, **kw):
        return AdmissionController(
            max_queue=max_queue, max_batch=max_batch, batch_service_s=service, **kw
        )

    def test_queue_full_sheds(self):
        adm = self.make(max_queue=2)
        for i in range(2):
            adm.push(req(rid=i))
        d = adm.decide(req(rid=9), 0.0, n_serving=1, n_warming=0, n_spares=0, in_flight=0)
        assert d is AdmissionDecision.SHED_QUEUE_FULL

    def test_infeasible_deadline_sheds(self):
        adm = self.make(max_queue=64, max_batch=1, service=1.0)
        for i in range(3):
            adm.push(req(rid=i))
        tight = InferenceRequest(rid=9, arrival_s=0.0, deadline_s=0.5, payload="x")
        d = adm.decide(tight, 0.0, n_serving=1, n_warming=0, n_spares=0, in_flight=0)
        assert d is AdmissionDecision.SHED_DEADLINE
        loose = InferenceRequest(rid=10, arrival_s=0.0, deadline_s=10.0, payload="x")
        assert (
            adm.decide(loose, 0.0, n_serving=1, n_warming=0, n_spares=0, in_flight=0)
            is AdmissionDecision.ADMIT
        )

    def test_dead_pool_sheds_unavailable(self):
        adm = self.make()
        d = adm.decide(req(), 0.0, n_serving=0, n_warming=0, n_spares=0, in_flight=0)
        assert d is AdmissionDecision.SHED_UNAVAILABLE
        # A warming spare keeps the door open.
        d = adm.decide(req(), 0.0, n_serving=0, n_warming=1, n_spares=0, in_flight=0)
        assert d is not AdmissionDecision.SHED_UNAVAILABLE

    def test_more_replicas_admit_more(self):
        adm = self.make(max_queue=64, max_batch=1, service=1.0)
        for i in range(4):
            adm.push(req(rid=i))
        r = InferenceRequest(rid=9, arrival_s=0.0, deadline_s=2.5, payload="x")
        assert (
            adm.decide(r, 0.0, n_serving=1, n_warming=0, n_spares=0, in_flight=0)
            is AdmissionDecision.SHED_DEADLINE
        )
        assert (
            adm.decide(r, 0.0, n_serving=4, n_warming=0, n_spares=0, in_flight=0)
            is AdmissionDecision.ADMIT
        )

    def test_redrain_goes_to_front_in_order(self):
        adm = self.make(max_queue=8, max_batch=4)
        adm.push(req(rid=5))
        n = adm.redrain([req(rid=1), req(rid=2)])
        assert n == 2
        assert [r.rid for r in adm.queue] == [1, 2, 5]
        assert all(r.redrains == 1 for r in list(adm.queue)[:2])

    def test_batch_ready_and_take(self):
        adm = self.make(max_queue=8, max_batch=2)
        adm.push(req(rid=0, arrival=0.0))
        assert not adm.batch_ready(now=0.001, max_wait_s=0.01)  # young, underfull
        assert adm.batch_ready(now=0.02, max_wait_s=0.01)  # aged out
        adm.push(req(rid=1, arrival=0.0))
        adm.push(req(rid=2, arrival=0.0))
        assert adm.batch_ready(now=0.001, max_wait_s=0.01)  # full batch
        assert [r.rid for r in adm.take_batch()] == [0, 1]
        assert [r.rid for r in adm.take_batch()] == [2]

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(max_queue=0)
        with pytest.raises(ValueError):
            self.make(service=0.0)


class TestWorkload:
    def test_deterministic_and_sorted(self):
        spec = WorkloadSpec(n_requests=50, rate_qps=200.0, n_unique=8)
        a = build_requests(spec, seed=4)
        b = build_requests(spec, seed=4)
        assert [(r.arrival_s, r.payload) for r in a] == [
            (r.arrival_s, r.payload) for r in b
        ]
        assert all(x.arrival_s <= y.arrival_s for x, y in zip(a, a[1:]))
        assert all(r.deadline_s == pytest.approx(r.arrival_s + 0.25) for r in a)
        c = build_requests(spec, seed=5)
        assert [r.arrival_s for r in a] != [r.arrival_s for r in c]

    def test_payloads_bounded_by_n_unique(self):
        spec = WorkloadSpec(n_requests=100, rate_qps=100.0, n_unique=3)
        payloads = {r.payload for r in build_requests(spec, seed=0)}
        assert payloads <= {"vol-0000", "vol-0001", "vol-0002"}

    def test_payload_volume_deterministic(self):
        import numpy as np

        a = payload_volume("vol-0001", 16, seed=2)
        b = payload_volume("vol-0001", 16, seed=2)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (16, 16, 16) and a.dtype == np.float32
        assert not np.array_equal(a, payload_volume("vol-0002", 16, seed=2))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(n_requests=0)
        with pytest.raises(ValueError):
            WorkloadSpec(rate_qps=0.0)
