"""A10 — real-process execution: multi-core speedup and merged artifacts.

The threaded backend shares one GIL, so its ranks' compute serializes
no matter how many cores the node has; the process backend runs each
rank as a real OS process and should scale compute with cores while
producing bitwise-identical results.  This benchmark measures both
claims on a compute-bound configuration: wall-clock per backend, the
speedup ratio, bitwise parity of the loss curves, and that the
per-rank observability artifacts (trace events, metrics registry)
merge losslessly into the parent.

The speedup assertion only fires on multi-core hosts — on a single
core the process backend's spawn and shared-memory polling overhead
makes it honestly *slower*, and the table records that number rather
than hiding it.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import save_report
from repro.core.distributed import DistributedConfig, DistributedTrainer
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData
from repro.obs import MetricsRegistry, Tracer

N_RANKS = 2
EPOCHS = 2
N_SAMPLES = 16
STEPS_PER_EPOCH = N_SAMPLES // N_RANKS
OPT = OptimizerConfig(eta0=5e-3, decay_steps=50)


def make_data(n=N_SAMPLES, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, 16, 16, 16)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


def run(mode):
    tracer = Tracer()
    metrics = MetricsRegistry()
    trainer = DistributedTrainer(
        tiny_16(), make_data(),
        config=DistributedConfig(
            n_ranks=N_RANKS, epochs=EPOCHS, mode=mode, validate=False
        ),
        optimizer_config=OPT,
        tracer=tracer, metrics=metrics,
    )
    t0 = time.perf_counter()
    history = trainer.run()
    wall_s = time.perf_counter() - t0
    return {
        "history": history,
        "params": trainer.final_model.get_flat_parameters(),
        "stats": trainer.group_stats,
        "tracer": tracer,
        "metrics": metrics,
        "wall_s": wall_s,
    }


def test_a10_process_backend_speedup(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SHM_REGISTRY", str(tmp_path))
    threaded = run("threaded")
    process = run("process")

    # Bitwise parity is a precondition for the speedup being meaningful:
    # a faster backend computing different numbers is just a bug.
    assert threaded["history"].train_loss == process["history"].train_loss
    assert np.array_equal(threaded["params"], process["params"])
    assert process["stats"]["max_param_divergence"] == 0.0

    # Per-rank artifacts merged losslessly into the parent registry.
    expected_rank_steps = N_RANKS * STEPS_PER_EPOCH * EPOCHS
    for side in (threaded, process):
        assert side["metrics"].value("engine.rank_steps") == expected_rank_steps
    proc_tracks = {e.track for e in process["tracer"].ordered()}
    assert set(range(N_RANKS)) <= proc_tracks

    cores = os.cpu_count() or 1
    speedup = threaded["wall_s"] / process["wall_s"]
    lines = [
        "A10  real-process execution backend (vs threaded, same seed)",
        f"     config: {N_RANKS} ranks x {EPOCHS} epochs x "
        f"{STEPS_PER_EPOCH} steps, tiny_16, {cores} core(s)",
        "",
        f"{'backend':>10}{'wall s':>10}{'samples/s':>12}{'reductions':>12}",
    ]
    for name, side in (("threaded", threaded), ("process", process)):
        samples = N_SAMPLES * EPOCHS
        lines.append(
            f"{name:>10}{side['wall_s']:>10.2f}"
            f"{samples / side['wall_s']:>12.1f}"
            f"{side['stats']['reductions']:>12}"
        )
    lines += [
        "",
        f"speedup (threaded wall / process wall): {speedup:.2f}x",
        f"parity: train_loss bitwise equal, param divergence "
        f"{process['stats']['max_param_divergence']:.1e}",
        f"merged artifacts: {len(process['tracer'].ordered())} trace events "
        f"across tracks {sorted(t for t in proc_tracks if isinstance(t, int))}, "
        f"rank_steps={expected_rank_steps}",
    ]
    if cores == 1:
        lines.append(
            "single-core host: spawn + shm-poll overhead dominates; "
            "speedup assertion skipped (needs >1 core)"
        )
    save_report("a10_process_backend", "\n".join(lines))

    # The GIL claim, asserted only where it is testable: real processes
    # must beat threads on a multi-core host for compute-bound ranks.
    if cores > 1:
        assert speedup > 1.1, (
            f"process backend should beat threads on {cores} cores, "
            f"got {speedup:.2f}x"
        )
