"""E5 — the full-scale run (Section V-D).

"Our biggest run uses 8192 KNL nodes of Cori, completing a total of 130
training epochs.  At this scale, every process sees 20 samples per
training epoch. ... an average epoch time of 3.35 seconds with a
standard deviation of ±0.32 seconds ... roughly 9 minutes total with 8
minutes of training time.  We achieve an average sustained performance
of slightly over 3.5 Pflop/s single precision ... with a parallel
efficiency of 77% relative to a single node (6324X speedup)."
"""

import pytest

from benchmarks.conftest import save_report
from repro.perfmodel import FullScaleRun, cori_datawarp_machine


#: Typical HPC node MTBF (~5 years); at 8192 nodes the system MTBF is
#: ~5.3 hours, which is what makes fault tolerance a requirement at
#: the paper's scale.
NODE_MTBF_HOURS = 43_800.0

#: Time to get a failed node back into the group: reboot / warm-spare
#: swap-in plus the resync at the next generation boundary.
NODE_MTTR_HOURS = 0.5


def test_full_scale_run(benchmark):
    run = benchmark.pedantic(
        lambda: FullScaleRun(
            cori_datawarp_machine(
                node_mtbf_hours=NODE_MTBF_HOURS, node_mttr_hours=NODE_MTTR_HOURS
            ),
            seed=1,
        ).run(),
        rounds=3,
        iterations=1,
    )
    system_mtbf_h = run.model.system_mtbf_hours(run.n_nodes)
    availability = run.model.node_availability()
    lines = [
        "E5: full-scale run reenactment (8192 nodes x 130 epochs, burst buffer)",
        f"{'quantity':<28}{'ours':>12}{'paper':>14}",
        f"{'mean epoch time (s)':<28}{run.mean_epoch_s:>12.2f}{'3.35':>14}",
        f"{'epoch std (s)':<28}{run.std_epoch_s:>12.2f}{'0.32':>14}",
        f"{'training time (min)':<28}{run.training_time_s / 60:>12.1f}{'~8':>14}",
        f"{'sustained (Pflop/s)':<28}{run.sustained_pflops:>12.2f}{'~3.5':>14}",
        f"{'parallel efficiency':<28}{run.parallel_efficiency:>12.2f}{'0.77':>14}",
        f"{'speedup vs 1 node':<28}{run.model.speedup(8192):>12.0f}{'6324':>14}",
        "",
        f"reliability (node MTBF {NODE_MTBF_HOURS:.0f} h = ~5 y, "
        f"MTTR {NODE_MTTR_HOURS:g} h):",
        f"{'system MTBF (h)':<28}{system_mtbf_h:>12.2f}{'-':>14}",
        f"{'expected restarts/run':<28}{run.expected_restarts:>12.4f}{'-':>14}",
        f"{'expected failures/day':<28}{run.expected_restarts * 86400 / run.training_time_s:>12.2f}{'-':>14}",
        f"{'node availability':<28}{availability:>12.6f}{'-':>14}",
        # Long-run comparison (a 3-day production span): with grow-back
        # the active fraction holds at the availability ceiling; shrink-
        # only decays as exp(-t/MTBF) and never recovers.
        f"{'3-day active frac, rejoin':<28}"
        f"{run.model.expected_active_fraction(run.n_nodes, 3 * 86400.0):>12.6f}{'-':>14}",
        f"{'3-day frac, shrink-only':<28}"
        f"{run.model.expected_active_fraction(run.n_nodes, 3 * 86400.0, rejoin=False):>12.6f}{'-':>14}",
        "",
        "note: the paper's own numbers imply 8192 x 69.33 Gflop / 0.168 s = "
        "3.38 Pflop/s; 'slightly over 3.5' uses the step-time-only 80% "
        "efficiency figure.",
    ]
    save_report("e5_full_scale", "\n".join(lines))

    assert run.mean_epoch_s == pytest.approx(3.35, rel=0.08)
    assert 0.1 < run.std_epoch_s < 0.6
    assert run.training_time_s / 60 == pytest.approx(8.0, rel=0.2)
    assert run.sustained_pflops == pytest.approx(3.4, abs=0.2)
    assert run.parallel_efficiency == pytest.approx(0.77, abs=0.03)
    # Grow-back keeps the long-run active fraction at the availability
    # ceiling; over a multi-day production span shrink-only decays well
    # below it (for this ~9-minute run both round to ~1).
    assert run.active_fraction_with_rejoin == pytest.approx(availability)
    day = run.model.expected_active_fraction(run.n_nodes, 86400.0 * 3, rejoin=False)
    assert day < availability
