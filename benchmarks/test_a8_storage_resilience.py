"""A8 — storage-resilience sweep: training through a faulty staging tier.

Section IV-C stages the 1.4 TB dataset onto DataWarp before training;
Section VI-A shows the I/O tier is what limits scale.  At 8192 nodes
that tier fails routinely — aborted stage-ins, slow burst-buffer
targets, evicted allocations — so this benchmark measures what
``repro.io.staging`` buys: seeded :class:`~repro.faults.FaultPlan`
schedules inject ``STAGE_FAIL`` / ``TARGET_SLOW`` / ``BB_EVICT`` (plus
on-disk record corruption) at increasing rates into a real record-file
training run, and the table reports epoch time, skipped records, and
the staging tier's recovery actions (hedges, breaker trips, fallbacks)
versus the fault-free baseline.

The fault-free staging run must match the direct-read run **bitwise**
(same final loss to the last ulp): a healthy staging tier is invisible.
Every faulted run must complete with bounded skips — storage faults
degrade training, they do not crash it.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.core.model import CosmoFlowModel
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import Trainer, TrainerConfig
from repro.faults import FaultInjector, FaultPlan
from repro.io.dataset import RecordDataset, write_dataset
from repro.io.pipeline import PrefetchPipeline
from repro.io.staging import StagingConfig, StagingManager

N_SAMPLES = 24
SAMPLES_PER_FILE = 4
N_FILES = N_SAMPLES // SAMPLES_PER_FILE
EPOCHS = 2
OPT = OptimizerConfig(eta0=5e-3, decay_steps=N_SAMPLES * EPOCHS)


@pytest.fixture(scope="module")
def record_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("a8-data")
    rng = np.random.default_rng(0)
    vols = rng.standard_normal((N_SAMPLES, 1, 16, 16, 16)).astype(np.float32)
    tgts = rng.uniform(0.2, 0.8, size=(N_SAMPLES, 3)).astype(np.float32)
    return write_dataset(root, vols, tgts, samples_per_file=SAMPLES_PER_FILE)


def train_through(dataset, seed=0):
    """Train tiny_16 for EPOCHS over ``dataset`` via the prefetch
    pipeline (1 I/O thread: decision order, and therefore the run, is
    fully deterministic)."""
    pipe = PrefetchPipeline(dataset, n_io_threads=1, buffer_size=4)
    model = CosmoFlowModel(tiny_16(), seed=seed)
    trainer = Trainer(
        model,
        pipe,
        optimizer_config=OPT,
        config=TrainerConfig(epochs=EPOCHS, seed=seed + 1, validate=False),
    )
    t0 = time.perf_counter()
    hist = trainer.run()
    return hist, time.perf_counter() - t0, pipe.stats


def run_at_rate(
    record_files, tmp_path, name, stage_fail, target_slow, bb_evict, corrupt=0
):
    reads = N_FILES * (EPOCHS + 2)  # epoch reads + re-stage headroom
    plan = FaultPlan.sample(
        11,
        1,
        0,
        stage_fail_rate=stage_fail,
        n_stage_ops=2 * reads,
        target_slow_rate=target_slow,
        target_slow_s=0.2,
        bb_evict_rate=bb_evict,
        n_staged_reads=reads,
    )
    if corrupt:
        # Bit-rot `corrupt` records of the first shard on disk (in a
        # private copy) so the skipped-record axis is exercised too.
        import shutil

        from repro.faults.plan import FaultEvent, FaultKind

        src_dir = tmp_path / f"src-{name}"
        src_dir.mkdir()
        record_files = [
            Path(shutil.copy2(p, src_dir / p.name)) for p in record_files
        ]
        rot = FaultInjector(
            FaultPlan(
                seed=11,
                events=tuple(
                    FaultEvent(FaultKind.RECORD_CORRUPT, step=i) for i in range(corrupt)
                ),
            )
        )
        assert rot.corrupt_record_file(record_files[0]) == corrupt
    injector = FaultInjector(plan)
    manager = StagingManager(
        tmp_path / f"bb-{name}",
        config=StagingConfig(
            hedge_budget_s=0.05, breaker_threshold=2, breaker_reset_s=0.5
        ),
        seed=5,
        injector=injector,
    )
    manager.stage_all(record_files)
    dataset = RecordDataset(record_files, strict=False, staging=manager)
    hist, elapsed, stats = train_through(dataset)
    s = manager.stats
    return {
        "plan": plan,
        "loss": hist.train_loss[-1],
        "time": elapsed,
        "skipped": stats.records_skipped,
        "hedges": s.hedged_reads,
        "hedge_wins": s.hedge_wins,
        "trips": s.breaker_trips,
        "fallbacks": s.fallback_reads,
        "retries": s.stage_retries,
        "evictions": s.evictions,
        "restages": s.restages,
    }


def test_storage_fault_sweep(benchmark, record_files, tmp_path):
    # Baseline: no staging tier at all (direct backing-store reads).
    direct_hist, _, _ = train_through(RecordDataset(record_files))

    # (stage_fail, target_slow, bb_evict, corrupt records) to sweep.
    rates = [
        ("none", 0.00, 0.00, 0.00, 0),
        ("low", 0.10, 0.10, 0.02, 0),
        ("mid", 0.25, 0.25, 0.05, 1),
        ("high", 0.40, 0.40, 0.10, 2),
    ]
    results = {}
    for name, *rate in rates:
        results[name] = run_at_rate(record_files, tmp_path, name, *rate)
    benchmark.pedantic(
        lambda: run_at_rate(record_files, tmp_path, "bench", 0.10, 0.10, 0.02),
        rounds=1,
        iterations=1,
    )

    base = results["none"]
    lines = [
        "A8: training through a faulty burst-buffer staging tier "
        f"({N_FILES} shards x {EPOCHS} epochs, tiny_16, hedge budget 50 ms, "
        "breaker threshold 2)",
        f"{'rates s/t/e':>14}{'events':>8}{'loss':>9}{'time s':>8}{'skip':>6}"
        f"{'hedge':>7}{'won':>5}{'trip':>6}{'fall':>6}{'retry':>7}{'evict':>7}"
        f"{'restage':>9}",
    ]
    for (name, sf, ts, be, _), r in zip(rates, results.values()):
        lines.append(
            f"{sf:>5.2f}/{ts:>4.2f}/{be:>4.2f}{len(r['plan']):>7}"
            f"{r['loss']:>9.4f}{r['time']:>8.2f}{r['skipped']:>6}"
            f"{r['hedges']:>7}{r['hedge_wins']:>5}{r['trips']:>6}"
            f"{r['fallbacks']:>6}{r['retries']:>7}{r['evictions']:>7}"
            f"{r['restages']:>9}"
        )
    lines += [
        "",
        "s/t/e = STAGE_FAIL / TARGET_SLOW / BB_EVICT rates; hedge=reads "
        "duplicated against the backing store past the latency budget "
        "(won=the hedge was faster); trip=circuit-breaker trips; "
        "fall=degraded direct backing-store reads; restage=quarantined "
        "copies re-staged.  All schedules seeded; the fault-free row is "
        "bitwise identical to direct reads.",
    ]
    save_report("a8_storage_resilience", "\n".join(lines))

    # A healthy staging tier is invisible: bitwise-identical training.
    assert results["none"]["loss"] == direct_hist.train_loss[-1]
    assert results["none"]["skipped"] == 0 and results["none"]["fallbacks"] == 0
    # Graceful degradation: every faulted run completes with bounded
    # skips (nothing silently lost beyond what the injector corrupted)
    # and visible recovery work.
    for (name, _, _, _, corrupt), r in zip(rates, results.values()):
        assert r["skipped"] <= corrupt * (EPOCHS + 1), f"{name}: unbounded record loss"
        assert np.isfinite(r["loss"])
        if corrupt:
            assert r["skipped"] >= corrupt, f"{name}: corruption went uncounted"
    # Skipping a few corrupt records reshuffles batches, so the loss
    # legitimately drifts — it must stay the same order of magnitude,
    # not collapse or blow up.
    assert results["high"]["loss"] < 10 * base["loss"]


def test_staging_decisions_deterministic(record_files, tmp_path):
    """Identical seed + plan ⇒ identical decision log, stats, and loss."""

    def once(tag):
        plan = FaultPlan.sample(
            13, 1, 0,
            stage_fail_rate=0.2, n_stage_ops=40,
            target_slow_rate=0.2, target_slow_s=0.2,
            bb_evict_rate=0.05, n_staged_reads=40,
        )
        manager = StagingManager(
            tmp_path / f"det-{tag}",
            config=StagingConfig(
                hedge_budget_s=0.05, breaker_threshold=2, breaker_reset_s=0.5
            ),
            seed=5,
            injector=FaultInjector(plan),
        )
        manager.stage_all(record_files)
        dataset = RecordDataset(record_files, strict=False, staging=manager)
        hist, _, _ = train_through(dataset)
        return manager.events, manager.stats.as_dict(), hist.train_loss

    events_a, stats_a, loss_a = once("a")
    events_b, stats_b, loss_b = once("b")
    assert events_a == events_b
    assert stats_a == stats_b
    assert loss_a == loss_b
