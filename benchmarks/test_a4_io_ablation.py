"""A4 ablation — filesystem and striping design choices.

Sweeps the knobs the paper's I/O discussion turns on:

* stripe width (how many OSTs the dataset is spread over) — the paper
  stripes over 64 of 248 Lustre OSTs and 125 DataWarp nodes;
* delivered-bandwidth efficiency (the shared-system derating the paper
  blames for Lustre's shortfall);

and locates the node count where each configuration stops hiding I/O —
the scaling knee of Figure 4.
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import save_report
from repro.io.filesystem import cori_lustre
from repro.perfmodel import cori_lustre_machine


def knee_nodes(machine, threshold=0.9, counts=(64, 128, 256, 512, 1024, 2048, 4096, 8192)):
    """First node count where parallel efficiency falls below threshold
    x the no-I/O efficiency."""
    reference = replace(machine, filesystem=None)
    for n in counts:
        if machine.efficiency(n) < threshold * reference.efficiency(n):
            return n
    return None


def test_striping_sweep(benchmark):
    base_fs = cori_lustre()
    rows = []
    for stripes in (16, 32, 64, 128, 248):
        fs = replace(base_fs, stripe_targets=stripes)
        machine = cori_lustre_machine(filesystem=fs, straggler_exposure=0.0)
        rows.append(
            (
                stripes,
                fs.usable_bandwidth_GBps,
                machine.efficiency(1024),
                machine.efficiency(8192),
                knee_nodes(machine),
            )
        )
    benchmark.pedantic(
        lambda: knee_nodes(cori_lustre_machine(straggler_exposure=0.0)),
        rounds=3,
        iterations=1,
    )

    lines = [
        "A4 ablation: Lustre stripe width (paper uses 64 OSTs)",
        f"{'stripe OSTs':>12}{'usable GB/s':>13}{'eff @1024':>11}{'eff @8192':>11}"
        f"{'I/O knee (nodes)':>18}",
    ]
    for stripes, usable, e1024, e8192, knee in rows:
        lines.append(
            f"{stripes:>12}{usable:>13.1f}{e1024 * 100:>10.0f}%{e8192 * 100:>10.0f}%"
            f"{str(knee):>18}"
        )
    lines.append(
        "\nwider striping raises the aggregate ceiling (helps at scale) but the "
        "per-client contention term still knees every Lustre configuration; "
        "the paper's fix was moving to the burst buffer, not wider stripes."
    )
    save_report("a4_striping", "\n".join(lines))

    eff_8192 = [r[3] for r in rows]
    assert eff_8192 == sorted(eff_8192), "wider stripes must not hurt at scale"
    assert all(r[4] is not None for r in rows), "every Lustre config knees somewhere"


def test_efficiency_derating_sweep(benchmark):
    """How much of the Lustre shortfall is the shared-system derating."""
    rows = []
    for eff in (0.1, 0.21, 0.5, 1.0):
        fs = replace(cori_lustre(), efficiency=eff)
        machine = cori_lustre_machine(filesystem=fs, straggler_exposure=0.0)
        rows.append((eff, machine.efficiency(1024), machine.efficiency(4096)))
    benchmark.pedantic(
        lambda: cori_lustre_machine(straggler_exposure=0.0).efficiency(4096),
        rounds=5,
        iterations=1,
    )
    lines = [
        "A4b: deliverable-bandwidth derating (calibrated value: 0.21)",
        f"{'derating':>10}{'eff @1024':>12}{'eff @4096':>12}",
    ]
    for eff, e1, e4 in rows:
        lines.append(f"{eff:>10.2f}{e1 * 100:>11.0f}%{e4 * 100:>11.0f}%")
    lines.append(
        "\neven nominal hardware (derating 1.0) knees eventually: the per-client "
        "1 MB-stripe contention term is the binding constraint at mid scale."
    )
    save_report("a4_derating", "\n".join(lines))
    scale_eff = [r[2] for r in rows]
    assert scale_eff == sorted(scale_eff)
