"""E3 — the I/O bandwidth analysis (Section VI-A, Equation 1).

Reproduces the paper's worked numbers:

* Equation 1: ``BW_min = b x S / t`` = 62 MB/s/node (b=1, S=8 MB,
  t=129 ms);
* "each OST should be capable of 2.8 GB/s and be able to feed 46
  compute nodes";
* the 128-node step times: 150 ms on DataWarp vs 179 ms on Lustre
  (16% better absolute performance on DataWarp);

and measures the same mechanism for real on the prefetch pipeline:
with storage slower than compute, the consumer stalls by exactly the
bandwidth shortfall.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.io.filesystem import (
    cori_datawarp,
    cori_lustre,
    required_bandwidth_per_node,
)
from repro.io.pipeline import PrefetchPipeline
from repro.perfmodel import cori_datawarp_machine, cori_lustre_machine


def test_equation1_analysis(benchmark):
    bw_min = benchmark.pedantic(
        required_bandwidth_per_node, args=(1, 8.0, 0.129), rounds=10, iterations=1
    )
    lustre, bb = cori_lustre(), cori_datawarp()
    m_bb = cori_datawarp_machine(straggler_exposure=0.0)
    m_lu = cori_lustre_machine(straggler_exposure=0.0)

    lines = [
        "E3: I/O bandwidth analysis (Equation 1)",
        f"{'quantity':<46}{'ours':>10}{'paper':>10}",
        f"{'BW_min (MB/s/node), b=1, S=8MB, t=129ms':<46}{bw_min:>10.1f}{'62':>10}",
        f"{'nodes one nominal 2.8 GB/s OST can feed':<46}"
        f"{lustre.nodes_fed_per_target(bw_min):>10.1f}{'46':>10}",
        f"{'step at 128 nodes, DataWarp (ms)':<46}"
        f"{m_bb.step_time_s(128) * 1e3:>10.1f}{'150':>10}",
        f"{'step at 128 nodes, Lustre (ms)':<46}"
        f"{m_lu.step_time_s(128) * 1e3:>10.1f}{'179':>10}",
        f"{'DataWarp advantage at 128 nodes':<46}"
        f"{(m_lu.step_time_s(128) / m_bb.step_time_s(128) - 1) * 100:>9.1f}%{'16%':>10}",
        f"{'implied per-OST delivery at 128 nodes (MB/s)':<46}"
        f"{lustre.per_node_bandwidth_MBps(128) * 128 / 64:>10.1f}{'90':>10}",
    ]
    save_report("e3_io_bandwidth", "\n".join(lines))

    assert bw_min == pytest.approx(62.0, rel=0.01)
    assert lustre.nodes_fed_per_target(bw_min) == pytest.approx(46, rel=0.02)
    assert m_lu.step_time_s(128) * 1e3 == pytest.approx(179, rel=0.03)
    assert lustre.per_node_bandwidth_MBps(128) * 128 / 64 == pytest.approx(90, rel=0.03)


class _SlowSource:
    """A dataset whose reads take a prescribed time per sample."""

    def __init__(self, n, read_time_s):
        self.n = n
        self.read_time_s = read_time_s

    def __len__(self):
        return self.n

    def batches(self, batch_size=1, rng=None, shuffle=True):
        import time

        x = np.zeros((batch_size, 1, 4, 4, 4), dtype=np.float32)
        y = np.zeros((batch_size, 3), dtype=np.float32)
        for _ in range(self.n // batch_size):
            time.sleep(self.read_time_s * batch_size)
            yield x, y


def test_pipeline_stall_mechanism(benchmark):
    """The QueueRunner mechanism: I/O is hidden while storage outpaces
    compute, and stalls the step by the shortfall otherwise."""
    import time

    compute_s = 0.004
    n = 40

    def run_epoch(read_time_s, threads):
        pipe = PrefetchPipeline(
            _SlowSource(n, read_time_s), n_io_threads=threads, buffer_size=8
        )
        t0 = time.perf_counter()
        for _ in pipe.batches(1):
            time.sleep(compute_s)  # gradient computation stand-in
        return time.perf_counter() - t0, pipe.stats

    fast_total, fast_stats = run_epoch(0.001, threads=4)  # storage 4x faster than needed
    slow_total, slow_stats = run_epoch(0.012, threads=1)  # storage 3x slower
    benchmark.pedantic(run_epoch, args=(0.001, 4), rounds=1, iterations=1)

    lines = [
        "E3b: prefetch-pipeline stall mechanism (measured)",
        f"fast storage: epoch {fast_total:.2f}s, consumer waited "
        f"{fast_stats.consumer_wait_s:.3f}s (I/O hidden)",
        f"slow storage: epoch {slow_total:.2f}s, consumer waited "
        f"{slow_stats.consumer_wait_s:.3f}s (I/O exposed — the Lustre regime)",
    ]
    save_report("e3_pipeline_stall", "\n".join(lines))

    compute_total = n * compute_s
    assert fast_total < 2.0 * compute_total  # hidden
    assert slow_total > 2.0 * compute_total  # exposed
    assert slow_stats.consumer_wait_s > 5 * fast_stats.consumer_wait_s
