"""Figure 4 — scaling of fully synchronous training.

Left plot: Cori with training data on the DataWarp burst buffer,
1 -> 8192 nodes, 77% parallel efficiency at 8192.  Right plot (zoomed):
the same run with data on Lustre (knee past 512 nodes, <58% at 1024)
and Piz Daint on its Lustre (44% at 512), plus the dummy-data
diagnostic that isolates I/O as the cause.

Regenerated with the calibrated cluster model; a real threaded-rank
measurement at small scale accompanies it.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.perfmodel import (
    cori_datawarp_machine,
    cori_lustre_machine,
    pizdaint_lustre_machine,
)

NODES = [1, 64, 128, 256, 512, 1024, 2048, 4096, 8192]

#: Figure 4 anchor points the paper states numerically.
PAPER_ANCHORS = {
    "bb_8192_eff": 0.77,
    "bb_8192_speedup": 6324,
    "lustre_1024_eff": 0.58,
    "pizdaint_512_eff": 0.44,
}


@pytest.fixture(scope="module")
def machines():
    kw = dict(straggler_exposure=0.0)  # deterministic mean curves
    return {
        "cori_bb": cori_datawarp_machine(**kw),
        "cori_lustre": cori_lustre_machine(**kw),
        "pizdaint_lustre": pizdaint_lustre_machine(**kw),
        "cori_lustre_dummy": cori_lustre_machine(filesystem=None, **kw),
    }


def test_figure4_scaling(machines, benchmark):
    sweeps = benchmark.pedantic(
        lambda: {name: m.sweep(NODES) for name, m in machines.items()},
        rounds=3,
        iterations=1,
    )

    lines = [
        "Figure 4 reproduction: scaling of fully synchronous training",
        f"{'nodes':>6}{'BB speedup':>12}{'BB eff':>8}{'Lustre eff':>12}"
        f"{'PizDaint eff':>14}{'dummy-data eff':>16}",
    ]
    for i, n in enumerate(NODES):
        lines.append(
            f"{n:>6}{sweeps['cori_bb'][i].speedup:>11.0f}x"
            f"{sweeps['cori_bb'][i].efficiency * 100:>7.0f}%"
            f"{sweeps['cori_lustre'][i].efficiency * 100:>11.0f}%"
            f"{sweeps['pizdaint_lustre'][i].efficiency * 100:>13.0f}%"
            f"{sweeps['cori_lustre_dummy'][i].efficiency * 100:>15.0f}%"
        )
    lines += [
        "",
        f"paper anchors: BB 77% / 6324x at 8192; Cori Lustre <58% at 1024; "
        f"Piz Daint Lustre 44% at 512; dummy data removes the Lustre drop",
    ]
    save_report("f4_scaling", "\n".join(lines))

    bb = {p.n_nodes: p for p in sweeps["cori_bb"]}
    lu = {p.n_nodes: p for p in sweeps["cori_lustre"]}
    pd = {p.n_nodes: p for p in sweeps["pizdaint_lustre"]}
    dummy = {p.n_nodes: p for p in sweeps["cori_lustre_dummy"]}

    assert bb[8192].efficiency == pytest.approx(PAPER_ANCHORS["bb_8192_eff"], abs=0.02)
    assert bb[8192].speedup == pytest.approx(PAPER_ANCHORS["bb_8192_speedup"], rel=0.03)
    assert lu[1024].efficiency == pytest.approx(PAPER_ANCHORS["lustre_1024_eff"], abs=0.02)
    assert pd[512].efficiency == pytest.approx(PAPER_ANCHORS["pizdaint_512_eff"], abs=0.03)
    # crossover structure: Lustre tracks BB at small scale, collapses later
    assert lu[128].efficiency < bb[128].efficiency
    assert lu[1024].efficiency < bb[1024].efficiency - 0.15
    # dummy data (no filesystem) restores scaling — the paper's diagnostic
    assert dummy[1024].efficiency > lu[1024].efficiency + 0.15


def test_real_thread_scaling(benchmark):
    """Measured SSGD over real rank threads (not the model)."""
    from repro.core.distributed import DistributedConfig, DistributedTrainer
    from repro.core.optimizer import OptimizerConfig
    from repro.core.topology import tiny_16
    from repro.core.trainer import InMemoryData
    import time

    rng = np.random.default_rng(0)
    x = rng.standard_normal((16, 1, 16, 16, 16)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(16, 3)).astype(np.float32)
    data = InMemoryData(x, y)

    def run(ranks):
        trainer = DistributedTrainer(
            tiny_16(),
            data,
            config=DistributedConfig(
                n_ranks=ranks, epochs=1, mode="threaded", validate=False, seed=0
            ),
            optimizer_config=OptimizerConfig(),
        )
        t0 = time.perf_counter()
        trainer.run()
        return trainer.steps_per_epoch * ranks / (time.perf_counter() - t0)

    throughput = {r: run(r) for r in (1, 2, 4)}
    benchmark.pedantic(run, args=(2,), rounds=1, iterations=1)
    lines = ["real threaded-rank SSGD throughput (this host):"]
    for r, tp in throughput.items():
        lines.append(f"  {r} ranks: {tp:6.1f} samples/s ({tp / throughput[1]:.2f}x)")
    save_report("f4_real_threads", "\n".join(lines))
    # Correctness at every rank count (throughput depends on host cores).
    assert all(tp > 0 for tp in throughput.values())
