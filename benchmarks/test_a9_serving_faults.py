"""A9 — serving under faults: throughput, failover, and overload.

The paper trains CosmoFlow at scale and stops; this benchmark measures
the other half of a production story — *serving* the trained model
through ``repro.serve`` while things go wrong.  Three claims, each
asserted against a seeded, bitwise-replayable discrete-event run:

* **Scaling** — N replicas sustain ~N× one replica's admitted load at
  bounded p99 with zero faults (the pool is work-conserving);
* **Failover** — a mid-load replica crash loses *zero* admitted
  requests (in-flight work redrains to the queue front, a warm spare
  takes the dead slot) and tail latency recovers by the end of the
  stream;
* **Overload** — at ~2× capacity, admission control sheds the excess
  in O(1) at arrival while the requests it admits still meet their
  deadlines.

Every run's decision log and report replay identically from the same
seed and fault plan — the property that makes these numbers evidence
rather than anecdotes.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.core.model import CosmoFlowModel
from repro.core.topology import tiny_16
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.perfmodel.node import NodeSpec
from repro.serve import (
    InferenceServer,
    Outcome,
    ServeConfig,
    WorkloadSpec,
    build_requests,
)

#: ~1 Gflop/s sustained puts a tiny_16 forward batch in the few-ms
#: range — realistic serving latencies at benchmark-friendly runtimes.
NODE = NodeSpec(name="a9", sustained_flops=1e9, peak_flops=1e12, jitter_sigma=0.02)
SEED = 29
N_REQUESTS = 300
#: All-unique payloads: the cache never short-circuits a dispatch, so
#: throughput numbers measure the pool, not the cache.
UNIQUE = 100_000


@pytest.fixture(scope="module")
def model():
    return CosmoFlowModel(tiny_16(), seed=0)


def make_config(n_replicas, n_spares=0, max_queue=32):
    return ServeConfig(
        n_replicas=n_replicas, n_spares=n_spares,
        max_batch=4, max_wait_s=0.004, max_queue=max_queue,
    )


def per_replica_qps(model, config):
    """One replica's nominal full-batch service rate."""
    server = InferenceServer(model, config, node=NODE, seed=0)
    replica = server.pool.replicas[0]
    return config.max_batch / replica.nominal_service_s(config.max_batch)


def run_serving(model, config, rate_qps, seed=SEED, plan=None, deadline_s=0.08):
    injector = FaultInjector(plan) if plan is not None else None
    server = InferenceServer(model, config, node=NODE, seed=seed, injector=injector)
    requests = build_requests(
        WorkloadSpec(
            n_requests=N_REQUESTS, rate_qps=rate_qps,
            deadline_slack_s=deadline_s, n_unique=UNIQUE,
        ),
        seed=seed,
    )
    report = server.run(requests)
    return server, report, requests


def tail_p99(requests, frac_from=2 / 3):
    """p99 latency of completions in the last third of the stream —
    the 'has the tail recovered' window after a mid-stream crash."""
    done = [r for r in requests if r.outcome is Outcome.COMPLETED]
    cut = done[int(len(done) * frac_from):]
    lats = sorted(r.latency_s for r in cut)
    return float(np.quantile(lats, 0.99)) if lats else 0.0


def test_serving_under_faults(benchmark, model):
    capacity_1 = per_replica_qps(model, make_config(1))
    results = []

    # (a) Scaling: offer each pool ~85% of its nominal capacity.
    scaling = {}
    for n in (1, 2, 4):
        rate = 0.85 * n * capacity_1
        _, rep, _ = run_serving(model, make_config(n), rate, deadline_s=0.15)
        scaling[n] = rep
        results.append((f"scale x{n}", n, rate, rep))

    # (b) Failover: 3 replicas + 1 warm spare, crash at mid-stream
    # dispatch, comfortable deadline so nothing sheds.
    crash_cfg = make_config(3, n_spares=1)
    crash_rate = 0.7 * 3 * capacity_1
    plan = FaultPlan(events=[FaultEvent(FaultKind.REPLICA_CRASH, step=25)])
    crash_srv, crash_rep, crash_reqs = run_serving(
        model, crash_cfg, crash_rate, plan=plan, deadline_s=0.5
    )
    _, clean_rep, clean_reqs = run_serving(
        model, crash_cfg, crash_rate, deadline_s=0.5
    )
    results.append(("failover", 3, crash_rate, crash_rep))

    # (c) Overload: ~2x what two replicas sustain, tight deadlines.
    over_cfg = make_config(2, max_queue=12)
    over_rate = 2.0 * 2 * capacity_1
    over_srv, over_rep, over_reqs = run_serving(
        model, over_cfg, over_rate, deadline_s=0.05
    )
    results.append(("overload 2x", 2, over_rate, over_rep))

    benchmark.pedantic(
        lambda: run_serving(model, make_config(2), 1.5 * capacity_1),
        rounds=1,
        iterations=1,
    )

    lines = [
        "A9: inference serving under faults "
        f"({N_REQUESTS} requests/run, tiny_16 on a {NODE.sustained_flops / 1e9:.0f} "
        "Gflop/s node, batch<=4, seeded Poisson arrivals)",
        f"{'scenario':>12}{'repl':>6}{'offered':>9}{'served':>8}{'shed':>6}"
        f"{'drop':>6}{'miss':>6}{'crash':>7}{'redrain':>9}{'p50 ms':>8}{'p99 ms':>8}",
    ]
    for name, n, rate, r in results:
        lines.append(
            f"{name:>12}{n:>6}{rate:>9.0f}{r.served:>8}{r.shed:>6}"
            f"{r.dropped:>6}{r.deadline_misses:>6}{r.crashes:>7}"
            f"{r.redrained:>9}{r.latency_p50_s * 1e3:>8.2f}"
            f"{r.latency_p99_s * 1e3:>8.2f}"
        )
    lines += [
        "",
        "offered=Poisson arrival rate (qps); served=completed+cache hits; "
        "shed=admission rejections (O(1), at arrival); miss=served past "
        "deadline; redrain=in-flight requests recovered off the crashed "
        "replica.  The failover run promotes 1 warm spare; every run "
        "replays bitwise from its seed.",
    ]
    save_report("a9_serving_faults", "\n".join(lines))

    # (a) A pool at 85% load serves everything at bounded p99...
    for n, rep in scaling.items():
        assert rep.dropped == 0, f"x{n}: dropped requests under nominal load"
        assert rep.served >= 0.95 * N_REQUESTS, f"x{n}: shed under nominal load"
        assert rep.latency_p99_s < 0.15, f"x{n}: unbounded tail"
    # ...so served throughput scales ~linearly with replicas: the x4
    # pool absorbs 4x the offered rate the x1 pool saw, without shed.
    assert scaling[4].served_qps > 3.0 * scaling[1].served_qps

    # (b) Zero loss across the crash: every admitted request resolves,
    # redrained work completes, and the tail recovers once the spare
    # is in rotation.
    assert crash_rep.crashes == 1 and crash_rep.promotions == 1
    assert crash_rep.dropped == 0
    assert crash_rep.redrained >= 1
    redrained = [r for r in crash_reqs if r.redrains > 0]
    assert redrained and all(r.outcome is Outcome.COMPLETED for r in redrained)
    assert crash_rep.served + crash_rep.shed == N_REQUESTS
    # Tail of the final third, once the spare has joined: within 2x of
    # the clean run's same-window tail (not degraded for good).
    assert tail_p99(crash_reqs) <= 2.0 * tail_p99(clean_reqs) + 0.01

    # (c) Overload sheds fast and keeps its promises to the admitted.
    assert over_rep.shed > 0.2 * N_REQUESTS
    assert over_rep.dropped == 0
    shed = [r for r in over_reqs if r.outcome in (
        Outcome.SHED_DEADLINE, Outcome.SHED_QUEUE_FULL, Outcome.SHED_UNAVAILABLE
    )]
    assert all(r.finish_s is None for r in shed)  # rejected at arrival
    assert over_rep.deadline_misses <= max(2, over_rep.completed // 20)


def test_serving_replays_bitwise(model):
    """Same seed + plan ⇒ identical decision log and report for all
    three A9 scenarios."""
    capacity_1 = per_replica_qps(model, make_config(1))
    scenarios = [
        (make_config(2), 0.85 * 2 * capacity_1, None, 0.15),
        (
            make_config(3, n_spares=1),
            0.7 * 3 * capacity_1,
            [FaultEvent(FaultKind.REPLICA_CRASH, step=25)],
            0.5,
        ),
        (make_config(2, max_queue=12), 4.0 * capacity_1, None, 0.05),
    ]
    for config, rate, events, deadline in scenarios:
        def once():
            plan = FaultPlan(events=list(events)) if events else None
            return run_serving(model, config, rate, plan=plan, deadline_s=deadline)

        srv_a, rep_a, _ = once()
        srv_b, rep_b, _ = once()
        assert srv_a.events == srv_b.events
        assert rep_a.as_dict() == rep_b.as_dict()
