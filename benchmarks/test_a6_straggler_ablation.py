"""A6 ablation — the straggler effect and the plugin's hiding of it.

Section II-C: synchronous scaling stalls because "a single slow node
can significantly reduce the aggregate performance"; Section III-D: the
CPE ML Plugin "reduces the 'straggler' effect in SSGD by using
non-blocking MPI communication to hide timing imbalances across
processes through the stages of the reduction"; Section VI-B: the
results "show the effectiveness of the CPE ML Plugin at hiding any
'straggler' effects."

The cluster model exposes that as a knob: ``straggler_exposure`` is the
fraction of the slowest-of-n compute tail NOT hidden by the staged
reduction (0 = the calibrated, plugin-protected baseline).  Sweeping it
quantifies what the plugin's design is worth at 8192 nodes.

Two companion views quantify the *other* mitigation (bounded-staleness
aggregation, :mod:`repro.comm.stale`): an analytic quorum sweep on the
same cluster model (waiting for the k-th of n jittered nodes instead of
the max), and measured sync-vs-ssgd rows from the virtual-time stale
group replaying one seeded 10x straggler schedule.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.comm.stale import StaleGroup, StalenessConfig
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.perfmodel import cori_datawarp_machine


def test_straggler_exposure_sweep(benchmark):
    exposures = [0.0, 0.25, 0.5, 1.0]
    machines = {e: cori_datawarp_machine(straggler_exposure=e) for e in exposures}
    benchmark.pedantic(
        lambda: machines[1.0].efficiency(8192), rounds=5, iterations=1
    )

    lines = [
        "A6 ablation: straggler exposure at scale (Cori burst buffer)",
        f"{'exposure':>10}{'step @8192 (ms)':>17}{'eff @8192':>11}{'eff @1024':>11}",
    ]
    for e, m in machines.items():
        lines.append(
            f"{e:>10.2f}{m.step_time_s(8192) * 1e3:>17.1f}"
            f"{m.efficiency(8192) * 100:>10.0f}%{m.efficiency(1024) * 100:>10.0f}%"
        )
    lines += [
        "",
        "exposure 0 is the calibrated baseline (the measured 168 ms step at "
        "8192 already reflects the plugin's hiding); exposure 1 is a fully "
        "blocking reduction that waits for the slowest of 8192 jittered "
        "nodes every step — the failure mode the plugin's staged, "
        "non-blocking design exists to avoid.",
    ]
    save_report("a6_straggler", "\n".join(lines))

    effs = [machines[e].efficiency(8192) for e in exposures]
    # More exposure -> strictly worse efficiency at scale.
    assert all(a > b for a, b in zip(effs, effs[1:]))
    # An unprotected reduction costs double-digit efficiency points.
    assert effs[0] - effs[-1] > 0.05
    # The single-node baseline is unaffected (no peers to straggle behind).
    assert machines[1.0].step_time_s(1) == pytest.approx(
        machines[0.0].step_time_s(1), rel=1e-9
    )


def test_quorum_aggregation_analytic(benchmark):
    """Analytic counterpart of the ssgd backend: step time when the
    collective closes on the quorum-th fastest node instead of the
    slowest of n (order-statistic tail on the same jitter model)."""
    m = cori_datawarp_machine(straggler_exposure=1.0)
    fractions = [1.0, 0.9, 0.75, 0.5]
    benchmark.pedantic(
        lambda: m.stale_step_time_s(8192, 0.5), rounds=5, iterations=1
    )

    lines = [
        "A6 companion: analytic quorum aggregation (exposure 1.0)",
        f"{'quorum':>8}{'step @8192 (ms)':>17}{'vs sync':>9}",
    ]
    sync = m.step_time_s(8192)
    for q in fractions:
        t = m.stale_step_time_s(8192, q)
        lines.append(f"{q:>8.2f}{t * 1e3:>17.1f}{sync / t:>8.2f}x")
    save_report("a6_quorum_analytic", "\n".join(lines))

    times = [m.stale_step_time_s(8192, q) for q in fractions]
    # Smaller quorum -> strictly faster close.
    assert all(a > b for a, b in zip(times, times[1:]))
    # Full quorum is within a hair of the blocking sync step (the
    # n-th order statistic approximates the max of n).
    assert times[0] == pytest.approx(sync, rel=0.05)


def test_measured_sync_vs_ssgd(benchmark):
    """Measured rows: the virtual-time stale group replays one seeded
    10x straggler and reports per-bound virtual step time vs the fully
    synchronous close (bound 0)."""
    BASE = 0.01
    N_STEPS = 40

    def run(bound):
        cfg = StalenessConfig(
            staleness_bound=bound, quorum_fraction=0.5,
            quarantine_factor=None, base_step_time_s=BASE,
        )
        plan = FaultPlan(seed=11).with_slow_rank(1, 9 * BASE, n_steps=N_STEPS)
        g = StaleGroup(8, cfg, injector=FaultInjector(plan))
        for step in range(N_STEPS):
            starters = g.begin_step(step)
            g.complete_step(
                step, {r: (0.0, np.ones(64)) for r in starters}
            )
        return g

    benchmark.pedantic(lambda: run(4), rounds=3, iterations=1)

    bounds = [0, 1, 2, 4, 8]
    groups = {b: run(b) for b in bounds}
    sync_vt = groups[0].virtual_time_s
    lines = [
        "A6 companion: measured ssgd vs sync (8 ranks, one 10x straggler, "
        f"{N_STEPS} steps, base {BASE * 1e3:.0f} ms)",
        f"{'bound':>6}{'virtual (s)':>13}{'speedup':>9}{'max stale':>11}"
        f"{'late folds':>12}",
    ]
    for b in bounds:
        g = groups[b]
        lines.append(
            f"{b:>6}{g.virtual_time_s:>13.3f}{sync_vt / g.virtual_time_s:>8.2f}x"
            f"{g.max_staleness:>11}{g.late_folds:>12}"
        )
    save_report("a6_sync_vs_ssgd", "\n".join(lines))

    # The sync run pays the full straggler delay every step.
    assert sync_vt == pytest.approx(N_STEPS * 10 * BASE, rel=0.01)
    # Any positive bound beats sync; a generous bound approaches the
    # straggler-free pace and at least halves the virtual time.
    vts = [groups[b].virtual_time_s for b in bounds]
    assert all(a >= b for a, b in zip(vts, vts[1:]))
    assert groups[4].virtual_time_s < sync_vt / 2
    for b in bounds[1:]:
        assert groups[b].max_staleness <= b
