"""A6 ablation — the straggler effect and the plugin's hiding of it.

Section II-C: synchronous scaling stalls because "a single slow node
can significantly reduce the aggregate performance"; Section III-D: the
CPE ML Plugin "reduces the 'straggler' effect in SSGD by using
non-blocking MPI communication to hide timing imbalances across
processes through the stages of the reduction"; Section VI-B: the
results "show the effectiveness of the CPE ML Plugin at hiding any
'straggler' effects."

The cluster model exposes that as a knob: ``straggler_exposure`` is the
fraction of the slowest-of-n compute tail NOT hidden by the staged
reduction (0 = the calibrated, plugin-protected baseline).  Sweeping it
quantifies what the plugin's design is worth at 8192 nodes.
"""

import pytest

from benchmarks.conftest import save_report
from repro.perfmodel import cori_datawarp_machine


def test_straggler_exposure_sweep(benchmark):
    exposures = [0.0, 0.25, 0.5, 1.0]
    machines = {e: cori_datawarp_machine(straggler_exposure=e) for e in exposures}
    benchmark.pedantic(
        lambda: machines[1.0].efficiency(8192), rounds=5, iterations=1
    )

    lines = [
        "A6 ablation: straggler exposure at scale (Cori burst buffer)",
        f"{'exposure':>10}{'step @8192 (ms)':>17}{'eff @8192':>11}{'eff @1024':>11}",
    ]
    for e, m in machines.items():
        lines.append(
            f"{e:>10.2f}{m.step_time_s(8192) * 1e3:>17.1f}"
            f"{m.efficiency(8192) * 100:>10.0f}%{m.efficiency(1024) * 100:>10.0f}%"
        )
    lines += [
        "",
        "exposure 0 is the calibrated baseline (the measured 168 ms step at "
        "8192 already reflects the plugin's hiding); exposure 1 is a fully "
        "blocking reduction that waits for the slowest of 8192 jittered "
        "nodes every step — the failure mode the plugin's staged, "
        "non-blocking design exists to avoid.",
    ]
    save_report("a6_straggler", "\n".join(lines))

    effs = [machines[e].efficiency(8192) for e in exposures]
    # More exposure -> strictly worse efficiency at scale.
    assert all(a > b for a, b in zip(effs, effs[1:]))
    # An unprotected reduction costs double-digit efficiency points.
    assert effs[0] - effs[-1] > 0.05
    # The single-node baseline is unaffected (no peers to straggle behind).
    assert machines[1.0].step_time_s(1) == pytest.approx(
        machines[0.0].step_time_s(1), rel=1e-9
    )
