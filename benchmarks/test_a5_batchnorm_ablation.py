"""A5 ablation — batch-norm removal.

Section III-A: "We remove batch-norm layers from the topology for
efficient scaling and compute performance.  We use a batch size of one
for all our experiments, and do not see accuracy degradation with
batch-norm removal."

Three measurements back the decision:

1. *degeneracy at batch 1* — BN normalizes each sample by its own
   statistics, erasing the absolute density amplitude that carries the
   σ8 signal;
2. *compute cost* — per-step overhead of the BN layers;
3. *scaling cost* — in data-parallel training, correct BN statistics at
   global batch = rank count would need an extra allreduce of per-layer
   (mean, var) every step, adding latency the gradient allreduce
   already pays once.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.perfmodel.interconnect import aries_plugin
from repro.tensor.layers import BatchNorm
from repro.tensor.ops.batchnorm import batch_norm
from repro.tensor.tensor import Tensor
from repro.utils.timer import Timer


def test_batchnorm_removal(benchmark):
    rng = np.random.default_rng(0)

    # 1. Amplitude erasure at batch 1: two universes whose density
    # amplitudes differ by 4x (a huge sigma_8 difference) become nearly
    # indistinguishable after a batch-1 BN.
    lo = rng.standard_normal((1, 16, 8, 8, 8)).astype(np.float32)
    hi = (4.0 * rng.standard_normal((1, 16, 8, 8, 8))).astype(np.float32)
    g, b = Tensor(np.ones(16)), Tensor(np.zeros(16))
    lo_bn = batch_norm(Tensor(lo), g, b).data
    hi_bn = batch_norm(Tensor(hi), g, b).data
    amp_ratio_raw = float(hi.std() / lo.std())
    amp_ratio_bn = float(hi_bn.std() / lo_bn.std())

    # 2. Per-step compute overhead of BN on a conv-stage activation.
    x = rng.standard_normal((1, 64, 13, 13, 13)).astype(np.float32)
    layer = BatchNorm(64)

    def bn_step():
        out = layer(x)
        out.sum().backward()

    with Timer() as t_bn:
        for _ in range(5):
            bn_step()
    benchmark.pedantic(bn_step, rounds=3, iterations=1)

    # 3. Scaling cost: one extra (mean, var) allreduce per BN layer per
    # step at 8192 ranks (7 BN layers x 2 small vectors, latency-bound).
    ic = aries_plugin()
    bn_bytes = 7 * 2 * 64 * 4  # 7 layers x (mean+var) x 64 ch x fp32
    t_small = ic.allreduce_time_s(8192, bn_bytes)
    t_grad = ic.allreduce_time_s(8192, 28.15e6)

    lines = [
        "A5 ablation: batch-norm removal (Section III-A)",
        f"amplitude ratio between 4x-different universes:",
        f"  raw inputs: {amp_ratio_raw:.2f}   after batch-1 BN: {amp_ratio_bn:.2f}"
        f"   (sigma_8's amplitude signal erased)",
        f"BN fwd+bwd on a 64ch x 13^3 stage: {t_bn.elapsed / 5 * 1e3:.2f} ms/step",
        f"extra per-step allreduce for synchronized BN statistics at 8192 ranks: "
        f"{t_small * 1e3:.3f} ms (vs {t_grad * 1e3:.1f} ms gradient allreduce)",
        "",
        "conclusion (= paper's): at mini-batch 1 BN is degenerate — it erases "
        "per-sample amplitude and would need extra cross-rank synchronization; "
        "removing it costs nothing at batch 1 and simplifies scaling.",
    ]
    save_report("a5_batchnorm", "\n".join(lines))

    assert amp_ratio_raw > 3.0
    assert amp_ratio_bn == pytest.approx(1.0, abs=0.1)  # amplitude erased
    assert t_small > 0.0
