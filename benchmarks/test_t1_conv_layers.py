"""Table I — per-convolution-layer time and flop rate.

The paper times each of the seven conv layers' forward, backward-weights
and backward-data passes at full 128³ scale on one KNL node and reports
ms and TF/s per layer (Table I).  This benchmark runs the identical
layer shapes through our kernels and prints the same table, with the
paper's values alongside.

Absolute rates differ (NumPy BLAS on this host vs hand-tuned AVX512 on
KNL); the *shape* must hold: conv2 dominates, the tail layers are
cheap, conv1 has no backward-data pass.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.core.flops import table1_rows
from repro.core.topology import paper_128
from repro.primitives.conv3d import (
    conv3d_backward_data,
    conv3d_backward_weights,
    conv3d_forward,
    conv3d_output_shape,
)
from repro.utils.timer import Timer

#: Table I of the paper: per-layer (fwd, bww, bwd) times in ms.
PAPER_TABLE1_MS = {
    "conv1": (1.14, 0.74, None),
    "conv2": (4.04, 6.20, 6.76),
    "conv3": (2.32, 2.65, 2.84),
    "conv4": (0.40, 0.39, 0.42),
    "conv5": (0.32, 0.29, 0.40),
    "conv6": (0.22, 0.29, 0.30),
    "conv7": (0.18, 0.22, 0.21),
}


def layer_shapes():
    """(name, input spatial, in_ch, out_ch, kernel) for each conv layer."""
    cfg = paper_128()
    size = cfg.input_size
    channels = cfg.input_channels
    out = []
    for i, spec in enumerate(cfg.conv_layers, start=1):
        out.append((f"conv{i}", size, channels, spec.out_channels, spec.kernel))
        (size, _, _) = conv3d_output_shape((size,) * 3, spec.kernel)
        if spec.pool:
            size //= 2
        channels = spec.out_channels
    return out


def time_layer(name, in_size, ic, oc, k, rng):
    x = rng.standard_normal((1, ic, in_size, in_size, in_size)).astype(np.float32)
    w = rng.standard_normal((oc, ic, k, k, k)).astype(np.float32)
    with Timer() as t_fwd:
        out = conv3d_forward(x, w)
    g = rng.standard_normal(out.shape).astype(np.float32)
    with Timer() as t_bww:
        conv3d_backward_weights(x, g, (k, k, k))
    if name == "conv1":
        t_bwd_elapsed = None  # first layer: input needs no gradient
    else:
        with Timer() as t_bwd:
            conv3d_backward_data(g, w, x.shape[2:])
        t_bwd_elapsed = t_bwd.elapsed
    return t_fwd.elapsed, t_bww.elapsed, t_bwd_elapsed


@pytest.fixture(scope="module")
def measured():
    rng = np.random.default_rng(0)
    return {name: time_layer(name, *shape, rng) for name, *shape in layer_shapes()}


def test_table1_report(measured, benchmark):
    flops = {r["layer"]: r for r in table1_rows(paper_128())}

    # benchmark the dominant layer (conv2 forward) for the timing table
    rng = np.random.default_rng(1)
    x = rng.standard_normal((1, 16, 63, 63, 63)).astype(np.float32)
    w = rng.standard_normal((32, 16, 4, 4, 4)).astype(np.float32)
    benchmark.pedantic(conv3d_forward, args=(x, w), rounds=2, iterations=1)

    lines = [
        "Table I reproduction: conv layer performance at 128^3 (batch 1)",
        f"{'layer':<8}{'ours ms (fwd/bww/bwd)':>26}{'ours GF/s':>22}{'paper ms':>22}{'paper TF/s dominant':>20}",
    ]
    for name, (fwd, bww, bwd) in measured.items():
        f = flops[name]
        gf = lambda fl, t: (fl / t / 1e9) if (t and t > 0) else float("nan")
        ours_ms = f"{fwd * 1e3:6.1f}/{bww * 1e3:6.1f}/" + (
            f"{bwd * 1e3:6.1f}" if bwd is not None else "     -"
        )
        ours_gf = (
            f"{gf(f['fwd_flops'], fwd):5.1f}/{gf(f['bww_flops'], bww):5.1f}/"
            + (f"{gf(f['bwd_flops'], bwd):5.1f}" if bwd is not None else "    -")
        )
        p = PAPER_TABLE1_MS[name]
        paper_ms = f"{p[0]:5.2f}/{p[1]:5.2f}/" + (f"{p[2]:5.2f}" if p[2] else "    -")
        lines.append(f"{name:<8}{ours_ms:>26}{ours_gf:>22}{paper_ms:>22}")
    total_fwd = sum(m[0] for m in measured.values())
    lines.append(
        f"total fwd: {total_fwd * 1e3:.0f} ms (paper: 8.62 ms on KNL with AVX512 JIT kernels)"
    )
    save_report("t1_conv_layers", "\n".join(lines))

    # Shape assertions matching the paper's qualitative structure.
    # (conv1 is excluded from the dominance check: its huge 126^3 x 16
    # output makes its wall time memory-traffic-bound and noisy on a
    # shared host, whereas conv2-7 are compute-shaped.)
    fwd_times = {n: m[0] for n, m in measured.items()}
    body = {n: t for n, t in fwd_times.items() if n != "conv1"}
    assert max(body, key=body.get) == "conv2"  # conv2 dominates
    tail = sum(fwd_times[f"conv{i}"] for i in range(4, 8))
    head = fwd_times["conv2"] + fwd_times["conv3"]
    assert tail < head  # the last four layers are cheap
    assert measured["conv1"][2] is None  # no bwd-data for layer 1
