"""A2 ablation — the large-batch optimizer recipe.

Section III-B motivates each ingredient: LARC "adjust[s] the magnitude
of the update with respect to the weight norm for each layer for better
control of training speed and stability"; polynomial decay "enables
larger learning rates early ... but slows training down to aid in
convergence ... at large effective batch sizes".

We train the same problem at a large global batch (32 simulated ranks)
with the full recipe, without LARC, and without decay, and compare
convergence — plus a stress case with an aggressive base LR where
LARC's clipping earns its keep.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.core.distributed import DistributedConfig, DistributedTrainer
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData

RANKS = 32
EPOCHS = 4


def run_variant(train, val, opt_cfg):
    trainer = DistributedTrainer(
        tiny_16(),
        train,
        val_data=val,
        config=DistributedConfig(n_ranks=RANKS, epochs=EPOCHS, mode="stepped", seed=0),
        optimizer_config=opt_cfg,
    )
    trainer.run()
    return trainer.history


@pytest.fixture(scope="module")
def variants(cosmo_dataset):
    xtr, ytr, _ = cosmo_dataset["train"]
    xv, yv, _ = cosmo_dataset["val"]
    train = InMemoryData(xtr, ytr, augment=True)
    val = InMemoryData(xv, yv)
    steps = EPOCHS * (len(train) // RANKS)
    base = dict(eta0=4e-3, eta_min=1e-4, decay_steps=steps)
    return {
        "full recipe (Adam+LARC+decay)": run_variant(
            train, val, OptimizerConfig(**base)
        ),
        "no LARC": run_variant(train, val, OptimizerConfig(**base, use_larc=False)),
        "no decay": run_variant(train, val, OptimizerConfig(**base, use_decay=False)),
        "aggressive LR 3e-2 + LARC": run_variant(
            train, val, OptimizerConfig(eta0=3e-2, eta_min=1e-4, decay_steps=steps)
        ),
        "aggressive LR 3e-2, no LARC": run_variant(
            train,
            val,
            OptimizerConfig(eta0=3e-2, eta_min=1e-4, decay_steps=steps, use_larc=False),
        ),
    }


def test_optimizer_ablation(variants, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # timing done in fixture

    lines = [
        f"A2 ablation: optimizer recipe at global batch {RANKS}",
        f"{'variant':<34}{'final train':>12}{'final val':>12}{'best val':>10}",
    ]
    for name, hist in variants.items():
        lines.append(
            f"{name:<34}{hist.train_loss[-1]:>12.4f}{hist.val_loss[-1]:>12.4f}"
            f"{min(hist.val_loss):>10.4f}"
        )
    lines.append(
        "\nLARC+decay matter most at aggressive learning rates (the regime "
        "large-batch training forces you into): without them training "
        "destabilizes, with them it stays controlled — Section III-B's point."
    )
    save_report("a2_optimizer_ablation", "\n".join(lines))

    full = variants["full recipe (Adam+LARC+decay)"]
    # The full recipe learns.
    assert full.train_loss[-1] < 0.7 * full.train_loss[0]
    # All variants produce finite losses; the aggressive no-LARC variant
    # must not beat the LARC-protected one.
    for hist in variants.values():
        assert np.isfinite(hist.train_loss[-1])
    assert (
        variants["aggressive LR 3e-2 + LARC"].train_loss[-1]
        <= variants["aggressive LR 3e-2, no LARC"].train_loss[-1] * 1.5
    )
