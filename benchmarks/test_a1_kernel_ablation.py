"""A1 ablation — convolution kernel implementations.

The paper's single-node speedups come from replacing generic kernels
with blocked, vectorized MKL-DNN kernels (Algorithm 1).  The analogue
here: the GEMM-decomposition path (NumPy BLAS doing the inner loops in
C) versus the structurally faithful Algorithm-1 direct path (blocked
loops in Python, vectorized only across the innermost block).

The point of the ablation is the same as the paper's: kernel structure
dominates 3D-CNN performance.  Numerics of the two paths are verified
identical in the unit tests; here we quantify the throughput gap.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.primitives.conv3d import conv3d_forward
from repro.primitives.direct import conv3d_forward_direct
from repro.utils.timer import Timer

#: Representative CosmoFlow layer shapes at reduced spatial size.
SHAPES = [
    ("conv2-like", 16, 32, 24, 4),
    ("conv3-like", 32, 64, 12, 4),
    ("conv4-like", 64, 64, 8, 3),
]


def run_case(fn, ic, oc, size, k, rng):
    x = rng.standard_normal((1, ic, size, size, size)).astype(np.float32)
    w = rng.standard_normal((oc, ic, k, k, k)).astype(np.float32)
    with Timer() as t:
        fn(x, w)
    flops = 2.0 * (size - k + 1) ** 3 * ic * oc * k**3
    return t.elapsed, flops


def test_kernel_ablation(benchmark):
    rng = np.random.default_rng(0)
    rows = []
    for name, ic, oc, size, k in SHAPES:
        t_gemm, flops = run_case(conv3d_forward, ic, oc, size, k, rng)
        t_direct, _ = run_case(conv3d_forward_direct, ic, oc, size, k, rng)
        rows.append((name, flops, t_gemm, t_direct))

    # benchmark the GEMM path on the middle shape
    _, ic, oc, size, k = SHAPES[1]
    x = rng.standard_normal((1, ic, size, size, size)).astype(np.float32)
    w = rng.standard_normal((oc, ic, k, k, k)).astype(np.float32)
    benchmark.pedantic(conv3d_forward, args=(x, w), rounds=3, iterations=1)

    lines = [
        "A1 ablation: conv3d kernel implementations (forward)",
        f"{'shape':<14}{'Gflop':>8}{'gemm ms':>10}{'gemm GF/s':>11}"
        f"{'direct ms':>11}{'direct GF/s':>12}{'ratio':>8}",
    ]
    for name, flops, tg, td in rows:
        lines.append(
            f"{name:<14}{flops / 1e9:>8.3f}{tg * 1e3:>10.1f}{flops / tg / 1e9:>11.2f}"
            f"{td * 1e3:>11.1f}{flops / td / 1e9:>12.2f}{td / tg:>8.1f}x"
        )
    lines.append(
        "\nthe 'direct' path is Algorithm 1's blocked loop nest with the 16x16 "
        "microkernel vectorized.  On large, channel-rich shapes the paper's "
        "blocking WINS even in Python — the cache-resident 16-channel blocks "
        "beat the channel-major GEMM decomposition — validating the MKL-DNN "
        "design; on small tail layers Python loop overhead hands the win to "
        "the single-GEMM path."
    )
    save_report("a1_kernel_ablation", "\n".join(lines))

    rates = {
        name: (flops / tg / 1e9, flops / td / 1e9) for name, flops, tg, td in rows
    }
    # Both paths deliver usable throughput everywhere.
    for name, (gemm_rate, direct_rate) in rates.items():
        assert gemm_rate > 1.0 and direct_rate > 1.0, name
    # The blocked layout is at its best on the big conv2-like shape:
    # its relative advantage must be highest there (the paper's design
    # point), and degrade toward the loop-overhead-dominated tail.
    advantage = [tg / td for _, _, tg, td in rows]
    assert advantage[0] == max(advantage)
