"""A1 ablation — convolution kernel implementations.

The paper's single-node speedups come from replacing generic kernels
with blocked, vectorized MKL-DNN kernels (Algorithm 1).  The analogue
here: the GEMM-decomposition path (NumPy BLAS doing the inner loops in
C) versus the structurally faithful Algorithm-1 direct path (blocked
loops in Python, vectorized only across the innermost block), plus the
two dispatch strategies this repo layers on top:

* ``blocked`` — the direct kernel run natively in the 16-channel-blocked
  layout with cached weight packs (steady-state: no per-call repacks);
* ``auto`` — the shape-keyed autotuner replaying a warmed cache.

The second test is the end-to-end half of the ablation: training the
same two-conv stack per-call-repacked vs natively blocked and counting
layout reorders.  The paper's Section IV complaint — reorders "occur at
various stages of the graph execution" — becomes a measured ratio: the
blocked-e2e path must do at least 10x fewer reorders per step, while
staying bitwise-identical in losses, gradients, and updated weights.
"""

import numpy as np

from benchmarks.conftest import save_report
from repro.primitives import autotune, registry
from repro.primitives.blocked import conv3d_forward_via_blocked
from repro.primitives.conv3d import conv3d_forward
from repro.primitives.direct import conv3d_forward_direct
from repro.primitives.layout import clear_reorder_cache, default_reorder_cache
from repro.utils.timer import Timer

#: Representative CosmoFlow layer shapes at reduced spatial size.
SHAPES = [
    ("conv2-like", 16, 32, 24, 4),
    ("conv3-like", 32, 64, 12, 4),
    ("conv4-like", 64, 64, 8, 3),
]


def run_case(fn, ic, oc, size, k, rng):
    x = rng.standard_normal((1, ic, size, size, size)).astype(np.float32)
    w = rng.standard_normal((oc, ic, k, k, k)).astype(np.float32)
    fn(x, w)  # warm up: weight-pack caches, tuner decisions
    with Timer() as t:
        fn(x, w)
    flops = 2.0 * (size - k + 1) ** 3 * ic * oc * k**3
    return t.elapsed, flops


def test_kernel_ablation(benchmark, tmp_path):
    rng = np.random.default_rng(0)
    tuner = autotune.Autotuner(
        autotune.TuningCache(tmp_path / "autotune.json"), repeats=1
    )
    autotune.set_tuner(tuner)
    auto_forward = registry.get_impl(registry.AUTO_IMPL).forward
    try:
        rows = []
        for name, ic, oc, size, k in SHAPES:
            clear_reorder_cache()
            t_gemm, flops = run_case(conv3d_forward, ic, oc, size, k, rng)
            t_direct, _ = run_case(conv3d_forward_direct, ic, oc, size, k, rng)
            t_blocked, _ = run_case(conv3d_forward_via_blocked, ic, oc, size, k, rng)
            t_auto, _ = run_case(auto_forward, ic, oc, size, k, rng)
            key = autotune.conv_shape_key(
                "forward", (1, ic, size, size, size), (oc, ic, k, k, k)
            )
            pick = tuner.cache.get(key)["impl"]
            rows.append((name, flops, t_gemm, t_direct, t_blocked, t_auto, pick))
    finally:
        autotune.set_tuner(None)
        clear_reorder_cache()

    # benchmark the GEMM path on the middle shape
    _, ic, oc, size, k = SHAPES[1]
    x = rng.standard_normal((1, ic, size, size, size)).astype(np.float32)
    w = rng.standard_normal((oc, ic, k, k, k)).astype(np.float32)
    benchmark.pedantic(conv3d_forward, args=(x, w), rounds=3, iterations=1)

    lines = [
        "A1 ablation: conv3d kernel implementations (forward, warm)",
        f"{'shape':<14}{'Gflop':>8}{'gemm ms':>10}{'direct ms':>11}"
        f"{'blocked ms':>12}{'auto ms':>10}{'auto pick':>11}",
    ]
    for name, flops, tg, td, tb, ta, pick in rows:
        lines.append(
            f"{name:<14}{flops / 1e9:>8.3f}{tg * 1e3:>10.1f}{td * 1e3:>11.1f}"
            f"{tb * 1e3:>12.1f}{ta * 1e3:>10.1f}{pick:>11}"
        )
    lines.append(
        f"\nautotuner: {tuner.misses} shapes timed once, then replayed "
        f"({tuner.hits} warm dispatches); cache at {tuner.cache.path.name}."
        "\n'blocked' is the direct kernel running natively in the "
        "16-channel-blocked layout with content-addressed weight packs — "
        "steady state pays zero per-call repacks.  On large, channel-rich "
        "shapes the paper's blocking WINS even in Python; on small tail "
        "layers Python loop overhead hands the win to the single-GEMM path, "
        "which is exactly the trade the autotuner arbitrates per shape."
    )
    save_report("a1_kernel_ablation", "\n".join(lines))

    rates = {
        name: (flops / tg / 1e9, flops / td / 1e9)
        for name, flops, tg, td, _, _, _ in rows
    }
    # Both paths deliver usable throughput everywhere.
    for name, (gemm_rate, direct_rate) in rates.items():
        assert gemm_rate > 1.0 and direct_rate > 1.0, name
    # The blocked layout is at its best on the big conv2-like shape:
    # its relative advantage must be highest there (the paper's design
    # point), and degrade toward the loop-overhead-dominated tail.
    advantage = [tg / td for _, _, tg, td, _, _, _ in rows]
    assert advantage[0] == max(advantage)
    # The tuner never invents an implementation.
    for rec in tuner.cache.entries().values():
        assert rec["impl"] in registry.available_impls()


# -- end-to-end reorder ablation ---------------------------------------------

BATCH = 16
SIZE = 12
STEPS = 2
LR = 1e-3


def _build_stack(impl):
    """Two-conv CosmoFlow-style stack with deterministic weights."""
    from repro.tensor.layers import (
        AvgPool3D,
        Conv3D,
        Dense,
        Flatten,
        LeakyReLU,
        Sequential,
    )

    return Sequential([
        Conv3D(4, 16, 3, rng=np.random.default_rng(1), impl=impl, name="c1"),
        LeakyReLU(),
        AvgPool3D(2),
        Conv3D(16, 32, 2, rng=np.random.default_rng(2), impl=impl, name="c2"),
        LeakyReLU(),
        Flatten(),
        Dense(32 * 4 ** 3, 3, rng=np.random.default_rng(3), name="head"),
    ])


def _train(impl):
    """Run STEPS of SGD; return (losses, final params, metric counters)."""
    from repro.obs import MetricsRegistry
    from repro.tensor import ops
    from repro.tensor.tensor import Tensor

    rng = np.random.default_rng(7)
    x = rng.standard_normal((BATCH, 4, SIZE, SIZE, SIZE)).astype(np.float32)
    y = rng.standard_normal((BATCH, 3)).astype(np.float32)

    metrics = MetricsRegistry()
    registry.set_metrics(metrics)
    clear_reorder_cache()
    net = _build_stack(impl)
    losses = []
    try:
        for _ in range(STEPS):
            for p in net.parameters():
                p.zero_grad()
            loss = ops.mse_loss(net(Tensor(x)), Tensor(y))
            loss.backward()
            losses.append(loss.item())
            for p in net.parameters():
                p.data -= LR * p.grad
    finally:
        registry.set_metrics(None)
    cache = default_reorder_cache()
    snap = dict(metrics.snapshot())
    snap["_cache_hits"] = cache.hits
    snap["_cache_misses"] = cache.misses
    clear_reorder_cache()
    return losses, [p.data.copy() for p in net.parameters()], snap


def test_blocked_e2e_reorder_ablation():
    d_losses, d_params, d_snap = _train("direct")
    b_losses, b_params, b_snap = _train("blocked")

    # Bitwise equality: same losses, same trained weights, every step.
    assert d_losses == b_losses
    for dp, bp in zip(d_params, b_params):
        assert np.array_equal(dp, bp)

    d_reorders = d_snap["primitives.reorder.calls"]
    b_reorders = b_snap["primitives.reorder.calls"]
    # The headline claim: running the stack natively blocked does at
    # least 10x fewer layout reorders per step than per-call repacking.
    assert d_reorders >= 10 * b_reorders, (d_reorders, b_reorders)
    # Weight/bias packs are content-addressed: reused across forward
    # and backward within a step instead of repacked per call.
    assert b_snap["_cache_hits"] > 0
    # No padded-backward gemm fallbacks in either run (padding=0).
    assert d_snap.get("primitives.conv3d.fallbacks", 0) == 0
    assert b_snap.get("primitives.conv3d.fallbacks", 0) == 0

    hit_rate = b_snap["_cache_hits"] / max(
        1, b_snap["_cache_hits"] + b_snap["_cache_misses"]
    )
    lines = [
        "A1 ablation: end-to-end layout reorders "
        f"(batch {BATCH}, {STEPS} steps, 2 conv layers)",
        f"{'impl':<10}{'reorders':>10}{'reorder MB':>12}{'cache hits':>12}"
        f"{'cache miss':>12}",
        f"{'direct':<10}{d_reorders:>10.0f}"
        f"{d_snap['primitives.reorder.bytes'] / 1e6:>12.2f}"
        f"{d_snap['_cache_hits']:>12}{d_snap['_cache_misses']:>12}",
        f"{'blocked':<10}{b_reorders:>10.0f}"
        f"{b_snap['primitives.reorder.bytes'] / 1e6:>12.2f}"
        f"{b_snap['_cache_hits']:>12}{b_snap['_cache_misses']:>12}",
        f"\nreorder ratio: {d_reorders / b_reorders:.1f}x fewer blocked-e2e "
        f"(gate: >= 10x); pack-cache hit rate {hit_rate:.0%}; "
        "losses and trained weights bitwise-identical.",
    ]
    save_report("a1_blocked_e2e", "\n".join(lines))
