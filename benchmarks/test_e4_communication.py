"""E4 — the communication analysis (Section VI-B).

Paper numbers reproduced by the model:

* 33 ms gradient-aggregation latency at 1024 nodes (162 - 129 ms);
* achieved bandwidth (2 x 28.15 MB / latency): 1.7 GB/s/node at 1024,
  1.42 GB/s/node at 8192 — against Aries' ~10 GB/s capability;

plus a real in-process measurement: MLPlugin aggregating an actual
28.15 MB gradient across threaded ranks, with the same
twice-the-message-volume accounting.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.comm.plugin import MLPlugin, PluginConfig
from repro.comm.threaded import ThreadedGroup
from repro.perfmodel.interconnect import PAPER_COMM, aries_plugin


def test_model_vs_paper(benchmark):
    ic = aries_plugin()
    m = PAPER_COMM["model_bytes"]
    t_1024 = ic.allreduce_time_s(1024, m)
    t_8192 = ic.allreduce_time_s(8192, m)
    benchmark.pedantic(ic.allreduce_time_s, args=(8192, m), rounds=10, iterations=1)

    lines = [
        "E4: gradient-aggregation analysis vs paper (Section VI-B)",
        f"{'quantity':<44}{'ours':>10}{'paper':>10}",
        f"{'aggregation latency @1024 (ms)':<44}{t_1024 * 1e3:>10.1f}{'33':>10}",
        f"{'achieved BW @1024 (GB/s/node)':<44}"
        f"{2 * m / t_1024 / 1e9:>10.2f}{'1.7':>10}",
        f"{'aggregation latency @8192 (ms)':<44}{t_8192 * 1e3:>10.1f}{'39.6':>10}",
        f"{'achieved BW @8192 (GB/s/node)':<44}"
        f"{2 * m / t_8192 / 1e9:>10.2f}{'1.42':>10}",
        f"{'Aries point-to-point capability (GB/s)':<44}"
        f"{ic.peak_bandwidth_Bps / 1e9:>10.1f}{'~10':>10}",
    ]
    save_report("e4_communication_model", "\n".join(lines))

    assert t_1024 * 1e3 == pytest.approx(33.0, rel=0.03)
    assert 2 * m / t_8192 / 1e9 == pytest.approx(1.42, rel=0.05)


def test_real_plugin_aggregation(benchmark):
    """Aggregate a real 28.15 MB gradient across 4 threaded ranks."""
    n_params = int(PAPER_COMM["model_bytes"] // 4)
    ranks = 4

    def aggregate():
        group = ThreadedGroup(ranks)

        def body(comm):
            rng = np.random.default_rng(comm.rank)
            grad = rng.standard_normal(n_params).astype(np.float32)
            plugin = MLPlugin(comm, PluginConfig(teams=1, threads_per_team=4)).init()
            plugin.gradients([grad])
            return plugin.stats

        return group.run(body)

    stats = benchmark.pedantic(aggregate, rounds=2, iterations=1)
    per_call = np.mean([s.per_call_seconds[0] for s in stats])
    volume = 2 * PAPER_COMM["model_bytes"]
    lines = [
        "E4b: real in-process MLPlugin aggregation (28.15 MB gradient, 4 ranks)",
        f"aggregation time: {per_call * 1e3:.1f} ms",
        f"effective 'bandwidth' (2M/t convention): {volume / per_call / 1e9:.2f} GB/s",
        "(shared-memory threads, so this bounds the software overhead, "
        "not a network; the paper's wire numbers are in e4_communication_model)",
    ]
    save_report("e4_real_plugin", "\n".join(lines))
    assert per_call > 0
    for s in stats:
        assert s.bytes_reduced == pytest.approx(n_params * 4, rel=1e-6)
