"""Shared fixtures for the benchmark suite.

Each benchmark file regenerates one table or figure of the paper (see
DESIGN.md §4).  Expensive artifacts — the simulated dataset and a
trained model — are built once per session here and shared.

Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the printed reproduction tables; they are also written to
``benchmarks/results/``.)
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro import CosmoFlowModel, InMemoryData, Trainer, TrainerConfig
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.cosmo import SimulationConfig, build_arrays, train_val_test_split

RESULTS_DIR = Path(__file__).parent / "results"


def save_report(name: str, text: str) -> None:
    """Print a reproduction table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


@pytest.fixture(scope="session")
def cosmo_dataset():
    """Simulated dataset shared by the science benchmarks (F5/F6/E6):
    150 universes -> 1200 sub-volumes of 16^3 (the paper's geometry at
    1/8 linear scale: 64^3 particles -> 32^3 histogram = 8 particles
    per voxel, split 2x2x2)."""
    sim = SimulationConfig()
    volumes, targets, theta = build_arrays(150, sim, seed=101)
    train, val, test = train_val_test_split(
        volumes, targets, theta, sim.subvolumes_per_sim,
        val_fraction=0.08, test_fraction=0.12, rng=0,
    )
    return {"sim": sim, "train": train, "val": val, "test": test}


@pytest.fixture(scope="session")
def trained_model(cosmo_dataset):
    """A CosmoFlow model trained on the shared dataset (used by F6/E6)."""
    xtr, ytr, _ = cosmo_dataset["train"]
    xv, yv, _ = cosmo_dataset["val"]
    model = CosmoFlowModel(tiny_16(), seed=0)
    trainer = Trainer(
        model,
        # isotropy augmentation (48 cube symmetries): the regularizer
        # that lets a small training set constrain the 3D CNN
        InMemoryData(xtr, ytr, augment=True),
        val_data=InMemoryData(xv, yv),
        optimizer_config=OptimizerConfig(eta0=2e-3, eta_min=1e-4, decay_steps=8 * len(xtr)),
        config=TrainerConfig(epochs=8, seed=1),
    )
    history = trainer.run()
    return {"model": model, "history": history, "trainer": trainer}
