"""A11 ablation — accuracy vs precision across the low-precision stack.

Section IV of the paper trains in single precision; this ablation
quantifies what each lower-precision rung costs (or doesn't) on the F5
synthetic-universe setup:

* **fp16 training** — fp32 master weights + dynamic loss scaling.  We
  start the loss scale at its ceiling (2^24) so the very first steps
  *must* overflow: the scaler has to detect the infs, skip the updates,
  back the scale off, and recover — and the final loss must still land
  within 1% of the fp32 run.
* **int8 / int4 inference** — the fp32-trained model evaluated through
  the quantized blocked GEMM kernels (weights quantized per group,
  activations in fp32).
* **top-k compressed allreduce** — k = 10% sparsified gradient exchange
  with error feedback; wire bytes must drop >= 5x versus dense fp32.

Everything is seeded; the fp16 run is executed twice and must replay
bitwise.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.core.distributed import DistributedConfig, DistributedTrainer
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData
from repro.primitives import registry

RANKS = 8
EPOCHS = 2


def final_train_loss(model, train):
    return float(
        np.mean([model.validation_loss(x, y) for x, y in train.batches(8, shuffle=False)])
    )


def run_variant(train, train_eval, val, *, precision="fp32", compression="none",
                loss_scale_init=None, topk_fraction=0.1):
    steps = EPOCHS * (len(train) // RANKS)
    opt = dict(eta0=2e-3, eta_min=1e-4, decay_steps=steps, precision=precision)
    if loss_scale_init is not None:
        opt["loss_scale_init"] = loss_scale_init
    trainer = DistributedTrainer(
        tiny_16(),
        train,
        val_data=val,
        config=DistributedConfig(
            n_ranks=RANKS,
            epochs=EPOCHS,
            mode="stepped",
            seed=0,
            compression=compression,
            topk_fraction=topk_fraction,
        ),
        optimizer_config=OptimizerConfig(**opt),
    )
    trainer.run()
    return {
        "trainer": trainer,
        "final": final_train_loss(trainer.final_model, train_eval),
        "val": trainer.history.val_loss[-1],
        "stats": dict(trainer.group_stats),
    }


def quantized_eval(model, train, impl):
    prev = registry.get_default_impl()
    registry.set_default_impl(impl)
    try:
        return final_train_loss(model, train)
    finally:
        registry.set_default_impl(prev)


@pytest.fixture(scope="module")
def runs(cosmo_dataset):
    xtr, ytr, _ = cosmo_dataset["train"]
    xv, yv, _ = cosmo_dataset["val"]
    train = InMemoryData(xtr, ytr, augment=True)
    # Final losses are measured on an *unaugmented* view: augmentation
    # draws fresh random symmetries per pass, which would make the
    # measurement itself nondeterministic.
    train_eval = InMemoryData(xtr, ytr)
    val = InMemoryData(xv, yv)

    fp32 = run_variant(train, train_eval, val)
    # Start the scale at its ceiling: the first steps are guaranteed to
    # overflow, exercising detect -> skip -> backoff -> recover.
    fp16 = run_variant(train, train_eval, val, precision="fp16",
                       loss_scale_init=2.0**24)
    fp16_replay = run_variant(train, train_eval, val, precision="fp16",
                              loss_scale_init=2.0**24)
    topk = run_variant(train, train_eval, val, compression="topk",
                       topk_fraction=0.1)

    quant = {
        impl: quantized_eval(fp32["trainer"].final_model, train_eval, impl)
        for impl in ("int8", "int4")
    }
    return {"train": train, "fp32": fp32, "fp16": fp16,
            "fp16_replay": fp16_replay, "topk": topk, "quant": quant}


def test_precision_ablation(runs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # timing done in fixture

    fp32, fp16, topk = runs["fp32"], runs["fp16"], runs["topk"]
    scaler = fp16["stats"]

    rel = abs(fp16["final"] - fp32["final"]) / fp32["final"]
    wire_saving = (
        topk["stats"]["compression_bytes_in"] / topk["stats"]["compression_bytes_wire"]
    )

    lines = [
        f"A11 ablation: accuracy vs precision ({RANKS} ranks, {EPOCHS} epochs)",
        f"{'variant':<28}{'final train':>12}{'final val':>12}",
        f"{'fp32 (paper path)':<28}{fp32['final']:>12.4f}{fp32['val']:>12.4f}",
        f"{'fp16 + loss scaling':<28}{fp16['final']:>12.4f}{fp16['val']:>12.4f}",
        f"{'fp32 + top-k 10% comm':<28}{topk['final']:>12.4f}{topk['val']:>12.4f}",
        f"{'int8 inference (fp32 run)':<28}{runs['quant']['int8']:>12.4f}",
        f"{'int4 inference (fp32 run)':<28}{runs['quant']['int4']:>12.4f}",
        "",
        f"fp16 vs fp32 final-loss gap: {100 * rel:.3f}% (criterion < 1%)",
        f"fp16 overflow steps skipped: {scaler['loss_scale_skipped_steps']:.0f} "
        f"(final scale {scaler['loss_scale']:.0f}, overflows "
        f"{scaler['loss_scale_overflows']:.0f})",
        f"top-k wire bytes: {topk['stats']['compression_bytes_wire']:.3e} vs "
        f"dense {topk['stats']['compression_bytes_in']:.3e} "
        f"({wire_saving:.1f}x saving)",
    ]
    save_report("a11_precision_ablation", "\n".join(lines))

    # fp16 parity: within 1% relative of the fp32 final loss, with at
    # least one injected-overflow step skipped and the run recovered
    # (scale backed off from the 2^24 ceiling, losses finite).
    assert rel < 0.01
    assert scaler["loss_scale_skipped_steps"] >= 1
    assert scaler["loss_scale"] < 2.0**24
    assert np.isfinite(fp16["final"])

    # Quantized inference stays in the same loss regime as fp32 (int4
    # is allowed more slack than int8).
    assert abs(runs["quant"]["int8"] - fp32["final"]) <= 0.05 * fp32["final"] + 0.05
    assert abs(runs["quant"]["int4"] - fp32["final"]) <= 0.25 * fp32["final"] + 0.25

    # Top-k at k=10% must cut wire bytes by at least 5x.
    assert wire_saving >= 5.0
    assert topk["stats"]["compression"] == "topk"


def test_fp16_replay_is_deterministic(runs):
    a, b = runs["fp16"], runs["fp16_replay"]
    assert a["final"] == b["final"]
    assert a["stats"]["loss_scale"] == b["stats"]["loss_scale"]
    assert (
        a["stats"]["loss_scale_skipped_steps"] == b["stats"]["loss_scale_skipped_steps"]
    )
    np.testing.assert_array_equal(
        a["trainer"].final_model.get_flat_parameters(),
        b["trainer"].final_model.get_flat_parameters(),
    )
