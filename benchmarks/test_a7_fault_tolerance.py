"""A7 — fault-tolerance sweep: elastic SSGD under increasing failure rates.

The paper's fully synchronous design (Algorithm 2) assumes 8192
flawless nodes; Section VI notes the variability already visible at
scale.  This benchmark measures what the resilience layer buys:
seeded :class:`~repro.faults.FaultPlan` schedules inject rank crashes,
stragglers, and message corruption at increasing rates into small
elastic training runs, and the table reports completion, survivors,
recovery actions, and final held-out loss versus the fault-free
baseline.

Every plan is deterministic (same seed → same faults), so this table
is comparable across commits.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.comm.errors import QuorumLostError
from repro.core.distributed import DistributedConfig
from repro.core.elastic import ElasticConfig, ElasticTrainer
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData
from repro.faults import FaultInjector, FaultPlan

N_RANKS = 4
EPOCHS = 4
N_SAMPLES = 16
STEPS = (N_SAMPLES // N_RANKS) * EPOCHS
OPT = OptimizerConfig(eta0=5e-3, decay_steps=50)


def make_data(n=N_SAMPLES, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, 16, 16, 16)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


def eval_loss(model, n=12, seed=1):
    data = make_data(n, seed=seed)
    return float(
        np.mean([model.validation_loss(x, y) for x, y in data.batches(1, shuffle=False)])
    )


def run_at_rate(crash_rate, hang_rate, corrupt_rate, seed, tmp_path):
    plan = FaultPlan.sample(
        seed,
        N_RANKS,
        STEPS,
        crash_rate=crash_rate,
        hang_rate=hang_rate,
        hang_delay_s=0.05,
        corrupt_rate=corrupt_rate,
    )
    ckpt_dir = tmp_path / f"ckpt-{seed}-{crash_rate}-{hang_rate}-{corrupt_rate}"
    trainer = ElasticTrainer(
        tiny_16(),
        make_data(),
        config=DistributedConfig(
            n_ranks=N_RANKS, epochs=EPOCHS, mode="elastic", validate=False
        ),
        optimizer_config=OPT,
        elastic=ElasticConfig(
            timeout_s=10.0,
            quorum_fraction=0.5,
            checkpoint_dir=str(ckpt_dir),
        ),
        injector=FaultInjector(plan),
    )
    try:
        trainer.run()
    except QuorumLostError:
        return {"plan": plan, "completed": False}
    stats = trainer.group_stats
    return {
        "plan": plan,
        "completed": True,
        "survivors": len(stats["survivors"]),
        "failed": len(stats["failed_ranks"]),
        "evicted": len(stats["evicted_ranks"]),
        "restarts": stats["restarts"],
        "retransmits": stats["retransmits"],
        "loss": eval_loss(trainer.final_model),
    }


def test_fault_rate_sweep(benchmark, tmp_path):
    # (crash, hang, corrupt) per-rank per-step rates to sweep.
    rates = [
        (0.00, 0.00, 0.00),
        (0.01, 0.00, 0.00),
        (0.02, 0.01, 0.01),
        (0.05, 0.02, 0.02),
    ]
    results = {}
    for rate in rates:
        results[rate] = run_at_rate(*rate, seed=7, tmp_path=tmp_path)
    benchmark.pedantic(
        lambda: run_at_rate(0.01, 0.0, 0.0, seed=7, tmp_path=tmp_path),
        rounds=1,
        iterations=1,
    )
    base_loss = results[rates[0]]["loss"]

    lines = [
        "A7: elastic SSGD under injected faults "
        f"({N_RANKS} ranks x {EPOCHS} epochs, tiny_16, quorum 50%)",
        f"{'crash':>7}{'hang':>7}{'corrupt':>9}{'events':>8}{'done':>6}"
        f"{'alive':>7}{'evict':>7}{'restart':>9}{'retx':>6}{'loss':>9}{'vs base':>9}",
    ]
    for rate, r in results.items():
        crash, hang, corrupt = rate
        if not r["completed"]:
            lines.append(
                f"{crash:>7.2f}{hang:>7.2f}{corrupt:>9.2f}{len(r['plan']):>8}"
                f"{'no':>6}{'-':>7}{'-':>7}{'-':>9}{'-':>6}{'-':>9}{'-':>9}"
            )
            continue
        rel = (r["loss"] - base_loss) / base_loss if base_loss else float("nan")
        lines.append(
            f"{crash:>7.2f}{hang:>7.2f}{corrupt:>9.2f}{len(r['plan']):>8}"
            f"{'yes':>6}{r['survivors']:>7}{r['evicted']:>7}{r['restarts']:>9}"
            f"{r['retransmits']:>6}{r['loss']:>9.4f}{rel:>+9.1%}"
        )
    lines += [
        "",
        "done=run completed (possibly after checkpoint restarts); alive="
        "surviving ranks at the end; retx=corrupt contributions recovered "
        "by retransmission.  All fault schedules are seeded and "
        "reproducible; the fault-free row is the baseline loss.",
    ]
    save_report("a7_fault_tolerance", "\n".join(lines))

    # The fault-free run must complete untouched...
    r0 = results[rates[0]]
    assert r0["completed"] and r0["failed"] == 0 and r0["survivors"] == N_RANKS
    # ...and every swept rate must complete (that is the tentpole claim:
    # injected faults degrade, they do not crash training).
    for rate, r in results.items():
        assert r["completed"], f"run at rates {rate} did not complete"


def run_growback(plan, spares, tmp_path, tag):
    trainer = ElasticTrainer(
        tiny_16(),
        make_data(),
        config=DistributedConfig(
            n_ranks=N_RANKS, epochs=EPOCHS, mode="elastic", validate=False
        ),
        optimizer_config=OPT,
        elastic=ElasticConfig(
            timeout_s=10.0,
            quorum_fraction=0.5,
            checkpoint_dir=str(tmp_path / f"ckpt-growback-{tag}"),
            spares=spares,
        ),
        injector=FaultInjector(plan),
    )
    hist = trainer.run()
    stats = trainer.group_stats
    eb = hist.effective_batch
    return {
        "survivors": len(stats["survivors"]),
        "rejoins": len(stats["rejoins"]),
        "spares_used": stats["spares_used"],
        "final_eb": eb[-1],
        "mean_eb": float(np.mean(eb)),
        "loss": eval_loss(trainer.final_model),
    }


def test_growback_vs_shrink_only(benchmark, tmp_path):
    """Rejoin (grow-back) recovers the effective batch that
    shrink-and-continue permanently gives up after a crash."""
    from repro.faults.plan import FaultEvent, FaultKind

    crashes = FaultPlan(
        seed=11,
        events=(
            FaultEvent(FaultKind.RANK_CRASH, rank=1, step=3),
            FaultEvent(FaultKind.RANK_CRASH, rank=3, step=5),
        ),
    )
    variants = {
        "shrink-only": (crashes, 0),
        "rejoin": (crashes.with_recovery(4), 0),
        "warm spares": (crashes, 2),
    }
    results = {
        tag: run_growback(plan, spares, tmp_path, tag.replace(" ", "-"))
        for tag, (plan, spares) in variants.items()
    }
    benchmark.pedantic(
        lambda: run_growback(crashes.with_recovery(4), 0, tmp_path, "bench"),
        rounds=1,
        iterations=1,
    )

    full_eb = float(N_RANKS)  # batch 1 per rank
    lines = [
        "A7b: grow-back vs shrink-only (2 crashes into "
        f"{N_RANKS} ranks x {EPOCHS} epochs, tiny_16)",
        f"{'variant':<14}{'alive':>7}{'rejoin':>8}{'spares':>8}"
        f"{'final eb':>10}{'mean eb':>9}{'loss':>9}",
    ]
    for tag, r in results.items():
        lines.append(
            f"{tag:<14}{r['survivors']:>7}{r['rejoins']:>8}{r['spares_used']:>8}"
            f"{r['final_eb']:>10.0f}{r['mean_eb']:>9.2f}{r['loss']:>9.4f}"
        )
    lines += [
        "",
        "eb = effective global batch (per-epoch mean of active ranks x "
        "per-rank batch).  Shrink-only ends the run permanently degraded; "
        "rejoin readmits the crashed ranks after 4 steps and warm spares "
        "replace them at the next step boundary, both restoring the full "
        "effective batch (and hence aggregate throughput).",
    ]
    save_report("a7_growback", "\n".join(lines))

    shrink, rejoin, spares = (
        results["shrink-only"], results["rejoin"], results["warm spares"]
    )
    # Shrink-only never gets the two crashed ranks back.
    assert shrink["survivors"] == N_RANKS - 2 and shrink["rejoins"] == 0
    assert shrink["final_eb"] == full_eb - 2
    # Grow-back (either flavor) ends with the full active set and the
    # full effective global batch restored.
    for r in (rejoin, spares):
        assert r["survivors"] == N_RANKS
        assert r["rejoins"] == 2
        assert r["final_eb"] == full_eb
        assert r["mean_eb"] > shrink["mean_eb"]
    assert spares["spares_used"] == 2 and rejoin["spares_used"] == 0
