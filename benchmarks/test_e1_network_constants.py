"""E1 — the network's published constants.

Section V-A: "the network consists of slightly more than seven million
parameters.  ... the total amount of computation in the network is
69.33 Gflop, and the network requires 28.15 MB of parameters."

Pure analytical audit of the reconstructed topology against those
numbers (see DESIGN.md §3 for the reconstruction and the residual
total-flop gap).
"""

import pytest

from benchmarks.conftest import save_report
from repro.core.flops import (
    PAPER_PARAM_BYTES,
    PAPER_TOTAL_FLOPS,
    network_costs,
    parameter_bytes,
    parameter_count,
    report,
    total_flops,
)
from repro.core.topology import paper_128


def test_network_constants(benchmark):
    cfg = paper_128()
    benchmark.pedantic(network_costs, args=(cfg,), rounds=5, iterations=1)

    params = parameter_count(cfg)
    nbytes = parameter_bytes(cfg)
    totals = total_flops(cfg)

    lines = [
        "E1: network constants vs paper",
        f"{'quantity':<28}{'ours':>16}{'paper':>16}{'ratio':>8}",
        f"{'parameters':<28}{params:>16,}{'~7,037,500':>16}"
        f"{params / (PAPER_PARAM_BYTES / 4):>8.3f}",
        f"{'parameter bytes (MB)':<28}{nbytes / 1e6:>16.2f}{28.15:>16.2f}"
        f"{nbytes / PAPER_PARAM_BYTES:>8.3f}",
        f"{'total Gflop/sample':<28}{totals['total'] / 1e9:>16.2f}{69.33:>16.2f}"
        f"{totals['total'] / PAPER_TOTAL_FLOPS:>8.3f}",
        f"{'fwd Gflop/sample':<28}{totals['fwd'] / 1e9:>16.2f}{'-':>16}{'':>8}",
        f"{'conv fraction of total':<28}{totals['conv_total'] / totals['total']:>16.3f}"
        f"{'dominant':>16}{'':>8}",
        "",
        report(cfg),
    ]
    save_report("e1_network_constants", "\n".join(lines))

    assert params == pytest.approx(PAPER_PARAM_BYTES / 4, rel=0.01)
    assert nbytes == pytest.approx(PAPER_PARAM_BYTES, rel=0.01)
    assert totals["total"] == pytest.approx(PAPER_TOTAL_FLOPS, rel=0.10)
