"""A3 ablation — allreduce algorithms.

Why the paper needed the CPE ML Plugin at all: TensorFlow's default
gRPC path is a centralized master-slave reduction whose root link
carries ``2(p-1)M`` bytes, while MPI-style ring / recursive
halving-doubling algorithms move ``2M(p-1)/p`` per node (Mathuriya et
al. 2017, cited as the motivation).

Three views: (1) exact message accounting from the executable
schedules; (2) the alpha-beta time model at paper scales; (3) real
wall-clock execution of all three schedules in-process.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.comm.algorithms import (
    ALLREDUCE_ALGORITHMS,
    allreduce_time_model,
)
from repro.utils.timer import Timer

MODEL_MB = 28.15


def test_message_accounting(benchmark):
    p, n = 16, 50_000  # 16 ranks, 200 KB vectors — executable scale
    rng = np.random.default_rng(0)
    arrays = [rng.standard_normal(n).astype(np.float32) for _ in range(p)]

    rows = []
    for name, fn in sorted(ALLREDUCE_ALGORITHMS.items()):
        with Timer() as t:
            result = fn(arrays)
        rows.append(
            (
                name,
                result.steps,
                result.bytes_sent_by(1) / 1e6,
                result.max_bytes_through_any_rank() / 1e6,
                t.elapsed,
            )
        )
    benchmark.pedantic(
        ALLREDUCE_ALGORITHMS["ring"], args=(arrays,), rounds=2, iterations=1
    )

    m = n * 4 / 1e6
    lines = [
        f"A3 ablation: allreduce schedules ({p} ranks, {m:.2f} MB vectors)",
        f"{'algorithm':<18}{'steps':>7}{'MB sent/rank':>14}{'MB thru hot rank':>18}"
        f"{'wall ms':>10}",
    ]
    for name, steps, sent, hot, wall in rows:
        lines.append(f"{name:<18}{steps:>7}{sent:>14.2f}{hot:>18.2f}{wall * 1e3:>10.1f}")
    lines.append(
        f"\ntheory: ring/halving-doubling send 2M(p-1)/p = {2 * m * (p - 1) / p:.2f} "
        f"MB/rank; centralized root moves 2(p-1)M = {2 * (p - 1) * m:.2f} MB."
    )
    save_report("a3_allreduce_accounting", "\n".join(lines))

    by_name = {r[0]: r for r in rows}
    # Bandwidth-optimal algorithms move ~2M(p-1)/p per rank...
    for name in ("ring", "halving_doubling"):
        assert by_name[name][2] == pytest.approx(2 * m * (p - 1) / p, rel=0.06)
    # ...while the centralized hot link carries ~p times more.
    assert by_name["reduce_broadcast"][3] > 10 * by_name["ring"][3] / 2


def test_time_model_at_paper_scale(benchmark):
    msg = MODEL_MB * 1e6
    kw = dict(message_bytes=msg, latency_s=1e-6, bandwidth_Bps=1.7e9)
    scales = [128, 1024, 8192]
    table = {
        algo: [allreduce_time_model(algo, p, **kw) for p in scales]
        for algo in ("ring", "halving_doubling", "reduce_broadcast")
    }
    benchmark.pedantic(
        allreduce_time_model, args=("ring", 8192), kwargs=kw, rounds=10, iterations=1
    )
    lines = [
        "A3b: modeled allreduce time for the 28.15 MB gradient (1.7 GB/s/node)",
        f"{'algorithm':<18}" + "".join(f"{p:>12}" for p in scales),
    ]
    for algo, times in table.items():
        lines.append(
            f"{algo:<18}" + "".join(f"{t * 1e3:>10.1f}ms" for t in times)
        )
    lines.append(
        "\nthe centralized (gRPC-style) reduction is why 'this approach ... does "
        "not scale to large node counts' — hours vs milliseconds at 8192."
    )
    save_report("a3_allreduce_model", "\n".join(lines))

    assert table["reduce_broadcast"][2] > 100 * table["ring"][2]
    # both bandwidth-optimal algorithms share the 2M(p-1)/p volume term;
    # halving-doubling additionally wins the latency term (2 log2 p vs
    # 2(p-1) messages), which is visible at 8192 ranks
    assert table["halving_doubling"][2] <= table["ring"][2]
    assert table["ring"][2] < 2.0 * table["halving_doubling"][2]
