"""Figure 3 — single-node time breakdown.

The paper profiles one KNL node mid-training and attributes wall time
to: 3D convolutions, non-convolutional compute, the CPE ML Plugin,
TensorFlow framework time, and other/kernel time, across the master,
worker and communication threads.

We reproduce the software-level breakdown: a single-rank training run
(with the plugin enabled, exactly as the paper's single-node profile)
whose stages are timed — convolution kernels separately from the rest
of compute, via a timing-wrapped kernel registry — and printed as the
Figure 3 fractions.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.comm.plugin import MLPlugin
from repro.comm.serial import SerialCommunicator
from repro.core.model import CosmoFlowModel
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import scaled_32
from repro.core.trainer import InMemoryData, Trainer, TrainerConfig
from repro.primitives import registry
from repro.primitives.registry import ConvImpl
from repro.utils.timer import StageTimer


@pytest.fixture()
def timed_registry():
    """Wrap the default kernels with timers, like VTune attributing time
    to the MKL-DNN hotspots."""
    timer = StageTimer()
    base = registry.get_impl("gemm")

    def wrap(fn, stage):
        def inner(*args, **kwargs):
            with timer.stage(stage):
                return fn(*args, **kwargs)

        return inner

    registry._IMPLS["timed"] = ConvImpl(
        name="timed",
        forward=wrap(base.forward, "conv3d"),
        backward_data=wrap(base.backward_data, "conv3d"),
        backward_weights=wrap(base.backward_weights, "conv3d"),
    )
    registry.set_default_impl("timed")
    yield timer
    registry.set_default_impl("gemm")
    del registry._IMPLS["timed"]


def test_single_node_profile(timed_registry, benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((12, 1, 32, 32, 32)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(12, 3)).astype(np.float32)
    model = CosmoFlowModel(scaled_32(), seed=0)
    trainer = Trainer(
        model,
        InMemoryData(x, y),
        optimizer_config=OptimizerConfig(),
        config=TrainerConfig(epochs=1, validate=False),
        plugin=MLPlugin(SerialCommunicator()),  # paper: plugin on even at 1 node
    )
    benchmark.pedantic(trainer.run, args=(1,), rounds=1, iterations=1)

    conv_time = timed_registry.stages["conv3d"].total
    stages = trainer.timer.stages
    compute = stages["compute"].total
    non_conv = max(0.0, compute - conv_time)
    rows = {
        "3D convolutions (MKL-DNN analogue)": conv_time,
        "non-conv compute (elementwise, FC, loss)": non_conv,
        "CPE ML Plugin (gradient aggregation)": stages.get("comm").total if "comm" in stages else 0.0,
        "optimizer (Adam+LARC update)": stages["optimizer"].total,
        "I/O (sample fetch)": stages["io"].total,
        "framework/other": stages.get("other").total if "other" in stages else 0.0,
    }
    total = sum(rows.values())
    lines = [
        "Figure 3 reproduction: single-node training time breakdown",
        f"(one rank, plugin enabled, {len(x)} steps of scaled_32)",
        f"{'stage':<44}{'time ms':>10}{'fraction':>10}",
    ]
    for name, t in sorted(rows.items(), key=lambda kv: -kv[1]):
        lines.append(f"{name:<44}{t * 1e3:>10.1f}{t / total * 100:>9.1f}%")
    lines += [
        f"{'total':<44}{total * 1e3:>10.1f}",
        "",
        "paper (Fig. 3, KNL): 3D convolutions dominate the worker threads;"
        " element-wise ops, framework overhead and OpenMP spin fill the rest;"
        " plugin threads mostly spin at a single node.",
    ]
    save_report("f3_profile", "\n".join(lines))

    # The paper's qualitative result: convolutions dominate compute.
    assert conv_time > non_conv
    assert conv_time / total > 0.4
