"""A12 — bounded-staleness training under a 10x straggler.

Section II-C names the failure mode ("a single slow node can
significantly reduce the aggregate performance"); the ``ssgd`` backend
(:mod:`repro.comm.stale`) is the stale-synchronous mitigation: each
step closes on the fastest quorum and folds the straggler's gradients
in late, within a hard staleness bound.

The acceptance run: 4 ranks, one rank 10x slow for the first 10 global
steps (then recovered), identical seeded delay schedule on both sides.

* the fully synchronous baseline (bound 0) pays the full delay every
  slow step;
* ``ssgd`` with bound 4 must finish in at most half the virtual time,
  never exceed the bound, land within loss tolerance of the baseline,
  and the straggler monitor must quarantine the slow rank during the
  slow phase and rehabilitate it after recovery.

Everything runs on virtual time, so the table is deterministic and
comparable across commits.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.comm.stale import StalenessConfig
from repro.core.distributed import DistributedConfig, DistributedTrainer
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData
from repro.faults import FaultInjector, FaultPlan

N_RANKS = 4
EPOCHS = 10
N_SAMPLES = 16
STEPS = (N_SAMPLES // N_RANKS) * EPOCHS  # 40 global steps
SLOW_STEPS = 10  # straggler recovers after the first quarter of the run
BASE = 0.01
DELAY = 9 * BASE  # 10x step time while slow
OPT = OptimizerConfig(eta0=5e-3, decay_steps=50)


def make_data(n=N_SAMPLES, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, 16, 16, 16)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n, 3)).astype(np.float32)
    return InMemoryData(x, y)


def straggler_injector():
    return FaultInjector(
        FaultPlan(seed=11).with_slow_rank(1, DELAY, n_steps=SLOW_STEPS)
    )


def run(staleness):
    trainer = DistributedTrainer(
        tiny_16(),
        make_data(),
        config=DistributedConfig(
            n_ranks=N_RANKS, epochs=EPOCHS, mode="ssgd", validate=False,
            staleness=staleness,
        ),
        optimizer_config=OPT,
        injector=straggler_injector(),
    )
    hist = trainer.run()
    return trainer, hist


def test_staleness_acceptance(benchmark):
    sync_cfg = StalenessConfig(
        staleness_bound=0, quorum_fraction=1.0,
        quarantine_factor=None, base_step_time_s=BASE,
    )
    ssgd_cfg = StalenessConfig(
        staleness_bound=4, quorum_fraction=0.5, base_step_time_s=BASE,
    )
    t_sync, h_sync = run(sync_cfg)
    benchmark.pedantic(lambda: run(ssgd_cfg), rounds=1, iterations=1)
    t_ssgd, h_ssgd = run(ssgd_cfg)
    gs_sync, gs = t_sync.group_stats, t_ssgd.group_stats
    speedup = gs_sync["virtual_time_s"] / gs["virtual_time_s"]

    lines = [
        "A12: bounded-staleness ssgd vs fully synchronous, one 10x "
        f"straggler (rank 1, first {SLOW_STEPS} of {STEPS} steps)",
        f"{'backend':>10}{'virtual (s)':>13}{'final loss':>12}"
        f"{'max stale':>11}{'late folds':>12}{'quarantine':>12}",
    ]
    for label, t, h in (("sync", t_sync, h_sync), ("ssgd s=4", t_ssgd, h_ssgd)):
        g = t.group_stats
        q = ",".join(str(r) for r in g["quarantined_ranks"]) or "-"
        lines.append(
            f"{label:>10}{g['virtual_time_s']:>13.3f}{h.train_loss[-1]:>12.5f}"
            f"{g['max_staleness']:>11}{g['late_folds']:>12}{q:>12}"
        )
    lines += [
        "",
        f"virtual-time speedup: {speedup:.2f}x  "
        f"(straggler quarantined at the monitor's strike threshold, "
        f"rehabilitated after recovery: {gs['rehabilitated_ranks']})",
    ]
    save_report("a12_staleness", "\n".join(lines))

    # -- acceptance criteria ------------------------------------------------
    # The sync baseline pays the straggler's delay in full.
    assert gs_sync["virtual_time_s"] == pytest.approx(
        SLOW_STEPS * (BASE + DELAY) + (STEPS - SLOW_STEPS) * BASE, rel=0.01
    )
    # 1. ssgd with bound 4 at least halves the virtual time.
    assert speedup >= 2.0
    # 2. Final loss within tolerance of the fully synchronous run:
    #    inside the sync run's own late-training noise band (its last
    #    three epochs bounce around more than any staleness penalty).
    assert h_ssgd.train_loss[-1] <= 1.25 * max(h_sync.train_loss[-3:])
    assert h_ssgd.train_loss[-1] < 0.01 * h_ssgd.train_loss[0]
    # 3. Observed staleness never exceeds the bound.
    assert 0 < gs["max_staleness"] <= 4
    # 4. The monitor quarantined the straggler and, once the injected
    #    slowness ended, rehabilitated it.
    assert gs["quarantined_ranks"] == [1]
    assert gs["rehabilitated_ranks"] == [1]
    assert gs["evicted_ranks"] == []
    # The slow rank kept contributing (late or quarantined-async), it
    # was never silently dropped from the run.
    assert gs["contributions"][1] > 0
    assert gs["dropped_stale"] == 0 or gs["contributions"][1] > STEPS // 2
