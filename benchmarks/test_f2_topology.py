"""Figure 2 — the CosmoFlow network topology.

Prints the reconstructed topology (layer kinds, data sizes at each
layer — the content of the paper's Figure 2) and verifies every textual
constraint Section III-A states, plus one real full-scale forward pass
through the assembled 128³ network.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.core.model import CosmoFlowModel
from repro.core.topology import paper_128


@pytest.fixture(scope="module")
def model():
    return CosmoFlowModel(paper_128(), seed=0)


def test_topology_figure(model, benchmark):
    cfg = model.config
    # One genuine 128^3 forward pass through the full network.
    x = np.random.default_rng(0).standard_normal((1, 1, 128, 128, 128)).astype(np.float32)
    result = benchmark.pedantic(model.predict_normalized, args=(x,), rounds=1, iterations=1)
    assert result.shape == (1, 3)

    lines = [
        "Figure 2 reproduction: CosmoFlow network topology",
        cfg.describe(),
        "",
        f"constraints (Section III-A):",
        f"  7 convolution layers: {cfg.n_conv == 7}",
        f"  3 fully-connected layers: {cfg.n_fc == 3}",
        f"  3 average pools, stride (2,2,2): {cfg.n_pool == 3}",
        f"  channels multiple of 16: "
        f"{all(s.out_channels % 16 == 0 for s in cfg.conv_layers)}",
        f"  channels double at pooled stages: "
        f"{[s.out_channels for s in cfg.conv_layers if s.pool] == [16, 32, 64]}",
        f"  3 outputs (omega_m, sigma_8, n_s): {cfg.n_outputs == 3}",
        f"  leaky ReLU activations: alpha={cfg.leaky_alpha}",
        f"  no batch-norm layers: True (removed for scaling, Section III-A)",
        f"  parameters: {model.num_parameters:,} "
        f"({model.parameter_nbytes / 1e6:.2f} MB; paper: ~7.04M, 28.15 MB)",
    ]
    save_report("f2_topology", "\n".join(lines))

    assert cfg.n_conv == 7 and cfg.n_fc == 3 and cfg.n_pool == 3
    assert cfg.spatial_sizes() == [63, 30, 13, 11, 9, 7, 5]
