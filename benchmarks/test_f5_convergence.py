"""Figure 5 — training/validation loss at two concurrency scales.

The paper trains the same problem on 2048 and 8192 nodes (global batch
= node count, mini-batch 1 per rank) and shows the 2048-node run
"clearly converges with fewer number of epochs": larger global batches
take more epochs at fixed hyperparameters (Section V-D / VII-A).

We run the identical synchronous-SGD algebra over simulated ranks at a
4x rank ratio (the paper's 2048:8192), on real simulated-universe data,
and print both loss curves.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.core.distributed import DistributedConfig, DistributedTrainer
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData

#: Scaled rank counts: a 16x ratio (the paper's is 4x, over ~40x more
#: epochs) makes the per-epoch gap visible within the couple of epochs
#: a benchmark can afford — the phenomenon is the same: global batch =
#: rank count, and bigger batches mean fewer optimizer steps per epoch.
SMALL_RANKS, LARGE_RANKS = 8, 128
EPOCHS = 2


@pytest.fixture(scope="module")
def loss_curves(cosmo_dataset):
    xtr, ytr, _ = cosmo_dataset["train"]
    xv, yv, _ = cosmo_dataset["val"]
    train = InMemoryData(xtr, ytr, augment=True)
    val = InMemoryData(xv, yv)

    def run(ranks):
        trainer = DistributedTrainer(
            tiny_16(),
            train,
            val_data=val,
            config=DistributedConfig(
                n_ranks=ranks, epochs=EPOCHS, mode="stepped", seed=0
            ),
            optimizer_config=OptimizerConfig(eta0=2e-3, decay_steps=10_000),
        )
        trainer.run()
        # Figure 5's y-axis is the loss of the *current* model; measure
        # the final model on the full training set for a noise-free
        # end-of-run comparison too.
        model = trainer.final_model
        final = float(
            np.mean([model.validation_loss(x, y) for x, y in train.batches(8, shuffle=False)])
        )
        return trainer.history, final

    return {SMALL_RANKS: run(SMALL_RANKS), LARGE_RANKS: run(LARGE_RANKS)}


def test_figure5_convergence(loss_curves, benchmark, cosmo_dataset):
    xtr, ytr, _ = cosmo_dataset["train"]
    benchmark.pedantic(
        lambda: DistributedTrainer(
            tiny_16(),
            InMemoryData(xtr[:64], ytr[:64]),
            config=DistributedConfig(n_ranks=16, epochs=1, mode="stepped", validate=False),
            optimizer_config=OptimizerConfig(),
        ).run(),
        rounds=1,
        iterations=1,
    )

    (small, small_final) = loss_curves[SMALL_RANKS]
    (large, large_final) = loss_curves[LARGE_RANKS]
    lines = [
        "Figure 5 reproduction: loss vs epoch at two global batch sizes",
        f"(ranks scaled {SMALL_RANKS} vs {LARGE_RANKS}; the paper compares "
        f"2048 vs 8192; mini-batch 1 per rank)",
        f"{'epoch':>6}{f'{SMALL_RANKS}-rank train':>16}{f'{SMALL_RANKS}-rank val':>15}"
        f"{f'{LARGE_RANKS}-rank train':>16}{f'{LARGE_RANKS}-rank val':>15}",
    ]
    for e in range(EPOCHS):
        lines.append(
            f"{e + 1:>6}{small.train_loss[e]:>16.4f}{small.val_loss[e]:>15.4f}"
            f"{large.train_loss[e]:>16.4f}{large.val_loss[e]:>15.4f}"
        )
    lines += [
        f"\nfinal-model loss on the full training set: "
        f"{SMALL_RANKS}-rank {small_final:.4f} vs {LARGE_RANKS}-rank {large_final:.4f}",
        "paper: 'The network clearly converges with fewer number of epochs "
        "in the 2048-node run.'",
    ]
    save_report("f5_convergence", "\n".join(lines))

    # The Figure 5 shape: after the same number of epochs, the
    # smaller-global-batch run is further along (it took 16x more
    # optimizer steps over the same data).
    assert small_final < large_final
    assert small.train_loss[0] < large.train_loss[0]  # ahead from epoch 1
    # Both runs are actually learning.
    assert small_final < 0.8 * small.train_loss[0]
    assert large.train_loss[-1] < large.train_loss[0]
