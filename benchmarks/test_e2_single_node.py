"""E2 — single-node sustained performance.

Paper: "We achieve 535 Gflop/s performance on a single KNL node
including the overhead of I/O and the CPE ML Plugin.  We also note that
the corresponding performance on a single GPU node of Piz Daint system
is 388 Gflop/s" — i.e. 129 ms / 7.72 samples/s per KNL node.

We measure the same end-to-end metric (training-step throughput x
analytic flops/sample) for our NumPy stack on this host, at two network
scales, and report it against the paper's hardware.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.comm.plugin import MLPlugin
from repro.comm.serial import SerialCommunicator
from repro.core.model import CosmoFlowModel
from repro.core.optimizer import OptimizerConfig
from repro.core.topology import scaled_32, tiny_16
from repro.core.trainer import InMemoryData, Trainer, TrainerConfig


def throughput_for(config, n_samples=8):
    rng = np.random.default_rng(0)
    s = config.input_size
    x = rng.standard_normal((n_samples, 1, s, s, s)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(n_samples, config.n_outputs)).astype(np.float32)
    model = CosmoFlowModel(config, seed=0)
    trainer = Trainer(
        model,
        InMemoryData(x, y),
        optimizer_config=OptimizerConfig(),
        config=TrainerConfig(epochs=1, validate=False),
        plugin=MLPlugin(SerialCommunicator()),  # include plugin overhead, as the paper does
    )
    trainer.run()
    return model, trainer.throughput()


def test_single_node_throughput(benchmark):
    results = {}
    for cfg_fn in (tiny_16, scaled_32):
        cfg = cfg_fn()
        results[cfg.name] = throughput_for(cfg)

    # benchmark one full training step of the larger config
    model, _ = results["scaled_32"]
    rng = np.random.default_rng(1)
    x = rng.standard_normal((1, 1, 32, 32, 32)).astype(np.float32)
    y = rng.uniform(0.2, 0.8, size=(1, 3)).astype(np.float32)
    benchmark.pedantic(model.loss_and_gradients, args=(x, y), rounds=3, iterations=1)

    lines = [
        "E2: single-node sustained training performance",
        f"{'network':<14}{'samples/s':>12}{'Gflop/sample':>14}{'achieved Gflop/s':>18}",
    ]
    for name, (model, tp) in results.items():
        lines.append(
            f"{name:<14}{tp['samples_per_sec']:>12.2f}"
            f"{model.flops_per_sample() / 1e9:>14.3f}"
            f"{tp['flops_per_sec'] / 1e9:>18.2f}"
        )
    lines += [
        "",
        "paper: 535 Gflop/s per KNL node (69.33 Gflop in 129 ms, 7.72 samples/s),",
        "       388 Gflop/s per P100 node — hand-tuned AVX512/cuDNN kernels;",
        "this:  pure NumPy+BLAS on one CPU core of this host.",
    ]
    save_report("e2_single_node", "\n".join(lines))

    for name, (model, tp) in results.items():
        assert tp["samples_per_sec"] > 0
        assert tp["flops_per_sec"] > 1e8  # sanity: >0.1 Gflop/s even tiny
