"""E6 — deep learning vs traditional statistics.

The paper's scientific lineage (Ravanbakhsh et al. 2017): a CNN on the
raw matter distribution improves parameter estimation over "traditional
statistical metrics" by up to ~3x in relative error — with ~500x more
training data and 512x more voxels per sample than this benchmark can
afford.

Here both estimators get identical training and test sets.  At this
scale the power-spectrum baseline is competitive (sigma_8 lives in the
spectrum amplitude, exactly what it measures); the CNN's edge in the
paper comes from non-Gaussian morphology, which needs far more data to
exploit.  The benchmark therefore checks (a) both methods beat the
prior, (b) the CNN's error shrinks as its training set grows — the
scaling behaviour that, extrapolated, yields the paper's result.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.core.metrics import relative_errors
from repro.core.model import CosmoFlowModel
from repro.core.optimizer import OptimizerConfig
from repro.core.parameters import ParameterSpace
from repro.core.topology import tiny_16
from repro.core.trainer import InMemoryData, Trainer, TrainerConfig
from repro.cosmo.baseline import StatisticalBaseline


def train_cnn(xtr, ytr, epochs=8, seed=0):
    model = CosmoFlowModel(tiny_16(), seed=seed)
    Trainer(
        model,
        InMemoryData(xtr, ytr, augment=True),
        optimizer_config=OptimizerConfig(eta0=2e-3, decay_steps=epochs * len(xtr)),
        config=TrainerConfig(epochs=epochs, seed=1, validate=False),
    ).run()
    return model


def test_cnn_vs_statistics(trained_model, cosmo_dataset, benchmark):
    model = trained_model["model"]
    sim = cosmo_dataset["sim"]
    xtr, ytr, ttr = cosmo_dataset["train"]
    xte, yte, tte = cosmo_dataset["test"]

    subvolume_box = sim.box_size / sim.splits
    baseline = StatisticalBaseline(box_size=subvolume_box)
    benchmark.pedantic(baseline.fit, args=(xtr, ttr), rounds=1, iterations=1)

    cnn = relative_errors(model.predict(xte), tte, names=model.space.names)
    stats = relative_errors(baseline.predict(xte), tte, names=model.space.names)
    space = ParameterSpace()
    prior = relative_errors(
        space.denormalize(np.tile(ytr.mean(axis=0), (len(xte), 1))),
        tte,
        names=model.space.names,
    )

    # Data-scaling trend: the CNN with a quarter of the data.
    quarter = len(xtr) // 4
    small_cnn_model = train_cnn(xtr[:quarter], ytr[:quarter], epochs=8, seed=0)
    small_cnn = relative_errors(
        small_cnn_model.predict(xte), tte, names=model.space.names
    )

    lines = [
        "E6: CNN vs traditional statistics (identical train/test sets)",
        f"{'parameter':<10}{'CNN':>10}{'CNN (1/4 data)':>16}{'statistics':>12}"
        f"{'prior mean':>12}",
    ]
    for name in model.space.names:
        lines.append(
            f"{name:<10}{cnn.as_dict()[name]:>10.4f}"
            f"{small_cnn.as_dict()[name]:>16.4f}"
            f"{stats.as_dict()[name]:>12.4f}{prior.as_dict()[name]:>12.4f}"
        )
    lines += [
        "",
        "paper-scale context: Ravanbakhsh et al. report the CNN up to ~3x "
        "better than reduced statistics at 99k samples of 128^3 voxels; at "
        "this benchmark's ~1k samples of 16^3 the spectrum-based estimator "
        "is competitive, and the CNN closes the gap as data grows "
        "(compare the 1/4-data column).",
    ]
    save_report("e6_baseline_comparison", "\n".join(lines))

    # Both learn sigma_8 (beat the prior).
    assert cnn.as_dict()["sigma_8"] < 0.85 * prior.as_dict()["sigma_8"]
    assert stats.as_dict()["sigma_8"] < 0.85 * prior.as_dict()["sigma_8"]
    # The CNN improves with data — the trend behind the paper's claim.
    assert cnn.as_dict()["sigma_8"] <= small_cnn.as_dict()["sigma_8"] * 1.05
