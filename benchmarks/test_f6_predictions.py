"""Figure 6 — parameter estimates from the trained network.

The paper's scatter plots of predicted vs true (ΩM, σ8, ns) on held-out
data, summarized by average relative errors: (0.0022, 0.0094, 0.0096)
for the 2048-node run and (0.052, 0.014, 0.022) for 8192.

We evaluate our trained model on held-out simulated universes and print
the same summary, alongside the no-information reference (predicting
the training-set mean).  At 1/800 of the paper's data volume and 1/512
of its voxel count, absolute errors are necessarily larger; the
reproduction criterion is that the network's σ8 estimate carries real
information (beats the prior and correlates with truth), which is the
paper's central scientific capability.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.core.metrics import PAPER_REL_ERRORS, relative_errors
from repro.core.parameters import PLANCK_UNCERTAINTY, ParameterSpace


def test_figure6_predictions(trained_model, cosmo_dataset, benchmark):
    model = trained_model["model"]
    xte, yte, tte = cosmo_dataset["test"]
    ytr = cosmo_dataset["train"][1]

    pred = benchmark.pedantic(model.predict, args=(xte,), rounds=1, iterations=1)
    cnn = relative_errors(pred, tte, names=model.space.names)

    space = ParameterSpace()
    prior_pred = space.denormalize(np.tile(ytr.mean(axis=0), (len(xte), 1)))
    prior = relative_errors(prior_pred, tte, names=model.space.names)

    pred_norm = model.predict_normalized(xte)
    corr = {
        name: float(np.corrcoef(pred_norm[:, i], yte[:, i])[0, 1])
        for i, name in enumerate(model.space.names)
    }

    lines = [
        "Figure 6 reproduction: parameter estimation on held-out universes",
        f"(test set: {len(xte)} sub-volumes from unseen simulations)",
        f"{'parameter':<10}{'rel err (CNN)':>14}{'rel err (prior)':>16}{'corr':>7}"
        f"{'paper 2048':>12}{'paper 8192':>12}{'Planck 1-sigma':>15}",
    ]
    for name in model.space.names:
        planck = PLANCK_UNCERTAINTY[name] / {"omega_m": 0.3089, "sigma_8": 0.8159, "n_s": 0.9667}[name]
        lines.append(
            f"{name:<10}{cnn.as_dict()[name]:>14.4f}{prior.as_dict()[name]:>16.4f}"
            f"{corr[name]:>7.2f}"
            f"{PAPER_REL_ERRORS['2048_node'][name]:>12.4f}"
            f"{PAPER_REL_ERRORS['8192_node'][name]:>12.4f}"
            f"{planck:>15.4f}"
        )
    lines += [
        "",
        f"validation loss trajectory: "
        + " ".join(f"{v:.3f}" for v in trained_model["history"].val_loss),
        "",
        "scale note: the paper trains on 99,456 samples of 128^3 voxels "
        "(2 Mpc/h resolution); this run uses ~1,000 samples of 16^3 "
        "(4 Mpc/h).  sigma_8 — the amplitude parameter — is learnable at "
        "this scale; omega_m and n_s need the paper's data volume.",
    ]
    save_report("f6_predictions", "\n".join(lines))

    # Reproduction criteria: the network genuinely constrains sigma_8.
    assert corr["sigma_8"] > 0.3
    assert cnn.as_dict()["sigma_8"] < 0.85 * prior.as_dict()["sigma_8"]
    # And no parameter is catastrophically wrong (within 2x of prior).
    for name in model.space.names:
        assert cnn.as_dict()[name] < 2.0 * prior.as_dict()[name]
